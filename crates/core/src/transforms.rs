//! Locking transforms (step 5, "Update RTL"): apply selected candidates to
//! the module, adding key input ports and rewriting the addressed sites.
//!
//! Key ports are named `lock_key_<n>`; after synthesis,
//! [`mark_key_inputs`] flags the corresponding netlist inputs so attacks
//! and ATPG know which inputs are key bits.

use crate::candidates::{Candidate, ConstMode, FsmLockKind};
use rtlock_rtl::ast::{visit_stmt_exprs_mut, Dir, Lvalue, NetKind, Stmt};
use rtlock_rtl::cdfg::SiteLoc;
use rtlock_rtl::fsm::Fsm;
use rtlock_rtl::{BinaryOp, Bv, Expr, Module, NetId, UnaryOp};
use rtlock_netlist::Netlist;
use std::fmt;

/// Prefix of generated key input ports.
pub const KEY_PORT_PREFIX: &str = "lock_key_";

/// `true` if a (bit-blasted) input name belongs to a key port.
pub fn is_key_input_name(name: &str) -> bool {
    name.starts_with(KEY_PORT_PREFIX)
}

/// Marks every key input of an elaborated netlist (ordered by port number,
/// then bit index). Returns the key length.
pub fn mark_key_inputs(netlist: &mut Netlist) -> usize {
    let mut keyed: Vec<(usize, usize, rtlock_netlist::GateId)> = Vec::new();
    for &g in netlist.inputs() {
        let Some(name) = netlist.gate_name(g) else { continue };
        let Some(rest) = name.strip_prefix(KEY_PORT_PREFIX) else { continue };
        // rest = "<n>" or "<n>[i]"
        let (num, bit) = match rest.split_once('[') {
            Some((n, b)) => (n.parse::<usize>().ok(), b.trim_end_matches(']').parse::<usize>().ok()),
            None => (rest.parse::<usize>().ok(), Some(0)),
        };
        if let (Some(n), Some(b)) = (num, bit) {
            keyed.push((n, b, g));
        }
    }
    keyed.sort();
    netlist.key_inputs = keyed.iter().map(|&(_, _, g)| g).collect();
    netlist.key_inputs.len()
}

/// Error applying a transform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transform failed: {}", self.message)
    }
}

impl std::error::Error for TransformError {}

/// Allocates key ports and tracks the accumulated correct key.
#[derive(Debug, Clone, Default)]
pub struct KeyAllocator {
    next: usize,
    correct: Vec<bool>,
}

impl KeyAllocator {
    /// Fresh allocator.
    pub fn new() -> Self {
        KeyAllocator::default()
    }

    /// The correct key accumulated so far (bit order = netlist key order
    /// after [`mark_key_inputs`]).
    pub fn correct_key(&self) -> &[bool] {
        &self.correct
    }

    /// Allocates a key port of `width` bits whose correct value is `value`.
    fn alloc(&mut self, module: &mut Module, value: &Bv) -> NetId {
        let name = format!("{KEY_PORT_PREFIX}{}", self.next);
        self.next += 1;
        for i in 0..value.width() {
            self.correct.push(value.bit(i));
        }
        module.add_port(name, value.width(), Dir::Input, NetKind::Wire)
    }

    /// Allocates an *entangled pair*: a 2-bit key port whose "key is
    /// correct" condition is `k[0] XNOR k[1]` (correct value `(r, r)` for a
    /// deterministic random `r`). Hardwiring either bit alone leaves the
    /// condition symbolic, so single-bit constant-propagation attacks
    /// (SWEEP/SCOPE) learn nothing from re-synthesis — this is how the
    /// reproduction realizes the paper's ~50 % Table IV row.
    fn alloc_pair(&mut self, module: &mut Module, loc: SiteLoc, ordinal: usize) -> (NetId, Expr) {
        let r = polarity(loc, ordinal);
        let mut v = Bv::zeros(2);
        v.set(0, r);
        v.set(1, r);
        let port = self.alloc(module, &v);
        let k0 = Expr::Slice { net: port, hi: 0, lo: 0 };
        let k1 = Expr::Slice { net: port, hi: 1, lo: 1 };
        let ok = Expr::unary(UnaryOp::Not, Expr::binary(BinaryOp::Xor, k0, k1));
        (port, ok)
    }
}

/// Deterministic polarity bit for balanced key-value assignment.
fn polarity(loc: SiteLoc, ordinal: usize) -> bool {
    let seed = match loc {
        SiteLoc::Assign { index } => index as u64 * 2 + 1,
        SiteLoc::Proc { index } => index as u64 * 2,
    };
    // splitmix64: a full mix so per-design key values stay balanced
    // (systematic bias would hand oracle-less learners a free prior).
    let mut h = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add((ordinal as u64) << 17).wrapping_add(0x1234_5678);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D049BB133111EB);
    h ^= h >> 31;
    h & 1 == 1
}

/// Deliberately corrupts a locked module for the robustness harness
/// ([`Fault::Sabotage`](crate::governor::Fault::Sabotage)): plants a key
/// gate on a freshly added constant-driven net. The correct key (bit
/// value 0) keeps the design functionally identical, so co-simulation
/// passes — only the post-lock lint gate (rule `C002`) can reject it.
pub(crate) fn inject_sabotage(module: &mut Module, keys: &mut KeyAllocator) {
    let c = module.add_net("__sabotage_const", 1, NetKind::Wire);
    module.assigns.push(rtlock_rtl::ast::Assign {
        lhs: Lvalue::whole(c),
        rhs: Expr::Const(Bv::zeros(1)),
    });
    let key = keys.alloc(module, &Bv::zeros(1));
    let mask = Expr::binary(BinaryOp::Xor, Expr::Ref(c), Expr::Ref(key));
    // Fold the (correct-key-zero) mask into an existing driver: a
    // continuous assign other than the const driver itself, else the
    // first procedural assignment.
    if let Some(a) = module.assigns.iter_mut().find(|a| a.lhs.net != c) {
        let rhs = std::mem::replace(&mut a.rhs, Expr::Const(Bv::zeros(1)));
        a.rhs = Expr::binary(BinaryOp::Xor, rhs, mask);
        return;
    }
    for p in &mut module.procs {
        if let Some(rhs) = first_stmt_rhs(&mut p.body) {
            let old = std::mem::replace(rhs, Expr::Const(Bv::zeros(1)));
            *rhs = Expr::binary(BinaryOp::Xor, old, mask);
            return;
        }
    }
}

fn first_stmt_rhs(stmts: &mut [Stmt]) -> Option<&mut Expr> {
    for s in stmts {
        match s {
            Stmt::Assign { rhs, .. } => return Some(rhs),
            Stmt::If { then_, else_, .. } => {
                // Split borrows: recurse each branch separately.
                if let Some(r) = first_stmt_rhs(then_) {
                    return Some(r);
                }
                if let Some(r) = first_stmt_rhs(else_) {
                    return Some(r);
                }
            }
            Stmt::Case { arms, default, .. } => {
                for arm in arms.iter_mut() {
                    if let Some(r) = first_stmt_rhs(&mut arm.body) {
                        return Some(r);
                    }
                }
                if let Some(r) = first_stmt_rhs(default) {
                    return Some(r);
                }
            }
        }
    }
    None
}

/// Applies one candidate to the module, allocating key bits in `keys`.
///
/// # Errors
///
/// Returns [`TransformError`] if the addressed site no longer exists (the
/// module must be the same one the candidate was enumerated on, with
/// earlier transforms applied in enumeration order — transforms never
/// relocate later sites because they only wrap expressions in place).
pub fn apply(
    module: &mut Module,
    candidate: &Candidate,
    fsms: &[Fsm],
    keys: &mut KeyAllocator,
) -> Result<(), TransformError> {
    match candidate {
        Candidate::Constant { loc, ordinal, value, mode, key_bits } => {
            apply_constant(module, *loc, *ordinal, value, *mode, *key_bits, keys)
        }
        Candidate::Arithmetic { loc, ordinal, op, pair } => {
            apply_arith(module, *loc, *ordinal, *op, *pair, keys)
        }
        Candidate::Fsm { fsm_index, kind } => {
            let f = fsms
                .get(*fsm_index)
                .ok_or_else(|| TransformError { message: format!("no FSM #{fsm_index}") })?;
            apply_fsm(module, f, kind, keys)
        }
    }
}

/// Applies a set of candidates in a safe order and returns the indices of
/// those successfully applied.
///
/// Ordering rules (rewrites shift pre-order ordinals of *later* nodes, so
/// later-addressed sites must be rewritten first):
/// 1. expression candidates (constants, arithmetic) per location in
///    descending ordinal order;
/// 2. FSM inherent-signal locks (assignment-ordinal addressed);
/// 3. FSM structural locks (transition rewrites, bypass arms);
/// 4. FSM init locks last (they append statements).
///
/// Candidates whose site vanished (e.g. two structural locks touching the
/// same transition) are skipped, not fatal — the selection layer treats
/// the applied subset as the final locking.
pub fn apply_all(
    module: &mut Module,
    candidates: &[Candidate],
    fsms: &[Fsm],
    keys: &mut KeyAllocator,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    let rank = |c: &Candidate| -> (u8, i64, i64) {
        match c {
            Candidate::Constant { loc, ordinal, .. } | Candidate::Arithmetic { loc, ordinal, .. } => {
                let l = match loc {
                    SiteLoc::Assign { index } => *index as i64,
                    SiteLoc::Proc { index } => 1_000_000 + *index as i64,
                };
                (0, l, -(*ordinal as i64))
            }
            Candidate::Fsm { kind, .. } => match kind {
                FsmLockKind::InherentSignal { assign_ordinal, .. } => (1, 0, -(*assign_ordinal as i64)),
                FsmLockKind::IncorrectTransition { .. }
                | FsmLockKind::SkipState { .. }
                | FsmLockKind::BypassState { .. } => (2, 0, 0),
                FsmLockKind::InitLock => (3, 0, 0),
            },
        }
    };
    order.sort_by_key(|&i| rank(&candidates[i]));
    let mut applied = Vec::new();
    for i in order {
        // Snapshot for rollback: `apply` allocates the key port before the
        // rewrite, so a failed rewrite must undo both.
        let keys_before = keys.clone();
        let module_before = module.clone();
        match apply(module, &candidates[i], fsms, keys) {
            Ok(()) => applied.push(i),
            Err(_) => {
                *keys = keys_before;
                *module = module_before;
            }
        }
    }
    applied.sort();
    applied
}

/// Rewrites the expression node at (loc, ordinal) via `rewrite`. The
/// callback receives the node and returns its replacement.
fn rewrite_site(
    module: &mut Module,
    loc: SiteLoc,
    ordinal: usize,
    rewrite: &mut impl FnMut(&Expr) -> Option<Expr>,
) -> Result<(), TransformError> {
    let mut counter = 0usize;
    let mut done = false;
    let mut visit = |e: &mut Expr| {
        // Pre-order walk counting every node, mirroring the CDFG census.
        e.visit_mut(&mut |sub| {
            if counter == ordinal && !done {
                if let Some(new) = rewrite(sub) {
                    *sub = new;
                    done = true;
                }
            }
            counter += 1;
        });
    };
    match loc {
        SiteLoc::Assign { index } => {
            let mut rhs = module
                .assigns
                .get(index)
                .ok_or_else(|| TransformError { message: format!("assign {index} missing") })?
                .rhs
                .clone();
            visit(&mut rhs);
            module.assigns[index].rhs = rhs;
        }
        SiteLoc::Proc { index } => {
            let mut body = module
                .procs
                .get(index)
                .ok_or_else(|| TransformError { message: format!("process {index} missing") })?
                .body
                .clone();
            visit_stmt_exprs_mut(&mut body, &mut visit);
            module.procs[index].body = body;
        }
    }
    if done {
        Ok(())
    } else {
        Err(TransformError { message: format!("site {loc:?}#{ordinal} not found or mismatched") })
    }
}

fn apply_constant(
    module: &mut Module,
    loc: SiteLoc,
    ordinal: usize,
    value: &Bv,
    mode: ConstMode,
    key_bits: usize,
    keys: &mut KeyAllocator,
) -> Result<(), TransformError> {
    let w = value.width();
    let kb = key_bits.min(w);
    // Deterministically vary the correct key value per site.
    let mut correct = Bv::zeros(kb);
    for i in 0..kb {
        correct.set(i, polarity(loc, ordinal.wrapping_add(i)));
    }
    let locked_expr = |key_net: NetId, value: &Bv| -> Expr {
        let low = value.slice(kb - 1, 0);
        let low_locked = match mode {
            ConstMode::XorMask => {
                Expr::binary(BinaryOp::Xor, Expr::net(key_net), Expr::Const(low.xor(&correct)))
            }
            // Additive relation: the stored offset is random, so the
            // correct key value is uniformly distributed (substituting the
            // raw constant would hand oracle-less attackers the designer's
            // low-entropy constant prior).
            ConstMode::Substitute => {
                Expr::binary(BinaryOp::Sub, Expr::net(key_net), Expr::Const(correct.clone()))
            }
        };
        if kb == w {
            low_locked
        } else {
            Expr::Concat(vec![Expr::Const(value.slice(w - 1, kb)), low_locked])
        }
    };
    let correct_key = match mode {
        ConstMode::XorMask => correct.clone(),
        ConstMode::Substitute => value.slice(kb - 1, 0).add(&correct),
    };
    let key_net = keys.alloc(module, &correct_key);
    let expected = value.clone();
    rewrite_site(module, loc, ordinal, &mut |e| match e {
        Expr::Const(c) if *c == expected => Some(locked_expr(key_net, c)),
        _ => None,
    })
}

fn apply_arith(
    module: &mut Module,
    loc: SiteLoc,
    ordinal: usize,
    op: BinaryOp,
    pair: BinaryOp,
    keys: &mut KeyAllocator,
) -> Result<(), TransformError> {
    let (_port, ok) = keys.alloc_pair(module, loc, ordinal);
    rewrite_site(module, loc, ordinal, &mut |e| match e {
        Expr::Binary { op: found, lhs, rhs } if *found == op => {
            let orig = Expr::Binary { op, lhs: lhs.clone(), rhs: rhs.clone() };
            let wrong = Expr::Binary { op: pair, lhs: lhs.clone(), rhs: rhs.clone() };
            Some(Expr::ternary(ok.clone(), orig, wrong))
        }
        _ => None,
    })
}

fn apply_fsm(
    module: &mut Module,
    f: &Fsm,
    kind: &FsmLockKind,
    keys: &mut KeyAllocator,
) -> Result<(), TransformError> {
    let site = SiteLoc::Proc { index: f.case_proc };
    // Distinct ordinal per flavor keeps the entangled-pair seeds apart.
    let flavor_ord = match kind {
        FsmLockKind::InitLock => 0usize,
        FsmLockKind::IncorrectTransition { .. } => 1,
        FsmLockKind::SkipState { .. } => 2,
        FsmLockKind::BypassState { .. } => 3,
        FsmLockKind::InherentSignal { assign_ordinal, .. } => 4 + assign_ordinal,
    };
    match kind {
        FsmLockKind::InitLock => {
            let init = f
                .initial
                .clone()
                .ok_or_else(|| TransformError { message: "init lock needs an initial state".into() })?;
            let (_port, ok) = keys.alloc_pair(module, site, flavor_ord);
            // Appended last, so under a wrong key the machine cannot leave
            // the initial state (blocking override / last non-blocking
            // assignment wins).
            let cond = Expr::binary(
                BinaryOp::LogicAnd,
                Expr::unary(UnaryOp::LogicNot, ok),
                Expr::binary(BinaryOp::Eq, Expr::net(f.state_reg), Expr::Const(init.clone())),
            );
            let stmt = Stmt::If {
                cond,
                then_: vec![Stmt::Assign { lhs: Lvalue::whole(f.next_net), rhs: Expr::Const(init) }],
                else_: vec![],
            };
            module.procs[f.case_proc].body.push(stmt);
            Ok(())
        }
        FsmLockKind::IncorrectTransition { from, to, wrong } => {
            let (_port, ok) = keys.alloc_pair(module, site, flavor_ord);
            let n = rewrite_transition_targets(module, f, Some(from), to, &mut |orig| {
                Expr::ternary(ok.clone(), orig, Expr::Const(wrong.clone()))
            });
            if n == 0 {
                return Err(TransformError { message: format!("transition {from}->{to} not found") });
            }
            Ok(())
        }
        FsmLockKind::SkipState { skipped, lands } => {
            let (_port, ok) = keys.alloc_pair(module, site, flavor_ord);
            let n = rewrite_transition_targets(module, f, None, skipped, &mut |orig| {
                Expr::ternary(ok.clone(), orig, Expr::Const(lands.clone()))
            });
            if n == 0 {
                return Err(TransformError { message: format!("no transition enters {skipped}") });
            }
            Ok(())
        }
        FsmLockKind::BypassState { fake, detoured } => {
            let (_port, ok) = keys.alloc_pair(module, site, flavor_ord);
            let n = rewrite_transition_targets(module, f, None, detoured, &mut |orig| {
                Expr::ternary(ok.clone(), orig, Expr::Const(fake.clone()))
            });
            if n == 0 {
                return Err(TransformError { message: format!("no transition enters {detoured}") });
            }
            // Add the fake-state arm forwarding to the real destination.
            add_case_arm(
                module,
                f,
                fake.clone(),
                vec![Stmt::Assign { lhs: Lvalue::whole(f.next_net), rhs: Expr::Const(detoured.clone()) }],
            )
        }
        FsmLockKind::InherentSignal { proc_index, assign_ordinal } => {
            let (_port, ok) = keys.alloc_pair(module, site, flavor_ord);
            let mut counter = 0usize;
            let mut done = false;
            let mut body = module.procs[*proc_index].body.clone();
            rewrite_assign(&mut body, *assign_ordinal, &mut counter, &mut done, &mut |rhs| {
                Expr::ternary(ok.clone(), rhs.clone(), Expr::unary(UnaryOp::Not, rhs.clone()))
            });
            module.procs[*proc_index].body = body;
            if done {
                Ok(())
            } else {
                Err(TransformError { message: format!("assignment #{assign_ordinal} not found") })
            }
        }
    }
}

/// Rewrites every `next_net = <to>` assignment (optionally only inside the
/// case arm labelled `from`). Returns how many sites were rewritten.
fn rewrite_transition_targets(
    module: &mut Module,
    f: &Fsm,
    from: Option<&Bv>,
    to: &Bv,
    make: &mut impl FnMut(Expr) -> Expr,
) -> usize {
    let mut body = module.procs[f.case_proc].body.clone();
    let count = rewrite_in_stmts(&mut body, f, from, to, false, make);
    module.procs[f.case_proc].body = body;
    count
}

fn rewrite_in_stmts(
    stmts: &mut [Stmt],
    f: &Fsm,
    from: Option<&Bv>,
    to: &Bv,
    mut in_arm: bool,
    make: &mut impl FnMut(Expr) -> Expr,
) -> usize {
    let mut count = 0;
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                if lhs.net == f.next_net
                    && lhs.range.is_none()
                    && (from.is_none() || in_arm)
                    && matches!(rhs, Expr::Const(c) if c.resize(to.width()) == *to)
                {
                    *rhs = make(rhs.clone());
                    count += 1;
                }
            }
            Stmt::If { then_, else_, .. } => {
                count += rewrite_in_stmts(then_, f, from, to, in_arm, make);
                count += rewrite_in_stmts(else_, f, from, to, in_arm, make);
            }
            Stmt::Case { subject, arms, default } => {
                let is_fsm_case = matches!(subject, Expr::Ref(n) if *n == f.state_reg);
                for a in arms {
                    let arm_matches = from.is_some_and(|fr| a.labels.iter().any(|l| l == fr));
                    let inner = in_arm || (is_fsm_case && arm_matches);
                    if from.is_none() || inner {
                        count += rewrite_in_stmts(&mut a.body, f, from, to, from.is_none() || inner, make);
                    }
                }
                count += rewrite_in_stmts(default, f, from, to, in_arm, make);
            }
        }
    }
    let _ = &mut in_arm;
    count
}

fn add_case_arm(module: &mut Module, f: &Fsm, label: Bv, body: Vec<Stmt>) -> Result<(), TransformError> {
    let proc_body = &mut module.procs[f.case_proc].body;
    if add_arm_in(proc_body, f, label.clone(), &body) {
        Ok(())
    } else {
        Err(TransformError { message: "FSM case statement not found".into() })
    }
}

fn add_arm_in(stmts: &mut [Stmt], f: &Fsm, label: Bv, body: &[Stmt]) -> bool {
    for s in stmts {
        match s {
            Stmt::Case { subject, arms, .. } if *subject == Expr::Ref(f.state_reg) => {
                arms.push(rtlock_rtl::CaseArm { labels: vec![label], body: body.to_vec() });
                return true;
            }
            Stmt::If { then_, else_, .. } => {
                if add_arm_in(then_, f, label.clone(), body) || add_arm_in(else_, f, label.clone(), body) {
                    return true;
                }
            }
            Stmt::Case { arms, default, .. } => {
                for a in arms {
                    if add_arm_in(&mut a.body, f, label.clone(), body) {
                        return true;
                    }
                }
                if add_arm_in(default, f, label.clone(), body) {
                    return true;
                }
            }
            Stmt::Assign { .. } => {}
        }
    }
    false
}

fn rewrite_assign(
    stmts: &mut [Stmt],
    target_ordinal: usize,
    counter: &mut usize,
    done: &mut bool,
    make: &mut impl FnMut(&Expr) -> Expr,
) {
    for s in stmts {
        if *done {
            return;
        }
        match s {
            Stmt::Assign { rhs, .. } => {
                if *counter == target_ordinal {
                    *rhs = make(rhs);
                    *done = true;
                }
                *counter += 1;
            }
            Stmt::If { then_, else_, .. } => {
                rewrite_assign(then_, target_ordinal, counter, done, make);
                rewrite_assign(else_, target_ordinal, counter, done, make);
            }
            Stmt::Case { arms, default, .. } => {
                for a in arms {
                    rewrite_assign(&mut a.body, target_ordinal, counter, done, make);
                }
                rewrite_assign(default, target_ordinal, counter, done, make);
            }
        }
    }
}
