//! Tamper-proof-memory provisioning records.
//!
//! The paper's activation model: "this secret is known and can only be
//! initiated in a trusted entity and generally will be loaded into a
//! tamper-proof memory (TPM)". This module is the hand-off artifact between
//! the design house and the provisioning facility: a small text record
//! carrying the functional key, the scan key, and an integrity tag (HMAC
//! under a provisioning secret) so a tampered record is rejected before it
//! programs parts.

use crate::flow::LockedDesign;
use rtlock_p1735::sha256::hmac_sha256;
use std::fmt;

/// A provisioning record ready for the TPM programmer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvisioningRecord {
    /// Design (module) name.
    pub design: String,
    /// Functional locking key bits.
    pub functional_key: Vec<bool>,
    /// Scan unlock key bits (empty when scan locking is off).
    pub scan_key: Vec<bool>,
}

/// Errors reading a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvisionError {
    /// Structurally malformed record.
    Malformed(String),
    /// HMAC verification failed (tampering or wrong provisioning secret).
    BadTag,
}

impl fmt::Display for ProvisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvisionError::Malformed(m) => write!(f, "malformed provisioning record: {m}"),
            ProvisionError::BadTag => write!(f, "provisioning record failed integrity check"),
        }
    }
}

impl std::error::Error for ProvisionError {}

fn bits_to_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn string_to_bits(s: &str) -> Option<Vec<bool>> {
    s.chars()
        .map(|c| match c {
            '0' => Some(false),
            '1' => Some(true),
            _ => None,
        })
        .collect()
}

impl ProvisioningRecord {
    /// Builds the record for a locked design.
    pub fn for_design(locked: &LockedDesign) -> ProvisioningRecord {
        ProvisioningRecord {
            design: locked.locked.name.clone(),
            functional_key: locked.key.clone(),
            scan_key: locked.scan_policy.as_ref().map(|p| p.scan_key.clone()).unwrap_or_default(),
        }
    }

    /// Serializes with an HMAC tag under `provisioning_secret`.
    pub fn to_text(&self, provisioning_secret: &[u8]) -> String {
        let body = format!(
            "design {}\nfunctional {}\nscan {}\n",
            self.design,
            bits_to_string(&self.functional_key),
            bits_to_string(&self.scan_key)
        );
        let tag = hmac_sha256(provisioning_secret, body.as_bytes());
        let tag_hex: String = tag.iter().map(|b| format!("{b:02x}")).collect();
        format!("# rtlock tpm record v1\n{body}tag {tag_hex}\n")
    }

    /// Parses and verifies a record.
    ///
    /// # Errors
    ///
    /// [`ProvisionError::Malformed`] on structural problems,
    /// [`ProvisionError::BadTag`] when the HMAC does not verify.
    pub fn from_text(text: &str, provisioning_secret: &[u8]) -> Result<ProvisioningRecord, ProvisionError> {
        let mut design = None;
        let mut functional = None;
        let mut scan = None;
        let mut tag = None;
        let mut body = String::new();
        for line in text.lines() {
            if line.starts_with('#') || line.trim().is_empty() {
                continue;
            }
            let Some((k, v)) = line.split_once(' ') else {
                return Err(ProvisionError::Malformed(format!("bad line `{line}`")));
            };
            match k {
                "design" => {
                    design = Some(v.to_string());
                    body.push_str(line);
                    body.push('\n');
                }
                "functional" => {
                    functional =
                        Some(string_to_bits(v).ok_or_else(|| ProvisionError::Malformed("bad key bits".into()))?);
                    body.push_str(line);
                    body.push('\n');
                }
                "scan" => {
                    scan = Some(string_to_bits(v).ok_or_else(|| ProvisionError::Malformed("bad scan bits".into()))?);
                    body.push_str(line);
                    body.push('\n');
                }
                "tag" => tag = Some(v.to_string()),
                other => return Err(ProvisionError::Malformed(format!("unknown field `{other}`"))),
            }
        }
        let (Some(design), Some(functional), Some(scan), Some(tag)) = (design, functional, scan, tag) else {
            return Err(ProvisionError::Malformed("missing field".into()));
        };
        let expect = hmac_sha256(provisioning_secret, body.as_bytes());
        let expect_hex: String = expect.iter().map(|b| format!("{b:02x}")).collect();
        // Constant-time-ish comparison.
        if tag.len() != expect_hex.len()
            || tag.bytes().zip(expect_hex.bytes()).fold(0u8, |acc, (a, b)| acc | (a ^ b)) != 0
        {
            return Err(ProvisionError::BadTag);
        }
        Ok(ProvisioningRecord { design, functional_key: functional, scan_key: scan })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProvisioningRecord {
        ProvisioningRecord {
            design: "widget".into(),
            functional_key: vec![true, false, true, true],
            scan_key: vec![false, true],
        }
    }

    #[test]
    fn round_trips_with_the_right_secret() {
        let rec = sample();
        let text = rec.to_text(b"factory-secret");
        let back = ProvisioningRecord::from_text(&text, b"factory-secret").unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn wrong_secret_rejected() {
        let text = sample().to_text(b"factory-secret");
        assert_eq!(
            ProvisioningRecord::from_text(&text, b"other-secret").unwrap_err(),
            ProvisionError::BadTag
        );
    }

    #[test]
    fn tampered_key_rejected() {
        let text = sample().to_text(b"factory-secret");
        let tampered = text.replace("functional 1011", "functional 0011");
        assert_eq!(
            ProvisioningRecord::from_text(&tampered, b"factory-secret").unwrap_err(),
            ProvisionError::BadTag
        );
    }

    #[test]
    fn malformed_records_rejected() {
        assert!(matches!(
            ProvisioningRecord::from_text("junk", b"s"),
            Err(ProvisionError::Malformed(_))
        ));
        assert!(matches!(
            ProvisioningRecord::from_text("design d\nfunctional 10\n", b"s"),
            Err(ProvisionError::Malformed(_)) // missing scan + tag
        ));
        assert!(matches!(
            ProvisioningRecord::from_text("design d\nfunctional 2x\nscan 0\ntag 00\n", b"s"),
            Err(ProvisionError::Malformed(_))
        ));
    }

    #[test]
    fn empty_scan_key_supported() {
        let rec = ProvisioningRecord { design: "d".into(), functional_key: vec![true], scan_key: vec![] };
        let text = rec.to_text(b"s");
        assert_eq!(ProvisioningRecord::from_text(&text, b"s").unwrap(), rec);
    }
}
