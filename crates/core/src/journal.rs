//! Campaign-level journaling: the event vocabulary and crash-safe sink
//! shared by the catalog runner ([`crate::catalog`]) and the fuzzing
//! campaign (`rtlock-fuzz`).
//!
//! The durable substrate — checksummed framing, torn-tail recovery,
//! atomic appends — lives in `rtlock_store`; this module layers the
//! campaign schema on top:
//!
//! * `design_finished` — one catalog design reached a final status. The
//!   event stores the design's **canonical report body verbatim**, so a
//!   resumed run replays exactly the bytes an uninterrupted run would
//!   have produced (the determinism contract of DESIGN.md §12).
//! * `retry` — one supervised attempt failed, with its classification
//!   (`transient`/`permanent`) and the deterministic backoff slept (if
//!   any). Appended *before* the backoff, so a post-crash journal shows
//!   the failure that preceded the kill.
//! * `fuzz_div` / `fuzz_chunk` — fuzzing-campaign events, built and
//!   parsed by `rtlock-fuzz` (a chunk is durable only once its
//!   `fuzz_chunk` marker lands; divergences replay verbatim).
//!
//! Replay is at-least-once: a crash between an event and the next may
//! re-run completed work on resume, and the journal may then hold
//! duplicate events for it. Decoders therefore key events by identity
//! (design index, chunk index, divergence seed) and let the last record
//! win — re-running is deterministic, so duplicates agree anyway.

use rtlock_exec::RetryRecord;
use rtlock_store::{ErrorClass, Event, Journal, Recovery};
use std::io;
use std::path::Path;
use std::time::Duration;

/// Event kind appended when a catalog design reaches a final status.
pub const KIND_DESIGN_FINISHED: &str = "design_finished";
/// Event kind appended for every failed supervised attempt.
pub const KIND_RETRY: &str = "retry";

/// A campaign journal: a [`Journal`] plus the crash-injection hook the
/// kill-and-resume suite uses (`abort()` after the N-th append, so an
/// external driver can kill a campaign at a seeded, reproducible point).
#[derive(Debug)]
pub struct CampaignJournal {
    inner: Journal,
    appended: u64,
    crash_after: Option<u64>,
}

impl CampaignJournal {
    /// Opens (or creates) the journal at `path`, recovering every intact
    /// event. See [`Journal::open`] for the self-healing behaviour on
    /// torn or corrupt suffixes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening or healing the file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(CampaignJournal, Recovery)> {
        let (inner, recovery) = Journal::open(path)?;
        Ok((CampaignJournal { inner, appended: 0, crash_after: None }, recovery))
    }

    /// Arms the crash hook: the process calls [`std::process::abort`]
    /// immediately after the `n`-th successful append (counted from this
    /// call). Test-only by construction — nothing arms it outside the
    /// crash-recovery drivers.
    pub fn set_crash_after(&mut self, n: u64) {
        self.crash_after = Some(n);
        self.appended = 0;
    }

    /// Durably appends one event (fdatasync'd before return).
    ///
    /// # Errors
    ///
    /// Propagates write/sync errors; on error nothing is considered
    /// appended (recovery drops a torn tail).
    pub fn append(&mut self, event: &Event) -> io::Result<()> {
        self.inner.append(event)?;
        self.appended += 1;
        if self.crash_after.is_some_and(|n| self.appended >= n) {
            eprintln!(
                "rtlock-campaign: crash injection armed: aborting after {} journal appends",
                self.appended
            );
            std::process::abort();
        }
        Ok(())
    }

    /// Events appended through this handle (not counting recovered ones).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        self.inner.path()
    }
}

/// Builds the `design_finished` event for design `index`. `body` is the
/// design's canonical report section (everything below its `== name ==`
/// header), stored verbatim for byte-identical replay.
pub fn design_finished_event(index: usize, name: &str, completed: bool, body: &str) -> Event {
    Event::new(KIND_DESIGN_FINISHED)
        .field("index", index.to_string())
        .field("name", name)
        .field("completed", if completed { "true" } else { "false" })
        .field("body", body)
}

/// Builds the `retry` event for one failed supervised attempt within
/// `scope` (`"catalog"` today). `index`/`name` identify the unit of work;
/// the record supplies attempt number, classification and backoff.
pub fn retry_event(scope: &str, index: usize, name: &str, record: &RetryRecord) -> Event {
    Event::new(KIND_RETRY)
        .field("scope", scope)
        .field("index", index.to_string())
        .field("name", name)
        .field("attempt", record.attempt.to_string())
        .field("class", class_name(record.class))
        .field("detail", &record.detail)
        .field(
            // Nanoseconds: the policy's seeded jitter is sub-millisecond,
            // and the journaled schedule must round-trip exactly.
            "backoff_ns",
            match record.backoff {
                Some(d) => u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).to_string(),
                None => "-".to_owned(),
            },
        )
}

/// The wire name of an [`ErrorClass`].
pub fn class_name(class: ErrorClass) -> &'static str {
    match class {
        ErrorClass::Transient => "transient",
        ErrorClass::Permanent => "permanent",
    }
}

/// Parses a wire class name back; `None` for unknown strings (a journal
/// from a newer schema must not panic an older reader).
pub fn parse_class(name: &str) -> Option<ErrorClass> {
    match name {
        "transient" => Some(ErrorClass::Transient),
        "permanent" => Some(ErrorClass::Permanent),
        _ => None,
    }
}

/// Decodes a `retry` event back into a [`RetryRecord`] (plus its scope
/// and unit name), for assertions and reporting over recovered journals.
pub fn parse_retry(event: &Event) -> Option<(String, String, RetryRecord)> {
    if event.kind != KIND_RETRY {
        return None;
    }
    let scope = event.get("scope")?.to_owned();
    let name = event.get("name")?.to_owned();
    let backoff = match event.get("backoff_ns")? {
        "-" => None,
        ns => Some(Duration::from_nanos(ns.parse().ok()?)),
    };
    let record = RetryRecord {
        index: event.get_parsed("index")?,
        attempt: event.get_parsed("attempt")?,
        class: parse_class(event.get("class")?)?,
        detail: event.get("detail")?.to_owned(),
        backoff,
    };
    Some((scope, name, record))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_event_roundtrips() {
        let record = RetryRecord {
            index: 3,
            attempt: 2,
            class: ErrorClass::Transient,
            detail: "stage verify panicked: boom\nwith newline".to_owned(),
            backoff: Some(Duration::new(0, 20_822_465)),
        };
        let event = retry_event("catalog", 3, "b05", &record);
        let decoded = Event::decode(&event.encode()).expect("decodes");
        let (scope, name, back) = parse_retry(&decoded).expect("parses");
        assert_eq!(scope, "catalog");
        assert_eq!(name, "b05");
        assert_eq!(back, record);
    }

    #[test]
    fn final_attempt_has_no_backoff() {
        let record = RetryRecord {
            index: 0,
            attempt: 1,
            class: ErrorClass::Permanent,
            detail: "no candidates".to_owned(),
            backoff: None,
        };
        let (_, _, back) = parse_retry(&retry_event("catalog", 0, "x", &record)).expect("parses");
        assert_eq!(back.backoff, None);
        assert_eq!(back.class, ErrorClass::Permanent);
    }

    #[test]
    fn unknown_class_is_rejected_not_panicked() {
        let event = Event::new(KIND_RETRY)
            .field("scope", "catalog")
            .field("index", "0")
            .field("name", "x")
            .field("attempt", "1")
            .field("class", "catastrophic")
            .field("detail", "d")
            .field("backoff_ns", "-");
        assert!(parse_retry(&event).is_none());
    }

    #[test]
    fn crash_hook_counts_only_new_appends() {
        let dir = std::env::temp_dir().join(format!("rtlock_campaign_j_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hook.journal");
        let _ = std::fs::remove_file(&path);
        let (mut journal, recovery) = CampaignJournal::open(&path).unwrap();
        assert!(recovery.events.is_empty());
        journal.append(&design_finished_event(0, "a", true, "key_bits: 4\n")).unwrap();
        drop(journal);
        // Reopen: recovered events do not advance the crash counter.
        let (mut journal, recovery) = CampaignJournal::open(&path).unwrap();
        assert_eq!(recovery.events.len(), 1);
        assert_eq!(journal.appended(), 0);
        journal.append(&design_finished_event(1, "b", false, "failed: x\n")).unwrap();
        assert_eq!(journal.appended(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
