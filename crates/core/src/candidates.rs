//! Locking-candidate enumeration (step 2 of the RTLock flow).
//!
//! RTLock supports three classes of candidates at RTL (Section III-A):
//! constant locking, arithmetic-operation locking, and five flavors of
//! FSM locking. A *locking point* is a place in the design; each point may
//! have several alternative *cases* (candidates), of which the ILP selects
//! at most one.

use rtlock_rtl::ast::BinaryOp;
use rtlock_rtl::cdfg::{Cdfg, SiteLoc};
use rtlock_rtl::fsm::{self, Fsm};
use rtlock_rtl::{Bv, Module};

/// Ways to lock a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstMode {
    /// XOR each locked bit with a key bit (`c -> key ^ (c ^ K)`).
    XorMask,
    /// Substitute the constant by an arithmetic function of the key
    /// (`c -> key - K` with a random stored offset `K`, correct key
    /// `c + K`).
    Substitute,
}

/// Uniform operator pairing for arithmetic locking. The fixed pairing
/// (`+`↔`-`, `*`↔shifted-`*`, `<<`↔`>>`, `&`↔`|`, `^`↔`~^`) with balanced
/// polarity is RTLock's defense against operator-wise ML attacks (\[27\]).
pub fn paired_op(op: BinaryOp) -> Option<BinaryOp> {
    Some(match op {
        BinaryOp::Add => BinaryOp::Sub,
        BinaryOp::Sub => BinaryOp::Add,
        BinaryOp::Shl => BinaryOp::Shr,
        BinaryOp::Shr => BinaryOp::Shl,
        BinaryOp::And => BinaryOp::Or,
        BinaryOp::Or => BinaryOp::And,
        BinaryOp::Xor => BinaryOp::Xnor,
        BinaryOp::Xnor => BinaryOp::Xor,
        BinaryOp::Mul => BinaryOp::Add,
        _ => return None,
    })
}

/// FSM locking flavor (Fig. 3 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsmLockKind {
    /// Wrong key keeps the machine looping in the initial state.
    InitLock,
    /// Wrong key redirects one transition to a wrong destination.
    IncorrectTransition {
        /// Transition source state.
        from: Bv,
        /// Correct destination.
        to: Bv,
        /// Wrong-key destination.
        wrong: Bv,
    },
    /// Wrong key skips an intermediate state.
    SkipState {
        /// The skipped state.
        skipped: Bv,
        /// Where entries to `skipped` land instead.
        lands: Bv,
    },
    /// A fake state captures the flow under a wrong key.
    BypassState {
        /// Encoding of the inserted fake state.
        fake: Bv,
        /// The state whose entry is re-routed through the fake state.
        detoured: Bv,
    },
    /// A signal assignment inside an FSM state is inverted under a wrong
    /// key.
    InherentSignal {
        /// Process owning the assignment.
        proc_index: usize,
        /// Pre-order index of the assignment within the process.
        assign_ordinal: usize,
    },
}

/// One locking candidate (a "case" in the paper's step 3).
#[derive(Debug, Clone, PartialEq)]
pub enum Candidate {
    /// Lock a constant literal.
    Constant {
        /// Which constant (location + pre-order ordinal from the CDFG
        /// census).
        loc: SiteLoc,
        /// Pre-order ordinal within the location.
        ordinal: usize,
        /// The original value.
        value: Bv,
        /// How to lock it.
        mode: ConstMode,
        /// Number of key bits (low bits of the constant).
        key_bits: usize,
    },
    /// Lock an arithmetic/logic operation against its paired operator.
    Arithmetic {
        /// Which operation.
        loc: SiteLoc,
        /// Pre-order ordinal within the location.
        ordinal: usize,
        /// Original operator.
        op: BinaryOp,
        /// Paired wrong-key operator.
        pair: BinaryOp,
    },
    /// Lock the control FSM.
    Fsm {
        /// Index of the FSM in extraction order.
        fsm_index: usize,
        /// Flavor.
        kind: FsmLockKind,
    },
}

impl Candidate {
    /// Number of key bits this candidate consumes. Arithmetic and FSM
    /// cases use an entangled 2-bit pair (`k0 XNOR k1`), which defeats
    /// per-bit constant-propagation attacks.
    pub fn key_size(&self) -> usize {
        match self {
            Candidate::Constant { key_bits, .. } => *key_bits,
            Candidate::Arithmetic { .. } | Candidate::Fsm { .. } => 2,
        }
    }

    /// The locking *point* this candidate belongs to; at most one case per
    /// point may be selected (the ILP's mutual-exclusion rows).
    pub fn point_id(&self) -> String {
        match self {
            Candidate::Constant { loc, ordinal, .. } => format!("const@{loc:?}#{ordinal}"),
            Candidate::Arithmetic { loc, ordinal, .. } => format!("arith@{loc:?}#{ordinal}"),
            Candidate::Fsm { fsm_index, kind } => {
                // Each FSM flavor is its own point except flavors that touch
                // the same transition structure, which share a point.
                match kind {
                    FsmLockKind::InitLock => format!("fsm{fsm_index}/init"),
                    FsmLockKind::IncorrectTransition { from, .. } => {
                        format!("fsm{fsm_index}/trans/{from}")
                    }
                    FsmLockKind::SkipState { skipped, .. } => format!("fsm{fsm_index}/trans/{skipped}"),
                    FsmLockKind::BypassState { detoured, .. } => {
                        format!("fsm{fsm_index}/trans/{detoured}")
                    }
                    FsmLockKind::InherentSignal { proc_index, assign_ordinal } => {
                        format!("fsm{fsm_index}/sig/{proc_index}/{assign_ordinal}")
                    }
                }
            }
        }
    }

    /// Short human-readable label.
    pub fn label(&self) -> String {
        match self {
            Candidate::Constant { value, mode, .. } => format!("const {value} {mode:?}"),
            Candidate::Arithmetic { op, pair, .. } => format!("arith {op:?}<->{pair:?}"),
            Candidate::Fsm { kind, .. } => match kind {
                FsmLockKind::InitLock => "fsm init-lock".into(),
                FsmLockKind::IncorrectTransition { from, to, .. } => {
                    format!("fsm wrong-transition {from}->{to}")
                }
                FsmLockKind::SkipState { skipped, .. } => format!("fsm skip {skipped}"),
                FsmLockKind::BypassState { fake, .. } => format!("fsm bypass via {fake}"),
                FsmLockKind::InherentSignal { .. } => "fsm inherent-signal".into(),
            },
        }
    }
}

/// Enumeration limits (keeps the offline database tractable on large
/// designs).
#[derive(Debug, Clone, Copy)]
pub struct EnumConfig {
    /// Max constants considered.
    pub max_constants: usize,
    /// Max arithmetic sites considered.
    pub max_arith: usize,
    /// Max key bits per constant candidate.
    pub max_const_key_bits: usize,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig { max_constants: 24, max_arith: 24, max_const_key_bits: 8 }
    }
}

/// Enumerates all locking candidates of a module.
///
/// Returns the candidate list and the extracted FSMs (transforms need
/// them).
pub fn enumerate(module: &Module, config: &EnumConfig) -> (Vec<Candidate>, Vec<Fsm>) {
    let (candidates, fsms, _) =
        enumerate_bounded(module, config, &rtlock_governor::CancelToken::unlimited());
    (candidates, fsms)
}

/// Budget-aware enumeration: polls `cancel` between enumeration phases and
/// candidate sites and stops adding once it fires. Whatever was collected
/// so far is returned; the final `bool` is `false` when the list was cut
/// short.
pub fn enumerate_bounded(
    module: &Module,
    config: &EnumConfig,
    cancel: &rtlock_governor::CancelToken,
) -> (Vec<Candidate>, Vec<Fsm>, bool) {
    let cdfg = Cdfg::build(module);
    let fsms = fsm::extract(module);
    let mut out = Vec::new();
    let mut complete = true;

    'collect: {
        // Constants: two cases (modes) per point. State-encoding constants
        // inside an FSM's transition process are excluded — those belong to
        // the FSM locking flavors and must stay structurally recognizable.
        let is_state_const = |loc: &SiteLoc, value: &Bv| -> bool {
            fsms.iter().any(|f| {
                matches!(loc, SiteLoc::Proc { index } if *index == f.case_proc)
                    && value.width() == f.state_width(module)
                    && f.states.contains(value)
            })
        };
        for site in
            cdfg.consts.iter().filter(|s| !is_state_const(&s.loc, &s.value)).take(config.max_constants)
        {
            if cancel.should_stop().is_some() {
                complete = false;
                break 'collect;
            }
            let key_bits = site.value.width().min(config.max_const_key_bits);
            for mode in [ConstMode::XorMask, ConstMode::Substitute] {
                out.push(Candidate::Constant {
                    loc: site.loc,
                    ordinal: site.ordinal,
                    value: site.value.clone(),
                    mode,
                    key_bits: if mode == ConstMode::Substitute { site.value.width().min(config.max_const_key_bits) } else { key_bits },
                });
            }
        }

        // Arithmetic ops with a defined pairing.
        let mut arith_seen = 0usize;
        for site in &cdfg.ops {
            if arith_seen >= config.max_arith {
                break;
            }
            if cancel.should_stop().is_some() {
                complete = false;
                break 'collect;
            }
            if let Some(pair) = paired_op(site.op) {
                if site.op.is_arith() || matches!(site.op, BinaryOp::And | BinaryOp::Or | BinaryOp::Xor | BinaryOp::Xnor)
                {
                    out.push(Candidate::Arithmetic { loc: site.loc, ordinal: site.ordinal, op: site.op, pair });
                    arith_seen += 1;
                }
            }
        }

        // FSM flavors.
        for (fi, f) in fsms.iter().enumerate() {
            if cancel.should_stop().is_some() {
                complete = false;
                break 'collect;
            }
            if f.initial.is_some() {
                out.push(Candidate::Fsm { fsm_index: fi, kind: FsmLockKind::InitLock });
            }
            // Incorrect transitions: for each (from, to), pick a wrong
            // destination = another known state.
            for t in &f.transitions {
                if let Some(wrong) = f.states.iter().find(|s| **s != t.to && Some(*s) != f.initial.as_ref()) {
                    out.push(Candidate::Fsm {
                        fsm_index: fi,
                        kind: FsmLockKind::IncorrectTransition {
                            from: t.from.clone(),
                            to: t.to.clone(),
                            wrong: wrong.clone(),
                        },
                    });
                }
            }
            // Skip: states with an unconditional successor.
            for s in &f.states {
                let succ = f.successors(s);
                if succ.len() == 1 && !succ[0].guarded && Some(s) != f.initial.as_ref() {
                    out.push(Candidate::Fsm {
                        fsm_index: fi,
                        kind: FsmLockKind::SkipState { skipped: s.clone(), lands: succ[0].to.clone() },
                    });
                }
            }
            // Bypass: needs a spare encoding.
            let width = f.state_width(module);
            if f.states.len() < 1usize << width.min(20) {
                let mut enc = 0u64;
                let fake = loop {
                    let cand = Bv::from_u64(width, enc);
                    if !f.states.contains(&cand) {
                        break cand;
                    }
                    enc += 1;
                };
                if let Some(t) = f.transitions.iter().find(|t| t.from != t.to) {
                    out.push(Candidate::Fsm {
                        fsm_index: fi,
                        kind: FsmLockKind::BypassState { fake, detoured: t.to.clone() },
                    });
                }
            }
            // Inherent signals: non-state assignments inside the seq process
            // that owns the state register.
            for (pi, p) in module.procs.iter().enumerate() {
                if !matches!(p.kind, rtlock_rtl::ProcessKind::Seq { .. }) {
                    continue;
                }
                let mut ordinal = 0usize;
                collect_signal_assigns(&p.body, f, module, pi, &mut ordinal, &mut out, fi);
            }
        }
    }

    (out, fsms, complete)
}

fn collect_signal_assigns(
    stmts: &[rtlock_rtl::Stmt],
    f: &Fsm,
    module: &Module,
    proc_index: usize,
    ordinal: &mut usize,
    out: &mut Vec<Candidate>,
    fsm_index: usize,
) {
    use rtlock_rtl::Stmt;
    for s in stmts {
        match s {
            Stmt::Assign { lhs, .. } => {
                if lhs.net != f.state_reg && lhs.net != f.next_net && module.width(lhs.net) <= 8 {
                    out.push(Candidate::Fsm {
                        fsm_index,
                        kind: FsmLockKind::InherentSignal { proc_index, assign_ordinal: *ordinal },
                    });
                }
                *ordinal += 1;
            }
            Stmt::If { then_, else_, .. } => {
                collect_signal_assigns(then_, f, module, proc_index, ordinal, out, fsm_index);
                collect_signal_assigns(else_, f, module, proc_index, ordinal, out, fsm_index);
            }
            Stmt::Case { arms, default, .. } => {
                for a in arms {
                    collect_signal_assigns(&a.body, f, module, proc_index, ordinal, out, fsm_index);
                }
                collect_signal_assigns(default, f, module, proc_index, ordinal, out, fsm_index);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_rtl::parse;

    const SRC: &str = "module t(input clk, input rst, input go, input [7:0] d, output reg [7:0] y);\n\
        reg [1:0] st; reg [1:0] st_next;\n\
        always @(*) begin\n\
          st_next = st;\n\
          case (st)\n\
            2'd0: begin if (go) st_next = 2'd1; end\n\
            2'd1: begin st_next = 2'd2; end\n\
            2'd2: begin st_next = 2'd0; end\n\
          endcase\n\
        end\n\
        always @(posedge clk or posedge rst) begin\n\
          if (rst) begin st <= 2'd0; y <= 8'd0; end\n\
          else begin\n\
            st <= st_next;\n\
            if (st == 2'd1) y <= d + 8'd37;\n\
          end\n\
        end\nendmodule";

    #[test]
    fn bounded_enumeration_stops_on_expired_token() {
        use rtlock_governor::{CancelToken, Deadline};
        use std::time::Duration;
        let m = parse(SRC).unwrap();
        let expired = CancelToken::with_deadline(Deadline::after(Duration::ZERO));
        let (cands, fsms, complete) = enumerate_bounded(&m, &EnumConfig::default(), &expired);
        assert!(!complete);
        assert!(cands.is_empty(), "no work past an already-expired deadline");
        assert_eq!(fsms.len(), 1, "FSM extraction still reported");
        let (full, _, ok) = enumerate_bounded(&m, &EnumConfig::default(), &CancelToken::unlimited());
        assert!(ok);
        assert!(!full.is_empty());
    }

    #[test]
    fn finds_all_three_classes() {
        let m = parse(SRC).unwrap();
        let (cands, fsms) = enumerate(&m, &EnumConfig::default());
        assert_eq!(fsms.len(), 1);
        assert!(cands.iter().any(|c| matches!(c, Candidate::Constant { .. })), "constant 37");
        assert!(cands.iter().any(|c| matches!(c, Candidate::Arithmetic { op: BinaryOp::Add, .. })));
        assert!(cands.iter().any(|c| matches!(c, Candidate::Fsm { kind: FsmLockKind::InitLock, .. })));
        assert!(cands
            .iter()
            .any(|c| matches!(c, Candidate::Fsm { kind: FsmLockKind::IncorrectTransition { .. }, .. })));
        assert!(cands.iter().any(|c| matches!(c, Candidate::Fsm { kind: FsmLockKind::SkipState { .. }, .. })));
        assert!(cands.iter().any(|c| matches!(c, Candidate::Fsm { kind: FsmLockKind::BypassState { .. }, .. })));
        assert!(cands
            .iter()
            .any(|c| matches!(c, Candidate::Fsm { kind: FsmLockKind::InherentSignal { .. }, .. })));
    }

    #[test]
    fn constant_candidates_share_a_point() {
        let m = parse(SRC).unwrap();
        let (cands, _) = enumerate(&m, &EnumConfig::default());
        let const_points: Vec<String> = cands
            .iter()
            .filter(|c| matches!(c, Candidate::Constant { value, .. } if value.to_u64() == Some(37)))
            .map(|c| c.point_id())
            .collect();
        assert_eq!(const_points.len(), 2, "two modes");
        assert_eq!(const_points[0], const_points[1], "same locking point");
    }

    #[test]
    fn pairing_is_involutive_for_add_sub() {
        assert_eq!(paired_op(BinaryOp::Add), Some(BinaryOp::Sub));
        assert_eq!(paired_op(BinaryOp::Sub), Some(BinaryOp::Add));
        assert_eq!(paired_op(BinaryOp::Eq), None);
    }

    #[test]
    fn bypass_uses_unused_encoding() {
        let m = parse(SRC).unwrap();
        let (cands, fsms) = enumerate(&m, &EnumConfig::default());
        let fake = cands.iter().find_map(|c| match c {
            Candidate::Fsm { kind: FsmLockKind::BypassState { fake, .. }, .. } => Some(fake.clone()),
            _ => None,
        });
        let fake = fake.expect("bypass candidate exists");
        assert!(!fsms[0].states.contains(&fake));
    }

    #[test]
    fn key_sizes_positive() {
        let m = parse(SRC).unwrap();
        let (cands, _) = enumerate(&m, &EnumConfig::default());
        assert!(cands.iter().all(|c| c.key_size() >= 1));
    }
}
