//! The end-to-end RTLock flow (the seven steps of Section III-A,
//! bracketed by a pre-lock and a post-lock lint gate) and the
//! [`LockedDesign`] artifact it produces.

use crate::candidates::{enumerate_bounded, Candidate, EnumConfig};
use crate::database::{build_database_governed_cached, Database, DatabaseConfig};
use crate::governor::{Degradation, Fault, Governor, RunBudget, Stage, StageOutcome};
use crate::scan_lock::{insert_scan_lock, ScanLockConfig, ScanPolicy};
use crate::select::{select_greedy, select_ilp_bounded, SelectOutcome, SelectionSpec};
use crate::transforms::{apply_all, inject_sabotage, mark_key_inputs, KeyAllocator};
use crate::verify::{try_cosim_bounded, try_wrong_key_corruption, CorruptionOutcome, CosimOutcome};
use rtlock_artifacts::{cached_elaborate, cached_optimize, cached_scoap, ArtifactStore};
use rtlock_governor::CancelToken;
use rtlock_lint::{lint_selected_bounded, Diagnostic, LintPhase, LintReport, LintTarget};
use rtlock_netlist::Netlist;
use rtlock_p1735::envelope::{protect, Grant};
use rtlock_rtl::{print as print_rtl, Module};
use rtlock_synth::{elaborate, optimize, scan, scan_view};
use std::fmt;
use std::sync::Arc;

/// Full flow configuration.
#[derive(Debug, Clone)]
pub struct RtlLockConfig {
    /// Candidate enumeration limits (step 2).
    pub enumeration: EnumConfig,
    /// Database construction (step 3).
    pub database: DatabaseConfig,
    /// Designer specification for selection (step 4).
    pub spec: SelectionSpec,
    /// Fall back to greedy selection when the ILP is infeasible.
    pub greedy_fallback: bool,
    /// Partial scan + scan locking (step 7); `None` skips it ("RTLock*"
    /// configurations of Tables III/IV).
    pub scan: Option<ScanLockConfig>,
    /// Co-simulation cycles for final verification (step 6).
    pub verify_cycles: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for RtlLockConfig {
    fn default() -> Self {
        RtlLockConfig {
            enumeration: EnumConfig::default(),
            database: DatabaseConfig::default(),
            spec: SelectionSpec::default(),
            greedy_fallback: true,
            scan: Some(ScanLockConfig::default()),
            verify_cycles: 48,
            seed: 0x10C4,
        }
    }
}

/// Error from the locking flow.
#[derive(Debug, Clone, PartialEq)]
pub enum LockError {
    /// No candidate survived (nothing to lock).
    NoCandidates,
    /// Selection infeasible and greedy fallback disabled or empty.
    SelectionInfeasible,
    /// The combined locked design failed verification.
    VerificationFailed {
        /// Mismatch rate observed under the correct key.
        mismatch_rate: f64,
    },
    /// Scan locking failed.
    Scan(String),
    /// Synthesis of the locked design failed.
    Synthesis(String),
    /// Co-simulation could not run (e.g. a combinational loop).
    Simulation(String),
    /// A stage panicked; the flow caught the unwind at the stage boundary.
    StagePanic {
        /// The stage whose body panicked.
        stage: Stage,
        /// The panic payload's message, best effort.
        message: String,
    },
    /// A stage with no cheaper fallback ran out of budget.
    Timeout {
        /// The stage that could not complete in time.
        stage: Stage,
    },
    /// A lint gate found `Deny`-severity defects and aborted the flow.
    LintRejected {
        /// Which gate rejected ([`Stage::PreLint`], [`Stage::PostLint`],
        /// or the dataflow [`Stage::Analyze`] gate).
        stage: Stage,
        /// The `Deny` findings (the full report, warnings included, is on
        /// [`FlowReport`] when the flow returns one).
        findings: Vec<Diagnostic>,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::NoCandidates => write!(f, "no viable locking candidates"),
            LockError::SelectionInfeasible => write!(f, "selection specification infeasible"),
            LockError::VerificationFailed { mismatch_rate } => {
                write!(f, "locked design diverges under the correct key (rate {mismatch_rate})")
            }
            LockError::Scan(m) => write!(f, "scan locking: {m}"),
            LockError::Synthesis(m) => write!(f, "synthesis: {m}"),
            LockError::Simulation(m) => write!(f, "co-simulation: {m}"),
            LockError::StagePanic { stage, message } => {
                write!(f, "stage {stage} panicked: {message}")
            }
            LockError::Timeout { stage } => write!(f, "stage {stage} ran out of budget"),
            LockError::LintRejected { stage, findings } => {
                write!(f, "{stage} gate rejected the design ({} deny finding(s)", findings.len())?;
                if let Some(first) = findings.first() {
                    write!(f, "; first: {first}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl std::error::Error for LockError {}

impl LockError {
    /// How a retry supervisor should treat this error. Stage panics and
    /// budget exhaustion are [`Transient`](rtlock_store::ErrorClass) — a
    /// re-run with a fresh budget can succeed. Everything structural
    /// (nothing to lock, infeasible spec, verification/lint rejection,
    /// synthesis or simulation failure) is deterministic for a given
    /// design and so [`Permanent`](rtlock_store::ErrorClass): retrying
    /// burns budget to reach the same error.
    pub fn error_class(&self) -> rtlock_store::ErrorClass {
        match self {
            LockError::StagePanic { .. } | LockError::Timeout { .. } => {
                rtlock_store::ErrorClass::Transient
            }
            LockError::NoCandidates
            | LockError::SelectionInfeasible
            | LockError::VerificationFailed { .. }
            | LockError::Scan(_)
            | LockError::Synthesis(_)
            | LockError::Simulation(_)
            | LockError::LintRejected { .. } => rtlock_store::ErrorClass::Permanent,
        }
    }
}

/// Flow report (step-by-step numbers for the paper tables).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Candidates enumerated.
    pub candidates_enumerated: usize,
    /// Cases that were viable in the database.
    pub viable_cases: usize,
    /// Whether the ILP (vs greedy fallback) produced the selection.
    pub used_ilp: bool,
    /// Selected candidate indices.
    pub selected: Vec<usize>,
    /// Candidates actually applied (site conflicts may drop some).
    pub applied: Vec<usize>,
    /// Functional key length.
    pub key_bits: usize,
    /// Correct-key mismatch rate from final co-simulation (must be 0).
    pub verified_mismatch_rate: f64,
    /// Wrong-key output corruption estimate.
    pub corruption: f64,
    /// Graceful degradations recorded by the governor (empty on an
    /// ungoverned or fully in-budget run).
    pub degradations: Vec<Degradation>,
    /// `true` when verification was cut short by the budget: the mismatch
    /// and corruption numbers then cover fewer cycles/samples than
    /// requested.
    pub partial_verification: bool,
    /// Pre-lock lint gate report (`None` when the gate was skipped by a
    /// fault injection or an exhausted budget).
    pub pre_lint: Option<LintReport>,
    /// Post-lock lint gate report (`None` when skipped). Findings already
    /// present in the pre-lock report are deduplicated away — only what
    /// the lock introduced remains.
    pub post_lint: Option<LintReport>,
    /// Whole-design dataflow analysis report — the `K` rules over the
    /// locked netlist's key-taint, constant/X, and scan-reachability
    /// fixpoints (`None` when the stage was skipped). Deduplicated
    /// against both lint gates.
    pub analysis: Option<LintReport>,
    /// Terminal status of every stage that executed, in flow order — a
    /// tolerated stage panic appears here with its captured payload
    /// message, not just as a generic flag.
    pub stage_outcomes: Vec<StageOutcome>,
}

/// The artifact of a completed RTLock run.
#[derive(Debug, Clone)]
pub struct LockedDesign {
    /// The original RTL.
    pub original: Module,
    /// The locked (and possibly scan-locked) RTL.
    pub locked: Module,
    /// The functional locking key.
    pub key: Vec<bool>,
    /// Scan policy when scan locking was requested.
    pub scan_policy: Option<ScanPolicy>,
    /// Applied candidates.
    pub applied: Vec<Candidate>,
    /// The offline case database (for reports/benches).
    pub database: Database,
    /// Flow statistics.
    pub report: FlowReport,
    /// Artifact cache the flow ran with; the accessors
    /// ([`LockedDesign::locked_netlist`], [`LockedDesign::attack_surface`],
    /// …) reuse it so their re-synthesis hits instead of recomputing.
    /// `None` on uncached runs — results are byte-identical either way.
    cache: Option<Arc<ArtifactStore>>,
}

/// What an oracle-guided attacker can reach.
#[derive(Debug, Clone)]
pub enum AttackSurface {
    /// Scan access granted: combinational full-scan views of the locked
    /// and original designs (key inputs marked on the locked view).
    CombinationalViews {
        /// Scan view of the locked netlist.
        locked: Netlist,
        /// Scan view of the original netlist.
        original: Netlist,
    },
    /// Scan access denied by scan locking: only sequential I/O access
    /// remains (BMC territory).
    SequentialOnly {
        /// The locked sequential netlist (key inputs marked).
        locked: Netlist,
        /// The original sequential netlist.
        original: Netlist,
    },
}

impl LockedDesign {
    /// Synthesizes the locked RTL (key inputs marked, partial scan chain
    /// recorded per the scan policy).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::Synthesis`] on elaboration failure.
    pub fn locked_netlist(&self) -> Result<Netlist, LockError> {
        synthesize_locked(
            &self.locked,
            self.scan_policy.as_ref(),
            self.cache.as_deref(),
            &CancelToken::unlimited(),
        )
    }

    /// Synthesizes the original RTL.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::Synthesis`] on elaboration failure.
    pub fn original_netlist(&self) -> Result<Netlist, LockError> {
        let cache = self.cache.as_deref();
        let token = CancelToken::unlimited();
        match cache {
            None => {
                let mut n =
                    elaborate(&self.original).map_err(|e| LockError::Synthesis(e.to_string()))?;
                optimize(&mut n);
                Ok(n)
            }
            Some(_) => {
                let n = cached_elaborate(cache, &self.original, &token)
                    .map_err(|e| LockError::Synthesis(e.to_string()))?;
                Ok(cached_optimize(cache, &n, &token).0)
            }
        }
    }

    /// The artifact cache this design was produced with, if any.
    pub fn artifact_cache(&self) -> Option<&Arc<ArtifactStore>> {
        self.cache.as_ref()
    }

    /// The attack surface an oracle-guided adversary sees. With scan
    /// locking active, scan access requires the correct scan key; without
    /// it (or with the right key) the full-scan combinational views are
    /// exposed.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::Synthesis`] on elaboration failure.
    pub fn attack_surface(&self, scan_key: Option<&[bool]>) -> Result<AttackSurface, LockError> {
        let mut locked = self.locked_netlist()?;
        let original = self.original_netlist()?;
        let scan_unlocked = match &self.scan_policy {
            None => true,
            Some(policy) => scan_key.is_some_and(|k| k == policy.scan_key.as_slice()),
        };
        if scan_unlocked {
            scan::insert_full_scan(&mut locked);
            let mut lv = scan_view(&locked).netlist;
            mark_key_inputs(&mut lv);
            let mut orig_scanned = original;
            scan::insert_full_scan(&mut orig_scanned);
            let ov = scan_view(&orig_scanned).netlist;
            Ok(AttackSurface::CombinationalViews { locked: lv, original: ov })
        } else {
            Ok(AttackSurface::SequentialOnly { locked, original })
        }
    }

    /// Exports the locked RTL as a P1735 envelope for the given tool
    /// grants (step "IP encryption for integration/verification").
    pub fn export_p1735(&self, grants: &[Grant], rng: &mut impl rand::Rng) -> String {
        protect(&print_rtl(&self.locked), grants, rng)
    }

    /// Exports the synthesized locked netlist in ISCAS-89 `.bench` format
    /// with `keyinput*` conventions, for cross-checking against external
    /// attack tools (e.g. the original SAT-attack binary of \[38\]).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::Synthesis`] on elaboration failure.
    pub fn export_bench(&self) -> Result<String, LockError> {
        Ok(rtlock_netlist::to_bench(&self.locked_netlist()?))
    }
}

/// Synthesizes a locked module (key inputs marked, partial scan chain
/// rebuilt per the policy). Shared by [`LockedDesign::locked_netlist`]
/// and the post-lock lint gate, so both analyze the identical netlist.
/// The expensive elaborate/optimize steps route through the artifact
/// cache when one is supplied; the cheap key-marking and scan rebuild
/// always run, so the result is identical with the cache hot, cold, or
/// absent.
fn synthesize_locked(
    locked: &Module,
    scan_policy: Option<&ScanPolicy>,
    cache: Option<&ArtifactStore>,
    token: &CancelToken,
) -> Result<Netlist, LockError> {
    let mut n = match cache {
        None => {
            let mut n = elaborate(locked).map_err(|e| LockError::Synthesis(e.to_string()))?;
            optimize(&mut n);
            n
        }
        Some(_) => {
            let elabbed = cached_elaborate(cache, locked, token)
                .map_err(|e| LockError::Synthesis(e.to_string()))?;
            cached_optimize(cache, &elabbed, token).0
        }
    };
    mark_key_inputs(&mut n);
    if let Some(policy) = scan_policy {
        let mut chain = Vec::new();
        for name in &policy.scanned_registers {
            for ff in n.dffs() {
                if let Some(gn) = n.gate_name(ff) {
                    if gn == name || gn.starts_with(&format!("{name}[")) {
                        chain.push(ff);
                    }
                }
            }
        }
        n.scan_chain.clear();
        scan::insert_scan(&mut n, &chain);
    }
    Ok(n)
}

/// Runs the complete RTLock flow on a module, unbounded.
///
/// Equivalent to [`lock_governed`] with [`RunBudget::unlimited`] — no
/// deadlines, no fault injections, only panic isolation at the stage
/// boundaries.
///
/// # Errors
///
/// See [`LockError`]; the common failure is an infeasible
/// [`SelectionSpec`] with `greedy_fallback` disabled.
pub fn lock(module: &Module, config: &RtlLockConfig) -> Result<LockedDesign, LockError> {
    lock_governed(module, config, &RunBudget::unlimited())
}

/// Runs the complete RTLock flow under a [`RunBudget`].
///
/// Every stage — the seven locking steps, the two lint gates, and the
/// final dataflow analysis gate — executes through the
/// [`Governor`](crate::governor::Governor): its body is panic-isolated
/// (a panic becomes [`LockError::StagePanic`]), it polls a cancel token
/// tightened to the stage's soft deadline, and when a budget fires the
/// flow degrades along a fixed ladder instead of failing outright:
///
/// * enumeration returns the candidates collected so far;
/// * database probing drops SAT/ML probes in favor of structural
///   estimates;
/// * an out-of-budget ILP falls back to greedy selection (when
///   `greedy_fallback` allows it);
/// * verification returns a reduced-cycle verdict flagged via
///   [`FlowReport::partial_verification`].
///
/// Cheap must-run stages (transform, scan locking) always execute; only
/// the first stage refuses to start on an already-expired budget. Each
/// degradation is recorded in [`FlowReport::degradations`].
///
/// # Errors
///
/// All of [`lock`]'s errors, plus [`LockError::StagePanic`] and
/// [`LockError::Timeout`] when a stage without a fallback runs dry.
pub fn lock_governed(
    module: &Module,
    config: &RtlLockConfig,
    budget: &RunBudget,
) -> Result<LockedDesign, LockError> {
    lock_governed_cached(module, config, budget, None)
}

/// [`lock_governed`] with a content-addressed artifact cache.
///
/// The Elaborate stage, the post-lock/analysis synthesis, the per-case
/// database synthesis, and the lint gates' SCOAP profiles all consult
/// `cache` before recomputing. The determinism contract holds: the
/// returned [`LockedDesign`] and [`FlowReport`] are byte-identical
/// whether the cache is cold, hot, shared with other runs, or absent —
/// only the cache's own hit/miss counters differ. Cache lookups are
/// bounded by the stage's [`CancelToken`] and degrade to recomputation
/// under the stage's own budget, never to partial artifacts.
///
/// # Errors
///
/// Same as [`lock_governed`].
pub fn lock_governed_cached(
    module: &Module,
    config: &RtlLockConfig,
    budget: &RunBudget,
    cache: Option<Arc<ArtifactStore>>,
) -> Result<LockedDesign, LockError> {
    let cache_ref = cache.as_deref();
    let mut gov = Governor::start(budget.clone());

    // Step 1: elaborate — validates the original synthesizes before any
    // expensive work starts. The netlist feeds the pre-lock lint gate; an
    // elaboration *failure* is held until after that gate so structural
    // defects surface as findings, not as an opaque synthesis error.
    let empty_elab = gov.fault_plan().has(Stage::Elaborate, Fault::EmptyResult);
    let elab = gov.run_stage(Stage::Elaborate, |token| {
        if empty_elab {
            return Err(LockError::Synthesis("injected fault: elaboration produced nothing".into()));
        }
        if token.should_stop().is_some() {
            return Err(LockError::Timeout { stage: Stage::Elaborate });
        }
        Ok(cached_elaborate(cache_ref, module, token)
            .map_err(|e| LockError::Synthesis(e.to_string())))
    })?;

    // Pre-lock lint gate: refuse structurally broken inputs before any
    // locking work is spent on them. The gate is advisory machinery, so a
    // panic *inside the linter* is tolerated — the flow degrades with the
    // captured payload (surfaced in the stage outcomes) rather than
    // failing a lockable design.
    let skip_pre = gov.fault_plan().has(Stage::PreLint, Fault::EmptyResult);
    let pre_lint = match gov.run_stage(Stage::PreLint, |token| {
        if skip_pre {
            return Ok(None);
        }
        let mut target = match &elab {
            Ok(n) => LintTarget::full(module, n),
            Err(_) => LintTarget::rtl(module),
        }
        .with_phase(LintPhase::PreLock);
        if let (Some(_), Ok(n)) = (cache_ref, &elab) {
            // Seed the gate's SCOAP profile from the cache so the Y rules
            // don't recompute it per run (same profile the post-lock and
            // analysis gates reuse when the lock is a no-op).
            target = target.with_scoap(cached_scoap(cache_ref, n, token));
        }
        Ok(Some(lint_selected_bounded(&target, token, |id| !id.starts_with('K'))))
    }) {
        Ok(rep) => rep,
        Err(LockError::StagePanic { message, .. }) => {
            gov.degrade(Stage::PreLint, format!("pre-lock lint gate panicked ({message}); gate skipped"));
            None
        }
        Err(e) => return Err(e),
    };
    match &pre_lint {
        Some(rep) => {
            if !rep.skipped.is_empty() {
                gov.degrade(
                    Stage::PreLint,
                    format!("{} lint rule(s) skipped past the deadline", rep.skipped.len()),
                );
            }
            if !rep.is_clean() {
                return Err(LockError::LintRejected { stage: Stage::PreLint, findings: rep.denials() });
            }
        }
        None if skip_pre => gov.degrade(Stage::PreLint, "pre-lock lint skipped (injected empty result)"),
        None => {}
    }
    // The gate had nothing to say about an un-synthesizable input (or was
    // skipped): fail with the elaboration error itself.
    elab?;

    // Step 2: enumerate candidates (budget cuts the list short).
    let empty_enum = gov.fault_plan().has(Stage::Enumerate, Fault::EmptyResult);
    let (candidates, fsms, enum_complete) = gov.run_stage(Stage::Enumerate, |token| {
        if empty_enum {
            return Ok((Vec::new(), Vec::new(), true));
        }
        Ok(enumerate_bounded(module, &config.enumeration, token))
    })?;
    if !enum_complete {
        if candidates.is_empty() {
            return Err(LockError::Timeout { stage: Stage::Enumerate });
        }
        gov.degrade(
            Stage::Enumerate,
            format!("enumeration cut short at {} candidates", candidates.len()),
        );
    }
    if candidates.is_empty() {
        return Err(LockError::NoCandidates);
    }

    // Step 3: offline database (budget degrades probes to structural
    // estimates).
    let empty_db = gov.fault_plan().has(Stage::Database, Fault::EmptyResult);
    let (database, db_complete) = gov.run_stage(Stage::Database, |token| {
        if empty_db {
            return Ok((Database::default(), true));
        }
        Ok(build_database_governed_cached(
            module,
            &candidates,
            &fsms,
            &config.database,
            token,
            cache_ref,
        ))
    })?;
    if !db_complete {
        gov.degrade(Stage::Database, "attack probes replaced by structural estimates past the deadline");
    }
    if database.viable_cases().count() == 0 {
        return Err(LockError::NoCandidates);
    }

    // Step 4: ILP selection (budget falls back to greedy).
    let empty_sel = gov.fault_plan().has(Stage::Select, Fault::EmptyResult);
    let outcome = gov.run_stage(Stage::Select, |token| {
        if empty_sel {
            return Ok(SelectOutcome::Selected(Vec::new()));
        }
        Ok(select_ilp_bounded(&database, &candidates, &config.spec, token))
    })?;
    let (selected, used_ilp) = match outcome {
        SelectOutcome::Selected(s) if !s.is_empty() => (s, true),
        SelectOutcome::TimedOut if !config.greedy_fallback => {
            return Err(LockError::Timeout { stage: Stage::Select })
        }
        other => {
            if !config.greedy_fallback {
                return Err(LockError::SelectionInfeasible);
            }
            if other == SelectOutcome::TimedOut {
                gov.degrade(Stage::Select, "ILP out of budget; greedy selection substituted");
            }
            let g = select_greedy(&database, &candidates, &config.spec);
            if g.is_empty() {
                return Err(LockError::SelectionInfeasible);
            }
            (g, false)
        }
    };

    // Step 5: update RTL. Cheap and mandatory — runs even past the
    // budget so the work above is never wasted.
    let empty_transform = gov.fault_plan().has(Stage::Transform, Fault::EmptyResult);
    let sabotage = gov.fault_plan().has(Stage::Transform, Fault::Sabotage);
    let (mut locked, applied, key) = gov.run_stage(Stage::Transform, |_| {
        let mut locked = module.clone();
        let mut keys = KeyAllocator::new();
        if empty_transform {
            return Ok((locked, Vec::new(), Vec::new()));
        }
        let chosen: Vec<Candidate> = selected.iter().map(|&i| candidates[i].clone()).collect();
        let applied_local = apply_all(&mut locked, &chosen, &fsms, &mut keys);
        let applied: Vec<usize> = applied_local.iter().map(|&k| selected[k]).collect();
        if sabotage {
            // A key gate on a constant net: invisible to correct-key
            // verification, caught only by the post-lock lint gate.
            inject_sabotage(&mut locked, &mut keys);
        }
        Ok((locked, applied, keys.correct_key().to_vec()))
    })?;
    if key.is_empty() {
        return Err(LockError::NoCandidates);
    }

    // Step 6: verification (budget yields a partial verdict).
    let empty_verify = gov.fault_plan().has(Stage::Verify, Fault::EmptyResult);
    let (cosim, corruption) = gov.run_stage(Stage::Verify, |token| {
        if empty_verify {
            return Ok((
                CosimOutcome { mismatch_rate: 0.0, cycles_run: 0, complete: false },
                CorruptionOutcome { corruption: 0.0, samples_run: 0, complete: false },
            ));
        }
        let cosim = try_cosim_bounded(module, &locked, &key, config.verify_cycles, config.seed, token)
            .map_err(LockError::Simulation)?;
        let corruption =
            try_wrong_key_corruption(module, &locked, &key, 3, config.verify_cycles, config.seed, token)
                .map_err(LockError::Simulation)?;
        Ok((cosim, corruption))
    })?;
    if cosim.mismatch_rate > 0.0 {
        return Err(LockError::VerificationFailed { mismatch_rate: cosim.mismatch_rate });
    }
    let partial_verification = !cosim.complete || !corruption.complete;
    if partial_verification {
        gov.degrade(
            Stage::Verify,
            format!(
                "partial verdict: {}/{} cycles, {}/3 wrong-key samples",
                cosim.cycles_run, config.verify_cycles, corruption.samples_run
            ),
        );
    }

    // Step 7: partial scan + scan locking. Also cheap and mandatory.
    let skip_scan = gov.fault_plan().has(Stage::ScanLock, Fault::EmptyResult);
    let scan_policy = gov.run_stage(Stage::ScanLock, |_| match &config.scan {
        Some(sc) if !skip_scan => {
            insert_scan_lock(&mut locked, sc).map(Some).map_err(|e| LockError::Scan(e.message))
        }
        _ => Ok(None),
    })?;
    if skip_scan && config.scan.is_some() {
        gov.degrade(Stage::ScanLock, "scan locking skipped (injected empty result)");
    }

    // Post-lock lint gate: key- and scan-aware rules over the locked
    // design. Skipped (with a recorded degradation) when the budget is
    // already exhausted — synthesizing the locked netlist is not free.
    // The dataflow `K` rules are excluded here: they run in their own
    // governed `analyze` stage below.
    let skip_post = gov.fault_plan().has(Stage::PostLint, Fault::EmptyResult);
    let mut post_panicked = false;
    let mut post_lint = match gov.run_stage(Stage::PostLint, |token| {
        if skip_post || token.should_stop().is_some() {
            return Ok(None);
        }
        let n = synthesize_locked(&locked, scan_policy.as_ref(), cache_ref, token)?;
        let mut target = LintTarget::full(&locked, &n)
            .with_phase(LintPhase::PostLock)
            .with_scan_locked(scan_policy.is_some());
        if cache_ref.is_some() {
            // One SCOAP profile per distinct netlist: the gates' Y/S rules
            // otherwise each recompute it per target.
            target = target.with_scoap(cached_scoap(cache_ref, &n, token));
        }
        Ok(Some(lint_selected_bounded(&target, token, |id| !id.starts_with('K'))))
    }) {
        Ok(rep) => rep,
        Err(LockError::StagePanic { message, .. }) => {
            post_panicked = true;
            gov.degrade(Stage::PostLint, format!("post-lock lint gate panicked ({message}); gate skipped"));
            None
        }
        Err(e) => return Err(e),
    };
    match &post_lint {
        Some(rep) => {
            if !rep.skipped.is_empty() {
                gov.degrade(
                    Stage::PostLint,
                    format!("{} lint rule(s) skipped past the deadline", rep.skipped.len()),
                );
            }
            if !rep.is_clean() {
                return Err(LockError::LintRejected { stage: Stage::PostLint, findings: rep.denials() });
            }
        }
        None if post_panicked => {}
        None => gov.degrade(
            Stage::PostLint,
            if skip_post {
                "post-lock lint skipped (injected empty result)"
            } else {
                "post-lock lint skipped: budget exhausted"
            },
        ),
    }
    // Both gates run the same rules over overlapping views: keep only
    // what the lock introduced on the post-lock report.
    if let (Some(post), Some(pre)) = (post_lint.as_mut(), pre_lint.as_ref()) {
        post.dedup_against(&[pre]);
    }

    // Dataflow analysis gate: the fixpoint-backed `K` rules (key taint,
    // ternary constant propagation, scan reachability) over the locked
    // design — the deepest and most expensive check, so it runs last and
    // is skipped on an exhausted budget like the post-lock gate.
    let skip_analyze = gov.fault_plan().has(Stage::Analyze, Fault::EmptyResult);
    let mut analyze_panicked = false;
    let mut analysis = match gov.run_stage(Stage::Analyze, |token| {
        if skip_analyze || token.should_stop().is_some() {
            return Ok(None);
        }
        let n = synthesize_locked(&locked, scan_policy.as_ref(), cache_ref, token)?;
        let mut target = LintTarget::full(&locked, &n)
            .with_phase(LintPhase::Analyze)
            .with_scan_locked(scan_policy.is_some());
        if cache_ref.is_some() {
            target = target.with_scoap(cached_scoap(cache_ref, &n, token));
        }
        Ok(Some(lint_selected_bounded(&target, token, |id| id.starts_with('K'))))
    }) {
        Ok(rep) => rep,
        Err(LockError::StagePanic { message, .. }) => {
            analyze_panicked = true;
            gov.degrade(Stage::Analyze, format!("dataflow analysis panicked ({message}); stage skipped"));
            None
        }
        Err(e) => return Err(e),
    };
    match &analysis {
        Some(rep) => {
            if !rep.skipped.is_empty() {
                gov.degrade(
                    Stage::Analyze,
                    format!("{} dataflow rule(s) skipped past the deadline", rep.skipped.len()),
                );
            }
            if !rep.is_clean() {
                return Err(LockError::LintRejected { stage: Stage::Analyze, findings: rep.denials() });
            }
        }
        None if analyze_panicked => {}
        None => gov.degrade(
            Stage::Analyze,
            if skip_analyze {
                "dataflow analysis skipped (injected empty result)"
            } else {
                "dataflow analysis skipped: budget exhausted"
            },
        ),
    }
    if let Some(rep) = analysis.as_mut() {
        let earlier: Vec<&LintReport> = pre_lint.iter().chain(post_lint.iter()).collect();
        rep.dedup_against(&earlier);
    }

    let report = FlowReport {
        candidates_enumerated: candidates.len(),
        viable_cases: database.viable_cases().count(),
        used_ilp,
        selected: selected.clone(),
        applied: applied.clone(),
        key_bits: key.len(),
        verified_mismatch_rate: cosim.mismatch_rate,
        corruption: corruption.corruption,
        degradations: gov.take_degradations(),
        partial_verification,
        pre_lint,
        post_lint,
        analysis,
        stage_outcomes: gov.take_stage_outcomes(),
    };
    let applied_candidates = applied.iter().map(|&i| candidates[i].clone()).collect();
    Ok(LockedDesign {
        original: module.clone(),
        locked,
        key,
        scan_policy,
        applied: applied_candidates,
        database,
        report,
        cache,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_rtl::parse;

    const SRC: &str = "module t(input clk, input rst, input go, input [7:0] d, output reg [7:0] y, output busy);\n\
        reg [1:0] st; reg [1:0] st_next;\n\
        assign busy = st != 2'd0;\n\
        always @(*) begin\n\
          st_next = st;\n\
          case (st)\n\
            2'd0: begin if (go) st_next = 2'd1; end\n\
            2'd1: begin st_next = 2'd2; end\n\
            2'd2: begin st_next = 2'd0; end\n\
          endcase\n\
        end\n\
        always @(posedge clk or posedge rst) begin\n\
          if (rst) begin st <= 2'd0; y <= 8'd0; end\n\
          else begin\n\
            st <= st_next;\n\
            if (st == 2'd1) y <= (d + 8'd37) ^ 8'h5A;\n\
          end\n\
        end\nendmodule";

    fn quick() -> RtlLockConfig {
        RtlLockConfig {
            database: DatabaseConfig { sat_probe: false, cosim_cycles: 16, corruption_samples: 1, ..DatabaseConfig::default() },
            spec: SelectionSpec {
                min_resilience: 150.0,
                max_area_pct: 30.0,
                min_key_bits: 4,
                ..SelectionSpec::default()
            },
            verify_cycles: 24,
            ..RtlLockConfig::default()
        }
    }

    #[test]
    fn full_flow_produces_verified_locked_design() {
        let m = parse(SRC).unwrap();
        let out = lock(&m, &quick()).unwrap();
        assert!(out.report.key_bits >= 2, "key: {}", out.report.key_bits);
        assert_eq!(out.report.verified_mismatch_rate, 0.0);
        assert!(out.report.corruption > 0.0);
        assert!(out.scan_policy.is_some());
        assert!(!out.applied.is_empty());
        // Locked netlist has the key inputs marked.
        let n = out.locked_netlist().unwrap();
        assert_eq!(n.key_inputs.len(), out.key.len());
        assert!(!n.scan_chain.is_empty(), "partial scan recorded");
    }

    #[test]
    fn attack_surface_depends_on_scan_key() {
        let m = parse(SRC).unwrap();
        let out = lock(&m, &quick()).unwrap();
        let policy = out.scan_policy.clone().unwrap();
        match out.attack_surface(None).unwrap() {
            AttackSurface::SequentialOnly { .. } => {}
            other => panic!("expected sequential-only, got {other:?}"),
        }
        let mut wrong = policy.scan_key.clone();
        wrong[0] = !wrong[0];
        assert!(matches!(out.attack_surface(Some(&wrong)).unwrap(), AttackSurface::SequentialOnly { .. }));
        match out.attack_surface(Some(&policy.scan_key)).unwrap() {
            AttackSurface::CombinationalViews { locked, .. } => {
                assert!(locked.dffs().is_empty(), "scan view is combinational");
                assert_eq!(locked.key_inputs.len(), out.key.len());
            }
            other => panic!("expected views, got {other:?}"),
        }
    }

    #[test]
    fn no_scan_config_exposes_views_directly() {
        let m = parse(SRC).unwrap();
        let cfg = RtlLockConfig { scan: None, ..quick() };
        let out = lock(&m, &cfg).unwrap();
        assert!(out.scan_policy.is_none());
        assert!(matches!(out.attack_surface(None).unwrap(), AttackSurface::CombinationalViews { .. }));
    }

    #[test]
    fn p1735_export_wraps_locked_rtl() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use rtlock_p1735::envelope::{Envelope, Permissions, ToolSession};
        use rtlock_p1735::rsa::generate_keypair;

        let m = parse(SRC).unwrap();
        let out = lock(&m, &quick()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let kp = generate_keypair(512, &mut rng);
        let text = out.export_p1735(
            &[Grant { tool: "Verifier".into(), public_key: kp.public, permissions: Permissions::simulation_only() }],
            &mut rng,
        );
        assert!(!text.contains("lock_key"), "envelope hides the locked RTL");
        let env = Envelope::parse(&text).unwrap();
        let tool = ToolSession { tool: "Verifier".into(), private_key: kp.private };
        let ip = tool.open(&env).unwrap();
        // The tool can parse and simulate internally.
        let ok = ip.with_source(|src| rtlock_rtl::parse(src).is_ok());
        assert!(ok);
    }

    #[test]
    fn infeasible_spec_without_fallback_errors() {
        let m = parse(SRC).unwrap();
        let mut cfg = quick();
        cfg.spec.min_resilience = 1e12;
        cfg.greedy_fallback = false;
        assert_eq!(lock(&m, &cfg).unwrap_err(), LockError::SelectionInfeasible);
    }
}
