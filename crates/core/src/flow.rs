//! The end-to-end RTLock flow (the seven steps of Section III-A) and the
//! [`LockedDesign`] artifact it produces.

use crate::candidates::{enumerate, Candidate, EnumConfig};
use crate::database::{build_database, Database, DatabaseConfig};
use crate::scan_lock::{insert_scan_lock, ScanLockConfig, ScanPolicy};
use crate::select::{select_greedy, select_ilp, SelectionSpec};
use crate::transforms::{apply_all, mark_key_inputs, KeyAllocator};
use crate::verify::{cosim_mismatch_rate, wrong_key_corruption};
use rtlock_netlist::Netlist;
use rtlock_p1735::envelope::{protect, Grant};
use rtlock_rtl::{print as print_rtl, Module};
use rtlock_synth::{elaborate, optimize, scan, scan_view};
use std::fmt;

/// Full flow configuration.
#[derive(Debug, Clone)]
pub struct RtlLockConfig {
    /// Candidate enumeration limits (step 2).
    pub enumeration: EnumConfig,
    /// Database construction (step 3).
    pub database: DatabaseConfig,
    /// Designer specification for selection (step 4).
    pub spec: SelectionSpec,
    /// Fall back to greedy selection when the ILP is infeasible.
    pub greedy_fallback: bool,
    /// Partial scan + scan locking (step 7); `None` skips it ("RTLock*"
    /// configurations of Tables III/IV).
    pub scan: Option<ScanLockConfig>,
    /// Co-simulation cycles for final verification (step 6).
    pub verify_cycles: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for RtlLockConfig {
    fn default() -> Self {
        RtlLockConfig {
            enumeration: EnumConfig::default(),
            database: DatabaseConfig::default(),
            spec: SelectionSpec::default(),
            greedy_fallback: true,
            scan: Some(ScanLockConfig::default()),
            verify_cycles: 48,
            seed: 0x10C4,
        }
    }
}

/// Error from the locking flow.
#[derive(Debug, Clone, PartialEq)]
pub enum LockError {
    /// No candidate survived (nothing to lock).
    NoCandidates,
    /// Selection infeasible and greedy fallback disabled or empty.
    SelectionInfeasible,
    /// The combined locked design failed verification.
    VerificationFailed {
        /// Mismatch rate observed under the correct key.
        mismatch_rate: f64,
    },
    /// Scan locking failed.
    Scan(String),
    /// Synthesis of the locked design failed.
    Synthesis(String),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::NoCandidates => write!(f, "no viable locking candidates"),
            LockError::SelectionInfeasible => write!(f, "selection specification infeasible"),
            LockError::VerificationFailed { mismatch_rate } => {
                write!(f, "locked design diverges under the correct key (rate {mismatch_rate})")
            }
            LockError::Scan(m) => write!(f, "scan locking: {m}"),
            LockError::Synthesis(m) => write!(f, "synthesis: {m}"),
        }
    }
}

impl std::error::Error for LockError {}

/// Flow report (step-by-step numbers for the paper tables).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Candidates enumerated.
    pub candidates_enumerated: usize,
    /// Cases that were viable in the database.
    pub viable_cases: usize,
    /// Whether the ILP (vs greedy fallback) produced the selection.
    pub used_ilp: bool,
    /// Selected candidate indices.
    pub selected: Vec<usize>,
    /// Candidates actually applied (site conflicts may drop some).
    pub applied: Vec<usize>,
    /// Functional key length.
    pub key_bits: usize,
    /// Correct-key mismatch rate from final co-simulation (must be 0).
    pub verified_mismatch_rate: f64,
    /// Wrong-key output corruption estimate.
    pub corruption: f64,
}

/// The artifact of a completed RTLock run.
#[derive(Debug, Clone)]
pub struct LockedDesign {
    /// The original RTL.
    pub original: Module,
    /// The locked (and possibly scan-locked) RTL.
    pub locked: Module,
    /// The functional locking key.
    pub key: Vec<bool>,
    /// Scan policy when scan locking was requested.
    pub scan_policy: Option<ScanPolicy>,
    /// Applied candidates.
    pub applied: Vec<Candidate>,
    /// The offline case database (for reports/benches).
    pub database: Database,
    /// Flow statistics.
    pub report: FlowReport,
}

/// What an oracle-guided attacker can reach.
#[derive(Debug, Clone)]
pub enum AttackSurface {
    /// Scan access granted: combinational full-scan views of the locked
    /// and original designs (key inputs marked on the locked view).
    CombinationalViews {
        /// Scan view of the locked netlist.
        locked: Netlist,
        /// Scan view of the original netlist.
        original: Netlist,
    },
    /// Scan access denied by scan locking: only sequential I/O access
    /// remains (BMC territory).
    SequentialOnly {
        /// The locked sequential netlist (key inputs marked).
        locked: Netlist,
        /// The original sequential netlist.
        original: Netlist,
    },
}

impl LockedDesign {
    /// Synthesizes the locked RTL (key inputs marked, partial scan chain
    /// recorded per the scan policy).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::Synthesis`] on elaboration failure.
    pub fn locked_netlist(&self) -> Result<Netlist, LockError> {
        let mut n = elaborate(&self.locked).map_err(|e| LockError::Synthesis(e.to_string()))?;
        optimize(&mut n);
        mark_key_inputs(&mut n);
        if let Some(policy) = &self.scan_policy {
            let mut chain = Vec::new();
            for name in &policy.scanned_registers {
                for ff in n.dffs() {
                    if let Some(gn) = n.gate_name(ff) {
                        if gn == name || gn.starts_with(&format!("{name}[")) {
                            chain.push(ff);
                        }
                    }
                }
            }
            n.scan_chain.clear();
            scan::insert_scan(&mut n, &chain);
        }
        Ok(n)
    }

    /// Synthesizes the original RTL.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::Synthesis`] on elaboration failure.
    pub fn original_netlist(&self) -> Result<Netlist, LockError> {
        let mut n = elaborate(&self.original).map_err(|e| LockError::Synthesis(e.to_string()))?;
        optimize(&mut n);
        Ok(n)
    }

    /// The attack surface an oracle-guided adversary sees. With scan
    /// locking active, scan access requires the correct scan key; without
    /// it (or with the right key) the full-scan combinational views are
    /// exposed.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::Synthesis`] on elaboration failure.
    pub fn attack_surface(&self, scan_key: Option<&[bool]>) -> Result<AttackSurface, LockError> {
        let mut locked = self.locked_netlist()?;
        let original = self.original_netlist()?;
        let scan_unlocked = match &self.scan_policy {
            None => true,
            Some(policy) => scan_key.is_some_and(|k| k == policy.scan_key.as_slice()),
        };
        if scan_unlocked {
            scan::insert_full_scan(&mut locked);
            let mut lv = scan_view(&locked).netlist;
            mark_key_inputs(&mut lv);
            let mut orig_scanned = original;
            scan::insert_full_scan(&mut orig_scanned);
            let ov = scan_view(&orig_scanned).netlist;
            Ok(AttackSurface::CombinationalViews { locked: lv, original: ov })
        } else {
            Ok(AttackSurface::SequentialOnly { locked, original })
        }
    }

    /// Exports the locked RTL as a P1735 envelope for the given tool
    /// grants (step "IP encryption for integration/verification").
    pub fn export_p1735(&self, grants: &[Grant], rng: &mut impl rand::Rng) -> String {
        protect(&print_rtl(&self.locked), grants, rng)
    }

    /// Exports the synthesized locked netlist in ISCAS-89 `.bench` format
    /// with `keyinput*` conventions, for cross-checking against external
    /// attack tools (e.g. the original SAT-attack binary of \[38\]).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::Synthesis`] on elaboration failure.
    pub fn export_bench(&self) -> Result<String, LockError> {
        Ok(rtlock_netlist::to_bench(&self.locked_netlist()?))
    }
}

/// Runs the complete RTLock flow on a module.
///
/// # Errors
///
/// See [`LockError`]; the common failure is an infeasible
/// [`SelectionSpec`] with `greedy_fallback` disabled.
pub fn lock(module: &Module, config: &RtlLockConfig) -> Result<LockedDesign, LockError> {
    // Steps 1–2: analyze and enumerate.
    let (candidates, fsms) = enumerate(module, &config.enumeration);
    if candidates.is_empty() {
        return Err(LockError::NoCandidates);
    }
    // Step 3: offline database.
    let database = build_database(module, &candidates, &fsms, &config.database);
    if database.viable_cases().count() == 0 {
        return Err(LockError::NoCandidates);
    }
    // Step 4: ILP selection (greedy fallback optional).
    let (selected, used_ilp) = match select_ilp(&database, &candidates, &config.spec) {
        Some(s) if !s.is_empty() => (s, true),
        _ if config.greedy_fallback => {
            let g = select_greedy(&database, &candidates, &config.spec);
            if g.is_empty() {
                return Err(LockError::SelectionInfeasible);
            }
            (g, false)
        }
        _ => return Err(LockError::SelectionInfeasible),
    };

    // Step 5: update RTL.
    let mut locked = module.clone();
    let mut keys = KeyAllocator::new();
    let chosen: Vec<Candidate> = selected.iter().map(|&i| candidates[i].clone()).collect();
    let applied_local = apply_all(&mut locked, &chosen, &fsms, &mut keys);
    let applied: Vec<usize> = applied_local.iter().map(|&k| selected[k]).collect();
    let key = keys.correct_key().to_vec();
    if key.is_empty() {
        return Err(LockError::NoCandidates);
    }

    // Step 6: verification.
    let mismatch = cosim_mismatch_rate(module, &locked, &key, config.verify_cycles, config.seed);
    if mismatch > 0.0 {
        return Err(LockError::VerificationFailed { mismatch_rate: mismatch });
    }
    let corruption = wrong_key_corruption(module, &locked, &key, 3, config.verify_cycles, config.seed);

    // Step 7: partial scan + scan locking.
    let scan_policy = match &config.scan {
        Some(sc) => {
            Some(insert_scan_lock(&mut locked, sc).map_err(|e| LockError::Scan(e.message))?)
        }
        None => None,
    };

    let report = FlowReport {
        candidates_enumerated: candidates.len(),
        viable_cases: database.viable_cases().count(),
        used_ilp,
        selected: selected.clone(),
        applied: applied.clone(),
        key_bits: key.len(),
        verified_mismatch_rate: mismatch,
        corruption,
    };
    let applied_candidates = applied.iter().map(|&i| candidates[i].clone()).collect();
    Ok(LockedDesign {
        original: module.clone(),
        locked,
        key,
        scan_policy,
        applied: applied_candidates,
        database,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_rtl::parse;

    const SRC: &str = "module t(input clk, input rst, input go, input [7:0] d, output reg [7:0] y, output busy);\n\
        reg [1:0] st; reg [1:0] st_next;\n\
        assign busy = st != 2'd0;\n\
        always @(*) begin\n\
          st_next = st;\n\
          case (st)\n\
            2'd0: begin if (go) st_next = 2'd1; end\n\
            2'd1: begin st_next = 2'd2; end\n\
            2'd2: begin st_next = 2'd0; end\n\
          endcase\n\
        end\n\
        always @(posedge clk or posedge rst) begin\n\
          if (rst) begin st <= 2'd0; y <= 8'd0; end\n\
          else begin\n\
            st <= st_next;\n\
            if (st == 2'd1) y <= (d + 8'd37) ^ 8'h5A;\n\
          end\n\
        end\nendmodule";

    fn quick() -> RtlLockConfig {
        RtlLockConfig {
            database: DatabaseConfig { sat_probe: false, cosim_cycles: 16, corruption_samples: 1, ..DatabaseConfig::default() },
            spec: SelectionSpec {
                min_resilience: 150.0,
                max_area_pct: 30.0,
                min_key_bits: 4,
                ..SelectionSpec::default()
            },
            verify_cycles: 24,
            ..RtlLockConfig::default()
        }
    }

    #[test]
    fn full_flow_produces_verified_locked_design() {
        let m = parse(SRC).unwrap();
        let out = lock(&m, &quick()).unwrap();
        assert!(out.report.key_bits >= 2, "key: {}", out.report.key_bits);
        assert_eq!(out.report.verified_mismatch_rate, 0.0);
        assert!(out.report.corruption > 0.0);
        assert!(out.scan_policy.is_some());
        assert!(!out.applied.is_empty());
        // Locked netlist has the key inputs marked.
        let n = out.locked_netlist().unwrap();
        assert_eq!(n.key_inputs.len(), out.key.len());
        assert!(!n.scan_chain.is_empty(), "partial scan recorded");
    }

    #[test]
    fn attack_surface_depends_on_scan_key() {
        let m = parse(SRC).unwrap();
        let out = lock(&m, &quick()).unwrap();
        let policy = out.scan_policy.clone().unwrap();
        match out.attack_surface(None).unwrap() {
            AttackSurface::SequentialOnly { .. } => {}
            other => panic!("expected sequential-only, got {other:?}"),
        }
        let mut wrong = policy.scan_key.clone();
        wrong[0] = !wrong[0];
        assert!(matches!(out.attack_surface(Some(&wrong)).unwrap(), AttackSurface::SequentialOnly { .. }));
        match out.attack_surface(Some(&policy.scan_key)).unwrap() {
            AttackSurface::CombinationalViews { locked, .. } => {
                assert!(locked.dffs().is_empty(), "scan view is combinational");
                assert_eq!(locked.key_inputs.len(), out.key.len());
            }
            other => panic!("expected views, got {other:?}"),
        }
    }

    #[test]
    fn no_scan_config_exposes_views_directly() {
        let m = parse(SRC).unwrap();
        let cfg = RtlLockConfig { scan: None, ..quick() };
        let out = lock(&m, &cfg).unwrap();
        assert!(out.scan_policy.is_none());
        assert!(matches!(out.attack_surface(None).unwrap(), AttackSurface::CombinationalViews { .. }));
    }

    #[test]
    fn p1735_export_wraps_locked_rtl() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use rtlock_p1735::envelope::{Envelope, Permissions, ToolSession};
        use rtlock_p1735::rsa::generate_keypair;

        let m = parse(SRC).unwrap();
        let out = lock(&m, &quick()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let kp = generate_keypair(512, &mut rng);
        let text = out.export_p1735(
            &[Grant { tool: "Verifier".into(), public_key: kp.public, permissions: Permissions::simulation_only() }],
            &mut rng,
        );
        assert!(!text.contains("lock_key"), "envelope hides the locked RTL");
        let env = Envelope::parse(&text).unwrap();
        let tool = ToolSession { tool: "Verifier".into(), private_key: kp.private };
        let ip = tool.open(&env).unwrap();
        // The tool can parse and simulate internally.
        let ok = ip.with_source(|src| rtlock_rtl::parse(src).is_ok());
        assert!(ok);
    }

    #[test]
    fn infeasible_spec_without_fallback_errors() {
        let m = parse(SRC).unwrap();
        let mut cfg = quick();
        cfg.spec.min_resilience = 1e12;
        cfg.greedy_fallback = false;
        assert_eq!(lock(&m, &cfg).unwrap_err(), LockError::SelectionInfeasible);
    }
}
