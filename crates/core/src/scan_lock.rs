//! Partial scan insertion + scan locking at RTL (step 7).
//!
//! Following the SCOAP argument of \[34\], the registers worth scanning (and
//! locking) are the ones that would otherwise give an attacker observability
//! into key-adjacent logic: registers within `levels` hops of the key
//! inputs in the CDFG. The scan chain itself is protected with a
//! counter-LFSR obfuscation in the spirit of DOSC \[11\]: under a wrong scan
//! key, shifted-out data is XOR-scrambled with an LFSR stream.
//!
//! The inserted RTL is functionally inert when `scan_en == 0`, so
//! functional equivalence is preserved; the hardware (LFSR + counter +
//! compactor) is real and shows up in the Table VI functional+scan
//! overhead column.

use crate::transforms::is_key_input_name;
use rtlock_rtl::ast::{Dir, Lvalue, NetKind, Stmt};
use rtlock_rtl::cdfg::Cdfg;
use rtlock_rtl::{BinaryOp, Bv, Expr, Module, NetId, ProcessKind, UnaryOp};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Prefix of the scan-key input port.
pub const SCAN_KEY_PORT: &str = "scan_key_in";

/// Configuration for partial scan selection and locking.
#[derive(Debug, Clone, Copy)]
pub struct ScanLockConfig {
    /// Select registers within this many CDFG hops of a key input.
    pub levels: usize,
    /// Upper bound on scanned registers.
    pub max_scan_regs: usize,
    /// Scan-key width.
    pub scan_key_bits: usize,
    /// Deterministic seed for the scan key value.
    pub seed: u64,
}

impl Default for ScanLockConfig {
    fn default() -> Self {
        ScanLockConfig { levels: 3, max_scan_regs: 64, scan_key_bits: 16, seed: 0x5CA4 }
    }
}

/// The artifact describing what was scanned and how it is locked.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPolicy {
    /// Names of RTL registers in the partial chain, in chain order.
    pub scanned_registers: Vec<String>,
    /// The secret scan key.
    pub scan_key: Vec<bool>,
    /// LFSR width of the obfuscation stream.
    pub lfsr_width: usize,
}

/// Error inserting scan locking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanLockError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScanLockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scan locking failed: {}", self.message)
    }
}

impl std::error::Error for ScanLockError {}

/// Chooses partial-scan registers: those within `levels` CDFG hops of any
/// key input (closest first), capped at `max_scan_regs`. Falls back to all
/// registers (by index) if the design has no key ports yet.
pub fn choose_scan_registers(module: &Module, config: &ScanLockConfig) -> Vec<NetId> {
    let cdfg = Cdfg::build(module);
    let key_nets: Vec<NetId> = module
        .ports
        .iter()
        .copied()
        .filter(|&p| module.net(p).dir == Some(Dir::Input) && is_key_input_name(&module.net(p).name))
        .collect();
    let mut dist: HashMap<NetId, usize> = HashMap::new();
    let mut queue = VecDeque::new();
    for &k in &key_nets {
        dist.insert(k, 0);
        queue.push_back(k);
    }
    while let Some(x) = queue.pop_front() {
        let d = dist[&x];
        if d >= config.levels {
            continue;
        }
        for &nx in &cdfg.fanout[x.index()] {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(nx) {
                e.insert(d + 1);
                queue.push_back(nx);
            }
        }
    }
    let mut regs: Vec<(usize, NetId)> = cdfg
        .registers
        .iter()
        .copied()
        .filter_map(|r| dist.get(&r).map(|&d| (d, r)))
        .collect();
    if regs.is_empty() {
        regs = cdfg.registers.iter().copied().map(|r| (usize::MAX, r)).collect();
    }
    regs.sort();
    regs.into_iter().take(config.max_scan_regs).map(|(_, r)| r).collect()
}

/// Inserts the scan-locking infrastructure into the module and returns the
/// policy.
///
/// Adds ports `scan_en`, `scan_key_in[k-1:0]`, `scan_out`; an LFSR and a
/// cycle counter clocked with the design's first clock; and a compaction
/// tap: `scan_out` observes the parity of the scanned registers when the
/// scan key matches, and the LFSR stream otherwise.
///
/// # Errors
///
/// Returns [`ScanLockError`] if the design has no clocked process or no
/// registers to scan.
pub fn insert_scan_lock(module: &mut Module, config: &ScanLockConfig) -> Result<ScanPolicy, ScanLockError> {
    let scanned = choose_scan_registers(module, config);
    if scanned.is_empty() {
        return Err(ScanLockError { message: "no registers to scan".into() });
    }
    let (clock, reset) = module
        .procs
        .iter()
        .find_map(|p| match &p.kind {
            ProcessKind::Seq { clock, reset } => Some((*clock, reset.clone())),
            _ => None,
        })
        .ok_or_else(|| ScanLockError { message: "no clocked process".into() })?;

    // Deterministic scan key from the seed.
    let mut key = Vec::with_capacity(config.scan_key_bits);
    let mut s = config.seed | 1;
    for _ in 0..config.scan_key_bits {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        key.push(s & 1 == 1);
    }
    let key_bv = Bv::from_bits(&key);

    let scan_en = module.add_port("scan_en", 1, Dir::Input, NetKind::Wire);
    let scan_key_in = module.add_port(SCAN_KEY_PORT, config.scan_key_bits, Dir::Input, NetKind::Wire);
    let scan_out = module.add_port("scan_out", 1, Dir::Output, NetKind::Wire);

    let lfsr_width = 16usize;
    let lfsr = module.add_net("scan_lfsr", lfsr_width, NetKind::Reg);
    let ctr = module.add_net("scan_ctr", 8, NetKind::Reg);

    // LFSR feedback x^16 + x^14 + x^13 + x^11 (Fibonacci taps 15,13,12,10).
    let tap = |i: usize| Expr::Slice { net: lfsr, hi: i, lo: i };
    let feedback = Expr::binary(
        BinaryOp::Xor,
        Expr::binary(BinaryOp::Xor, tap(15), tap(13)),
        Expr::binary(BinaryOp::Xor, tap(12), tap(10)),
    );
    let shift = Expr::Concat(vec![Expr::Slice { net: lfsr, hi: lfsr_width - 2, lo: 0 }, feedback]);
    let body = vec![Stmt::If {
        cond: Expr::net(scan_en),
        then_: vec![
            Stmt::Assign { lhs: Lvalue::whole(lfsr), rhs: shift },
            Stmt::Assign {
                lhs: Lvalue::whole(ctr),
                rhs: Expr::binary(BinaryOp::Add, Expr::net(ctr), Expr::constant(8, 1)),
            },
        ],
        else_: vec![],
    }];
    let reset_body = vec![
        Stmt::Assign { lhs: Lvalue::whole(lfsr), rhs: Expr::Const(Bv::from_u64(lfsr_width, 0xACE1)) },
        Stmt::Assign { lhs: Lvalue::whole(ctr), rhs: Expr::Const(Bv::zeros(8)) },
    ];
    module.procs.push(rtlock_rtl::Process {
        kind: ProcessKind::Seq { clock, reset },
        body,
        reset_body,
    });

    // Observation tap: parity of the scanned registers (a stand-in for the
    // serial shift-out), scrambled by the LFSR under a wrong scan key.
    let parity = scanned
        .iter()
        .map(|&r| Expr::unary(UnaryOp::RedXor, Expr::net(r)))
        .reduce(|a, b| Expr::binary(BinaryOp::Xor, a, b))
        .expect("non-empty");
    let key_ok = Expr::binary(BinaryOp::Eq, Expr::net(scan_key_in), Expr::Const(key_bv));
    let scrambled = Expr::binary(
        BinaryOp::Xor,
        Expr::binary(BinaryOp::Xor, parity.clone(), tap(0)),
        Expr::Slice { net: ctr, hi: 0, lo: 0 },
    );
    let observed = Expr::ternary(key_ok, parity, scrambled);
    module.assigns.push(rtlock_rtl::Assign {
        lhs: Lvalue::whole(scan_out),
        rhs: Expr::binary(BinaryOp::And, Expr::net(scan_en), observed),
    });

    Ok(ScanPolicy {
        scanned_registers: scanned.iter().map(|&r| module.net(r).name.clone()).collect(),
        scan_key: key,
        lfsr_width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::cosim_mismatch_rate;
    use rtlock_rtl::parse;

    const SRC: &str = "module t(input clk, input rst, input [7:0] lock_key_0, input [7:0] d, output reg [7:0] q);\n\
        reg [7:0] stage;\n\
        always @(posedge clk or posedge rst) begin\n\
          if (rst) begin q <= 8'd0; stage <= 8'd0; end\n\
          else begin stage <= d ^ lock_key_0; q <= stage + 8'd1; end\n\
        end\nendmodule";

    #[test]
    fn selects_registers_near_key_inputs() {
        let m = parse(SRC).unwrap();
        let regs = choose_scan_registers(&m, &ScanLockConfig::default());
        let names: Vec<&str> = regs.iter().map(|&r| m.net(r).name.as_str()).collect();
        assert!(names.contains(&"stage"), "stage is 1 hop from the key: {names:?}");
    }

    #[test]
    fn insertion_preserves_function_when_scan_disabled() {
        let original = parse(SRC).unwrap();
        let mut locked = original.clone();
        let policy = insert_scan_lock(&mut locked, &ScanLockConfig::default()).unwrap();
        assert!(!policy.scanned_registers.is_empty());
        assert_eq!(policy.scan_key.len(), 16);
        // scan_en defaults to 0 in cosim (random inputs would toggle it,
        // so pin it by name filtering: cosim drives every input randomly —
        // instead verify the functional outputs only, which ignore
        // scan_out. q must match exactly because scan logic never writes
        // functional registers.)
        let rate = cosim_mismatch_rate(&original, &locked, &[], 40, 3);
        // `q` matches; `scan_out` exists only in the locked design and is
        // not compared (cosim compares the original's outputs).
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn scan_out_corrupted_under_wrong_key() {
        use rtlock_rtl::sim::Simulator;
        let mut m = parse(SRC).unwrap();
        let policy = insert_scan_lock(&mut m, &ScanLockConfig::default()).unwrap();
        let run = |key: &[bool]| -> Vec<u64> {
            let mut sim = Simulator::new(&m);
            sim.set_by_name("rst", Bv::from_bool(true));
            sim.reset().unwrap();
            sim.set_by_name("rst", Bv::from_bool(false));
            sim.set_by_name("scan_en", Bv::from_bool(true));
            sim.set_by_name("lock_key_0", Bv::from_u64(8, 0x3C));
            sim.set_by_name(SCAN_KEY_PORT, Bv::from_bits(key));
            let mut out = Vec::new();
            for i in 0..24 {
                sim.set_by_name("d", Bv::from_u64(8, i * 7 + 1));
                sim.step().unwrap();
                out.push(sim.get_by_name("scan_out").to_u64_lossy());
            }
            out
        };
        let good = run(&policy.scan_key);
        let mut wrong_key = policy.scan_key.clone();
        wrong_key[0] = !wrong_key[0];
        let bad = run(&wrong_key);
        assert_ne!(good, bad, "wrong scan key scrambles the shifted-out stream");
    }
}
