//! Offline case database (step 3): synthesize and attack every candidate
//! individually, recording key size, area overhead, attack resilience and
//! output corruptibility. The ILP (step 4) selects from these rows.
//!
//! The paper measures SAT/BMC CPU time per case with commercial tooling;
//! here each case is probed with the real [`rtlock_attacks::sat_attack()`]
//! under a small budget, and FSM cases additionally earn a structural
//! BMC-depth bonus (deep states force deeper unrolling — Section IV).

use crate::candidates::Candidate;
use crate::transforms::{apply, mark_key_inputs, KeyAllocator};
use crate::verify::wrong_key_corruption;
use rtlock_artifacts::{cached_elaborate, cached_optimize, ArtifactStore};
use rtlock_attacks::ml::scope_attack;
use rtlock_attacks::{sat_attack, AttackConfig, AttackOutcome};
use rtlock_governor::CancelToken;
use rtlock_netlist::ppa::{analyze as ppa_analyze, PpaConfig};
use rtlock_rtl::fsm::Fsm;
use rtlock_rtl::Module;
use rtlock_synth::{scan, scan_view};
use std::fmt;
use std::time::Duration;

/// Metrics of one locking case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseMetrics {
    /// Index into the candidate list this row describes.
    pub candidate_index: usize,
    /// Key bits consumed.
    pub key_size: usize,
    /// Post-synthesis area overhead in percent.
    pub area_overhead_pct: f64,
    /// Attack-resilience score (µs of SAT attack time, floor 1; timeout
    /// maps to the budget; plus the structural BMC bonus).
    pub resilience: f64,
    /// Output corruption under wrong keys (0..1).
    pub corruption: f64,
    /// Constant-propagation leak: |SCOPE accuracy − 0.5| on the single-case
    /// netlist (0 = ML-resilient; probed for constant cases, 0 by
    /// construction for entangled arithmetic/FSM pairs).
    pub ml_bias: f64,
    /// `true` when the case is usable (applied cleanly, corrupts, and does
    /// not leak to constant-propagation attacks).
    pub viable: bool,
    /// Human-readable label.
    pub label: String,
}

/// The assembled database.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Database {
    /// One row per candidate (same order).
    pub cases: Vec<CaseMetrics>,
}

/// Database construction configuration.
#[derive(Debug, Clone, Copy)]
pub struct DatabaseConfig {
    /// Probe each case with the real SAT attack (otherwise use the
    /// structural estimate only — much faster for large designs).
    pub sat_probe: bool,
    /// Probe constant cases with SCOPE and reject leaky ones (per-bit
    /// re-synthesis; disable on very large designs).
    pub ml_probe: bool,
    /// Viability threshold on [`CaseMetrics::ml_bias`].
    pub max_ml_bias: f64,
    /// Per-case SAT probe budget.
    pub probe_timeout: Duration,
    /// Co-simulation cycles for the corruption measure.
    pub cosim_cycles: usize,
    /// Wrong keys sampled for the corruption measure.
    pub corruption_samples: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            sat_probe: true,
            ml_probe: true,
            max_ml_bias: 0.26,
            probe_timeout: Duration::from_millis(250),
            cosim_cycles: 24,
            corruption_samples: 2,
            seed: 0xDB,
        }
    }
}

impl Database {
    /// Rows that can actually be used by selection.
    pub fn viable_cases(&self) -> impl Iterator<Item = &CaseMetrics> {
        self.cases.iter().filter(|c| c.viable)
    }

    /// Serializes to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut s = String::from("# rtlock case database v2\n");
        for c in &self.cases {
            // `{}` on f64 prints the shortest round-trippable form.
            s.push_str(&format!(
                "case\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                c.candidate_index,
                c.key_size,
                c.area_overhead_pct,
                c.resilience,
                c.corruption,
                c.ml_bias,
                u8::from(c.viable),
                c.label
            ));
        }
        s
    }

    /// Parses the text format produced by [`Database::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line.
    pub fn from_text(text: &str) -> Result<Database, ParseDatabaseError> {
        let mut cases = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            if line.starts_with('#') || line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            let bad = |what: &str| ParseDatabaseError { line: ln + 1, message: what.to_string() };
            if fields.len() < 9 || fields[0] != "case" {
                return Err(bad("expected 9 tab-separated fields starting with `case`"));
            }
            cases.push(CaseMetrics {
                candidate_index: fields[1].parse().map_err(|_| bad("bad candidate index"))?,
                key_size: fields[2].parse().map_err(|_| bad("bad key size"))?,
                area_overhead_pct: fields[3].parse().map_err(|_| bad("bad area"))?,
                resilience: fields[4].parse().map_err(|_| bad("bad resilience"))?,
                corruption: fields[5].parse().map_err(|_| bad("bad corruption"))?,
                ml_bias: fields[6].parse().map_err(|_| bad("bad ml bias"))?,
                viable: fields[7] == "1",
                label: fields[8..].join("\t"),
            });
        }
        Ok(Database { cases })
    }
}

/// Error parsing a serialized database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDatabaseError {
    /// 1-based line number.
    pub line: usize,
    /// What was malformed.
    pub message: String,
}

impl fmt::Display for ParseDatabaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "database line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDatabaseError {}

/// Builds the database by evaluating every candidate in isolation.
pub fn build_database(
    original: &Module,
    candidates: &[Candidate],
    fsms: &[Fsm],
    config: &DatabaseConfig,
) -> Database {
    build_database_governed(original, candidates, fsms, config, &CancelToken::unlimited()).0
}

/// Budget-aware database construction. Every candidate always gets a row,
/// but once `cancel` fires the remaining candidates are characterized in a
/// degraded, synthesis-free mode: resilience falls back to the structural
/// estimate, the SAT/ML probes and per-case synthesis are skipped (area
/// overhead is reported as 0), and corruption is measured with a single
/// short RTL co-simulation. The second element is `false` when any row was
/// produced in degraded mode.
pub fn build_database_governed(
    original: &Module,
    candidates: &[Candidate],
    fsms: &[Fsm],
    config: &DatabaseConfig,
    cancel: &CancelToken,
) -> (Database, bool) {
    build_database_governed_cached(original, candidates, fsms, config, cancel, None)
}

/// [`build_database_governed`] with a content-addressed artifact cache:
/// the base synthesis and every candidate's per-case elaborate/optimize
/// consult `cache` first. Rows are byte-identical with the cache hot,
/// cold, or absent.
pub fn build_database_governed_cached(
    original: &Module,
    candidates: &[Candidate],
    fsms: &[Fsm],
    config: &DatabaseConfig,
    cancel: &CancelToken,
    cache: Option<&ArtifactStore>,
) -> (Database, bool) {
    let mut degraded = cancel.should_stop().is_some();
    // Base synthesis for the area reference, plus the original scan view
    // the SAT probes compare against — neither is needed (or affordable)
    // in degraded mode.
    let mut base = None;
    if !degraded {
        match cached_elaborate(cache, original, cancel) {
            Ok(elabbed) => {
                let (mut n, _) = cached_optimize(cache, &elabbed, cancel);
                let base_area = ppa_analyze(&n, &PpaConfig::default()).area_um2;
                scan::insert_full_scan(&mut n);
                base = Some((base_area, scan_view(&n).netlist));
            }
            Err(_) => {
                return (
                    Database {
                        cases: candidates
                            .iter()
                            .enumerate()
                            .map(|(i, c)| unusable(i, c, "original does not synthesize"))
                            .collect(),
                    },
                    true,
                )
            }
        }
    }

    let mut cases = Vec::with_capacity(candidates.len());
    for (i, cand) in candidates.iter().enumerate() {
        if !degraded && cancel.should_stop().is_some() {
            degraded = true;
        }
        let mut locked = original.clone();
        let mut keys = KeyAllocator::new();
        if apply(&mut locked, cand, fsms, &mut keys).is_err() {
            cases.push(unusable(i, cand, "transform failed"));
            continue;
        }
        let key = keys.correct_key().to_vec();
        let seed = config.seed.wrapping_add(i as u64);
        let row = match (&base, degraded) {
            (Some((base_area, orig_view)), false) => full_row(
                original, &locked, cand, fsms, &key, i, seed, *base_area, orig_view, config, cancel,
                cache,
            ),
            _ => degraded_row(original, &locked, cand, fsms, &key, i, seed, config),
        };
        cases.push(row);
    }
    (Database { cases }, !degraded)
}

/// Full candidate characterization: per-case synthesis, area measurement,
/// corruption co-simulation and the configured SAT/ML probes.
#[allow(clippy::too_many_arguments)]
fn full_row(
    original: &Module,
    locked: &Module,
    cand: &Candidate,
    fsms: &[Fsm],
    key: &[bool],
    i: usize,
    seed: u64,
    base_area: f64,
    orig_view: &rtlock_netlist::Netlist,
    config: &DatabaseConfig,
    cancel: &CancelToken,
    cache: Option<&ArtifactStore>,
) -> CaseMetrics {
    let Ok(elabbed) = cached_elaborate(cache, locked, cancel) else {
        return unusable(i, cand, "locked RTL does not synthesize");
    };
    let (netlist, _) = cached_optimize(cache, &elabbed, cancel);
    let area = ppa_analyze(&netlist, &PpaConfig::default()).area_um2;
    let area_overhead_pct = if base_area > 0.0 { (area - base_area) / base_area * 100.0 } else { 0.0 };

    let corruption =
        wrong_key_corruption(original, locked, key, config.corruption_samples, config.cosim_cycles, seed);

    // Constant-propagation probe: lock the case, mark the keys, run
    // SCOPE. Entangled pairs (arith/FSM) are immune by construction.
    let ml_bias = if config.ml_probe && matches!(cand, Candidate::Constant { .. }) && corruption > 0.0 {
        let mut probe = netlist.clone();
        mark_key_inputs(&mut probe);
        let report = scope_attack(&probe, key);
        (report.accuracy - 0.5).abs()
    } else {
        0.0
    };

    let mut resilience = structural_bonus(cand, fsms);
    if config.sat_probe && corruption > 0.0 {
        let mut view = {
            let mut n = netlist.clone();
            scan::insert_full_scan(&mut n);
            scan_view(&n).netlist
        };
        mark_key_inputs(&mut view);
        let outcome = sat_attack(
            &view,
            orig_view,
            &AttackConfig {
                max_iterations: 10_000,
                timeout: Some(config.probe_timeout),
                ..AttackConfig::default()
            },
        );
        let micros = match outcome {
            AttackOutcome::KeyFound { elapsed, .. } => elapsed.as_micros() as f64,
            AttackOutcome::TimedOut { elapsed, .. } => elapsed.as_micros() as f64 * 4.0,
            AttackOutcome::Infeasible { .. } | AttackOutcome::Error { .. } => {
                config.probe_timeout.as_micros() as f64
            }
        };
        resilience += micros.max(1.0);
    }

    CaseMetrics {
        candidate_index: i,
        key_size: key.len(),
        area_overhead_pct,
        resilience,
        corruption,
        ml_bias,
        viable: corruption > 0.0 && ml_bias <= config.max_ml_bias,
        label: cand.label(),
    }
}

/// Degraded, synthesis-free characterization used once the budget fired:
/// structural resilience, zero (unknown) area, one short RTL co-simulation
/// for corruption, no probes.
#[allow(clippy::too_many_arguments)]
fn degraded_row(
    original: &Module,
    locked: &Module,
    cand: &Candidate,
    fsms: &[Fsm],
    key: &[bool],
    i: usize,
    seed: u64,
    config: &DatabaseConfig,
) -> CaseMetrics {
    let cycles = config.cosim_cycles.min(8);
    let corruption = match crate::verify::try_wrong_key_corruption(
        original,
        locked,
        key,
        1,
        cycles,
        seed,
        &CancelToken::unlimited(),
    ) {
        Ok(outcome) => outcome.corruption,
        Err(_) => return unusable(i, cand, "degraded co-simulation failed"),
    };
    CaseMetrics {
        candidate_index: i,
        key_size: key.len(),
        area_overhead_pct: 0.0,
        resilience: structural_bonus(cand, fsms),
        corruption,
        ml_bias: 0.0,
        viable: corruption > 0.0,
        label: cand.label(),
    }
}

fn unusable(i: usize, cand: &Candidate, _why: &str) -> CaseMetrics {
    CaseMetrics {
        candidate_index: i,
        key_size: cand.key_size(),
        area_overhead_pct: 0.0,
        resilience: 0.0,
        corruption: 0.0,
        ml_bias: 1.0,
        viable: false,
        label: cand.label(),
    }
}

/// Structural BMC-resilience bonus: FSM cases on deeper states force
/// deeper unrolling; arithmetic cases on wide operators create harder
/// instances.
fn structural_bonus(cand: &Candidate, fsms: &[Fsm]) -> f64 {
    match cand {
        Candidate::Fsm { fsm_index, kind } => {
            let depth = fsms
                .get(*fsm_index)
                .map(|f| {
                    let depths = f.depth_from_initial();
                    let of = |s: &rtlock_rtl::Bv| {
                        depths.iter().find(|(x, _)| x == s).and_then(|(_, d)| *d).unwrap_or(0)
                    };
                    match kind {
                        crate::candidates::FsmLockKind::InitLock => 1,
                        crate::candidates::FsmLockKind::IncorrectTransition { from, .. } => of(from),
                        crate::candidates::FsmLockKind::SkipState { skipped, .. } => of(skipped),
                        crate::candidates::FsmLockKind::BypassState { detoured, .. } => of(detoured),
                        crate::candidates::FsmLockKind::InherentSignal { .. } => 2,
                    }
                })
                .unwrap_or(0);
            50.0 * (1 + depth) as f64
        }
        Candidate::Arithmetic { op, .. } => {
            if matches!(op, rtlock_rtl::BinaryOp::Shl | rtlock_rtl::BinaryOp::Shr) {
                40.0
            } else {
                25.0
            }
        }
        Candidate::Constant { key_bits, .. } => 10.0 * *key_bits as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{enumerate, EnumConfig};
    use rtlock_rtl::parse;

    const SRC: &str = "module t(input clk, input rst, input go, input [7:0] d, output reg [7:0] y);\n\
        reg [1:0] st; reg [1:0] st_next;\n\
        always @(*) begin\n\
          st_next = st;\n\
          case (st)\n\
            2'd0: begin if (go) st_next = 2'd1; end\n\
            2'd1: begin st_next = 2'd2; end\n\
            2'd2: begin st_next = 2'd0; end\n\
          endcase\n\
        end\n\
        always @(posedge clk or posedge rst) begin\n\
          if (rst) begin st <= 2'd0; y <= 8'd0; end\n\
          else begin\n\
            st <= st_next;\n\
            if (st == 2'd1) y <= (d + 8'd37) ^ 8'h5A;\n\
          end\n\
        end\nendmodule";

    fn quick_config() -> DatabaseConfig {
        DatabaseConfig {
            sat_probe: false,
            ml_probe: false,
            cosim_cycles: 16,
            corruption_samples: 1,
            ..DatabaseConfig::default()
        }
    }

    #[test]
    fn database_rows_align_with_candidates() {
        let m = parse(SRC).unwrap();
        let (cands, fsms) = enumerate(&m, &EnumConfig::default());
        let db = build_database(&m, &cands, &fsms, &quick_config());
        assert_eq!(db.cases.len(), cands.len());
        assert!(db.viable_cases().count() >= 4, "several viable cases: {}", db.viable_cases().count());
        for c in db.viable_cases() {
            assert!(c.corruption > 0.0);
            assert!(c.resilience > 0.0);
            assert!(c.key_size >= 1);
        }
    }

    #[test]
    fn sat_probe_measures_time() {
        let m = parse(SRC).unwrap();
        let (cands, fsms) = enumerate(&m, &EnumConfig::default());
        // Probe just the first few candidates to keep the test fast.
        let few: Vec<_> = cands.into_iter().take(4).collect();
        let db = build_database(&m, &few, &fsms, &DatabaseConfig { sat_probe: true, ..quick_config() });
        for c in db.viable_cases() {
            assert!(c.resilience >= 1.0, "{}: {}", c.label, c.resilience);
        }
    }

    #[test]
    fn governed_build_degrades_but_covers_every_candidate() {
        use rtlock_governor::{CancelToken, Deadline};
        let m = parse(SRC).unwrap();
        let (cands, fsms) = enumerate(&m, &EnumConfig::default());
        let expired = CancelToken::with_deadline(Deadline::after(Duration::ZERO));
        let (db, complete) = build_database_governed(
            &m,
            &cands,
            &fsms,
            &DatabaseConfig { sat_probe: true, ml_probe: true, ..quick_config() },
            &expired,
        );
        assert!(!complete, "expired token must flag the build incomplete");
        assert_eq!(db.cases.len(), cands.len(), "every candidate still gets a row");
        assert!(db.viable_cases().count() >= 1, "degraded rows remain usable");
        // Degraded mode skips probes: resilience is exactly the structural
        // estimate and no ML bias is recorded.
        for c in &db.cases {
            assert_eq!(c.resilience, structural_bonus(&cands[c.candidate_index], &fsms));
            assert_eq!(c.ml_bias, 0.0);
        }
    }

    #[test]
    fn text_codec_round_trips() {
        let m = parse(SRC).unwrap();
        let (cands, fsms) = enumerate(&m, &EnumConfig::default());
        let db = build_database(&m, &cands, &fsms, &quick_config());
        let text = db.to_text();
        let back = Database::from_text(&text).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn codec_rejects_garbage() {
        assert!(Database::from_text("case\tnot-a-number").is_err());
        assert!(Database::from_text("# only comments\n").unwrap().cases.is_empty());
    }

    #[test]
    fn fsm_cases_earn_depth_bonus() {
        let m = parse(SRC).unwrap();
        let (cands, fsms) = enumerate(&m, &EnumConfig::default());
        let db = build_database(&m, &cands, &fsms, &quick_config());
        let fsm_res: Vec<f64> = db
            .cases
            .iter()
            .filter(|c| matches!(cands[c.candidate_index], Candidate::Fsm { .. }) && c.viable)
            .map(|c| c.resilience)
            .collect();
        assert!(!fsm_res.is_empty());
        assert!(fsm_res.iter().all(|&r| r >= 50.0));
    }
}
