//! Fault-coverage estimation with graceful ATPG→SCOAP degradation.
//!
//! Scan-policy evaluation wants the fault coverage of a (scan-view)
//! netlist. The exact answer comes from [`rtlock_atpg::run_atpg`], which
//! can be expensive; when its budget fires mid-run
//! ([`AtpgReport::aborted_early`](rtlock_atpg::AtpgReport::aborted_early))
//! this module substitutes a SCOAP-only structural estimate instead of
//! reporting the misleading partial number.

use rtlock_atpg::{run_atpg, AtpgConfig};
use rtlock_netlist::{scoap, Netlist};

/// A fault-coverage number plus its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TestabilityEstimate {
    /// Estimated fault coverage in `0..=1`.
    pub coverage: f64,
    /// `true` when the number came from a completed ATPG run; `false`
    /// when the run aborted on its budget and the SCOAP structural
    /// estimate was substituted.
    pub exact: bool,
}

/// SCOAP opacity above which a net is considered hard for ATPG. The
/// engine's default backtrack budget resolves nets well past this, so the
/// estimate is deliberately conservative only on deeply buried logic.
const HARD_OPACITY: u64 = 64;

/// Runs ATPG under `config` (including its cancel token); if the engine
/// aborts early, falls back to the SCOAP estimate of
/// [`scoap_coverage_estimate`].
pub fn coverage_with_fallback(
    netlist: &Netlist,
    key_constraint_sets: &[Vec<bool>],
    config: &AtpgConfig,
) -> TestabilityEstimate {
    let report = run_atpg(netlist, key_constraint_sets, config);
    if !report.aborted_early {
        return TestabilityEstimate { coverage: report.fault_coverage(), exact: true };
    }
    TestabilityEstimate { coverage: scoap_coverage_estimate(netlist), exact: false }
}

/// Structural coverage estimate: the fraction of nets whose combined
/// SCOAP controllability + observability cost stays below
/// [`HARD_OPACITY`]. No patterns are generated — this is the degraded
/// answer when the ATPG budget is gone.
pub fn scoap_coverage_estimate(netlist: &Netlist) -> f64 {
    let measures = scoap::analyze(netlist);
    let total = netlist.len();
    if total == 0 {
        return 1.0;
    }
    let easy = netlist.ids().filter(|&g| measures.opacity(g) < HARD_OPACITY).count();
    easy as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_governor::{CancelToken, Deadline};
    use rtlock_synth::{elaborate, optimize, scan, scan_view};
    use std::time::Duration;

    fn comb_view() -> Netlist {
        let m = rtlock_rtl::parse(
            "module t(input clk, input [3:0] a, input [3:0] b, output reg [3:0] y);\n\
             always @(posedge clk) y <= (a + b) ^ {a[1], b[2], a[3], b[0]};\nendmodule",
        )
        .unwrap();
        let mut n = elaborate(&m).unwrap();
        optimize(&mut n);
        scan::insert_full_scan(&mut n);
        scan_view(&n).netlist
    }

    #[test]
    fn completed_atpg_is_reported_exact() {
        let n = comb_view();
        let est = coverage_with_fallback(&n, &[], &AtpgConfig::default());
        assert!(est.exact);
        assert!(est.coverage > 0.9, "coverage {}", est.coverage);
    }

    #[test]
    fn aborted_atpg_falls_back_to_scoap() {
        let n = comb_view();
        let cfg = AtpgConfig {
            cancel: CancelToken::with_deadline(Deadline::after(Duration::ZERO)),
            ..AtpgConfig::default()
        };
        let est = coverage_with_fallback(&n, &[], &cfg);
        assert!(!est.exact, "expired budget must be flagged as an estimate");
        assert!(est.coverage > 0.0 && est.coverage <= 1.0, "estimate {}", est.coverage);
        assert_eq!(est.coverage, scoap_coverage_estimate(&n));
    }
}
