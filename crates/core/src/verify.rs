//! Design verification (step 6): does the locked RTL behave identically to
//! the original under the correct key, and differently under wrong keys?
//!
//! Two methods, as in the paper: simulation-based functional verification
//! and exhaustive logical equivalence checking (a SAT miter over the
//! full-scan combinational views).

use crate::transforms::is_key_input_name;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtlock_governor::CancelToken;
use rtlock_netlist::CnfBuilder;
use rtlock_rtl::sim::Simulator;
use rtlock_rtl::{Bv, Dir, Module, ProcessKind};
use rtlock_sat::{SolveResult, Solver};
use rtlock_synth::{elaborate, optimize, scan, scan_view};

/// Splits a flat key-bit vector across the locked module's key ports (in
/// port order), returning `(port name, value)` pairs.
///
/// # Panics
///
/// Panics if `key` has fewer bits than the module's key ports.
pub fn key_port_values(locked: &Module, key: &[bool]) -> Vec<(String, Bv)> {
    let mut out = Vec::new();
    let mut cursor = 0usize;
    for &p in &locked.ports {
        let net = locked.net(p);
        if net.dir == Some(Dir::Input) && is_key_input_name(&net.name) {
            let mut v = Bv::zeros(net.width);
            for i in 0..net.width {
                v.set(i, key[cursor]);
                cursor += 1;
            }
            out.push((net.name.clone(), v));
        }
    }
    out
}

/// Total key length of a locked module.
pub fn key_length(locked: &Module) -> usize {
    locked
        .ports
        .iter()
        .filter(|&&p| locked.net(p).dir == Some(Dir::Input) && is_key_input_name(&locked.net(p).name))
        .map(|&p| locked.width(p))
        .sum()
}

/// Outcome of a (possibly budget-cut) co-simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosimOutcome {
    /// Fraction of mismatching output-port samples over the cycles run.
    pub mismatch_rate: f64,
    /// Cycles actually simulated (`== requested` when `complete`).
    pub cycles_run: usize,
    /// `false` when the cancel token cut the run short; the verdict then
    /// covers only `cycles_run` cycles and must be flagged as partial.
    pub complete: bool,
}

/// Random co-simulation: drives both designs with identical stimulus for
/// `cycles` cycles (reset asserted for the first two) and returns the
/// fraction of mismatching output-port samples. `0.0` means equivalent on
/// the sample.
///
/// # Panics
///
/// Panics if a simulator hits a combinational loop (locked designs are
/// produced by our own transforms, so this indicates an internal bug).
/// Flow code uses [`try_cosim_mismatch_rate`] instead, which surfaces the
/// failure as an error.
pub fn cosim_mismatch_rate(
    original: &Module,
    locked: &Module,
    key: &[bool],
    cycles: usize,
    seed: u64,
) -> f64 {
    match try_cosim_mismatch_rate(original, locked, key, cycles, seed) {
        Ok(rate) => rate,
        Err(e) => panic!("co-simulation failed: {e}"),
    }
}

/// Fallible co-simulation — like [`cosim_mismatch_rate`] but simulator
/// failures (combinational loops) come back as `Err` instead of a panic.
///
/// # Errors
///
/// Returns a message naming the failing design and net.
pub fn try_cosim_mismatch_rate(
    original: &Module,
    locked: &Module,
    key: &[bool],
    cycles: usize,
    seed: u64,
) -> Result<f64, String> {
    try_cosim_bounded(original, locked, key, cycles, seed, &CancelToken::unlimited())
        .map(|o| o.mismatch_rate)
}

/// Bounded fallible co-simulation: polls `cancel` every cycle and, when it
/// fires, returns the verdict over the cycles completed so far with
/// [`CosimOutcome::complete`] cleared.
///
/// # Errors
///
/// Returns a message naming the failing design and net on simulator
/// failure (combinational loop).
pub fn try_cosim_bounded(
    original: &Module,
    locked: &Module,
    key: &[bool],
    cycles: usize,
    seed: u64,
    cancel: &CancelToken,
) -> Result<CosimOutcome, String> {
    let mut sim_o = Simulator::new(original);
    let mut sim_l = Simulator::new(locked);
    // Key ports are the key-prefixed inputs that exist *only* in the
    // locked design; an input the original also has is ordinary stimulus.
    let key_values: Vec<(String, Bv)> = {
        let locked_only = |name: &str| original.find_net(name).is_none();
        let mut out = Vec::new();
        let mut cursor = 0usize;
        for &p in &locked.ports {
            let net = locked.net(p);
            if net.dir == Some(Dir::Input) && is_key_input_name(&net.name) && locked_only(&net.name) {
                let mut v = Bv::zeros(net.width);
                for i in 0..net.width {
                    v.set(i, key[cursor]);
                    cursor += 1;
                }
                out.push((net.name.clone(), v));
            }
        }
        out
    };

    let clocks: Vec<String> = original
        .procs
        .iter()
        .filter_map(|p| match &p.kind {
            ProcessKind::Seq { clock, .. } => Some(original.net(*clock).name.clone()),
            _ => None,
        })
        .collect();
    let resets: Vec<(String, bool)> = original
        .procs
        .iter()
        .filter_map(|p| match &p.kind {
            ProcessKind::Seq { reset: Some(r), .. } => {
                Some((original.net(r.net).name.clone(), r.active_high))
            }
            _ => None,
        })
        .collect();
    let inputs: Vec<(String, usize)> = original
        .ports
        .iter()
        .filter(|&&p| original.net(p).dir == Some(Dir::Input))
        .map(|&p| (original.net(p).name.clone(), original.width(p)))
        .filter(|(n, _)| !clocks.contains(n))
        .collect();
    let outputs: Vec<String> = original
        .ports
        .iter()
        .filter(|&&p| original.net(p).dir == Some(Dir::Output))
        .map(|&p| original.net(p).name.clone())
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0usize;
    let mut mismatched = 0usize;
    let mut cycles_run = 0usize;
    for cycle in 0..cycles {
        if cancel.should_stop().is_some() {
            break;
        }
        let in_reset = cycle < 2;
        for (name, width) in &inputs {
            let value = if let Some((_, ah)) = resets.iter().find(|(n, _)| n == name) {
                Bv::from_u64(1, u64::from(in_reset == *ah))
            } else {
                let mut v = Bv::zeros(*width);
                for i in 0..*width {
                    v.set(i, rng.gen_bool(0.5));
                }
                v
            };
            sim_o.set_by_name(name, value.clone());
            sim_l.set_by_name(name, value);
        }
        for (port, value) in &key_values {
            sim_l.set_by_name(port, value.clone());
        }
        sim_o.step().map_err(|e| format!("original design: {e}"))?;
        sim_l.step().map_err(|e| format!("locked design: {e}"))?;
        cycles_run += 1;
        for out in &outputs {
            total += 1;
            if sim_o.get_by_name(out) != sim_l.get_by_name(out) {
                mismatched += 1;
            }
        }
    }
    let mismatch_rate = if total == 0 { 0.0 } else { mismatched as f64 / total as f64 };
    Ok(CosimOutcome { mismatch_rate, cycles_run, complete: cycles_run == cycles })
}

/// Average output corruption over `samples` random wrong keys (each
/// differing from the correct key in at least one bit).
///
/// # Panics
///
/// Panics on simulator failure; flow code uses
/// [`try_wrong_key_corruption`] instead.
pub fn wrong_key_corruption(
    original: &Module,
    locked: &Module,
    correct_key: &[bool],
    samples: usize,
    cycles: usize,
    seed: u64,
) -> f64 {
    match try_wrong_key_corruption(
        original,
        locked,
        correct_key,
        samples,
        cycles,
        seed,
        &CancelToken::unlimited(),
    ) {
        Ok(outcome) => outcome.corruption,
        Err(e) => panic!("co-simulation failed: {e}"),
    }
}

/// Outcome of a (possibly budget-cut) wrong-key corruption measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionOutcome {
    /// Average output corruption over the samples completed.
    pub corruption: f64,
    /// Wrong-key samples fully measured.
    pub samples_run: usize,
    /// `false` when the cancel token cut sampling short.
    pub complete: bool,
}

/// Bounded fallible wrong-key corruption: polls `cancel` between samples
/// (and per cycle inside each sample) and averages over what completed.
///
/// # Errors
///
/// Returns a message naming the failing design and net on simulator
/// failure.
pub fn try_wrong_key_corruption(
    original: &Module,
    locked: &Module,
    correct_key: &[bool],
    samples: usize,
    cycles: usize,
    seed: u64,
    cancel: &CancelToken,
) -> Result<CorruptionOutcome, String> {
    if correct_key.is_empty() {
        return Ok(CorruptionOutcome { corruption: 0.0, samples_run: 0, complete: true });
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD15EA5E);
    let mut acc = 0.0;
    let mut samples_run = 0usize;
    let want = samples.max(1);
    for s in 0..want {
        if cancel.should_stop().is_some() {
            break;
        }
        let mut wrong: Vec<bool> = correct_key.to_vec();
        let mut flipped = false;
        for b in wrong.iter_mut() {
            if rng.gen_bool(0.5) {
                *b = !*b;
                flipped = true;
            }
        }
        if !flipped {
            let i = rng.gen_range(0..wrong.len());
            wrong[i] = !wrong[i];
        }
        let outcome =
            try_cosim_bounded(original, locked, &wrong, cycles, seed.wrapping_add(s as u64), cancel)?;
        if !outcome.complete {
            break;
        }
        acc += outcome.mismatch_rate;
        samples_run += 1;
    }
    let corruption = if samples_run == 0 { 0.0 } else { acc / samples_run as f64 };
    Ok(CorruptionOutcome { corruption, samples_run, complete: samples_run == want })
}

/// Formal equivalence check of the full-scan combinational views via a SAT
/// miter with the key asserted. Returns `Some(true)` when proved
/// equivalent, `Some(false)` with a counterexample found, or `None` when
/// the check does not apply (port mismatch).
pub fn formal_equivalence(original: &Module, locked: &Module, key: &[bool]) -> Option<bool> {
    let prep = |m: &Module| {
        let mut n = elaborate(m).ok()?;
        optimize(&mut n);
        scan::insert_full_scan(&mut n);
        Some(scan_view(&n).netlist)
    };
    let orig = prep(original)?;
    let mut lock = prep(locked)?;
    crate::transforms::mark_key_inputs(&mut lock);
    if lock.key_inputs.len() != key.len() {
        return None;
    }

    let mut cnf = CnfBuilder::new();
    // Shared variables for every original input, by name.
    let orig_in: Vec<i32> = orig.inputs().iter().map(|_| cnf.fresh_var()).collect();
    let vars_o = cnf.encode_comb(&orig, &orig_in, &[]);
    let lock_in: Vec<i32> = lock
        .inputs()
        .iter()
        .map(|&g| {
            let name = lock.gate_name(g).unwrap_or("");
            if let Some(ki) = lock.key_inputs.iter().position(|k| *k == g) {
                let v = cnf.fresh_var();
                cnf.assert_lit(if key[ki] { v } else { -v });
                v
            } else {
                match orig.inputs().iter().position(|&og| orig.gate_name(og) == Some(name)) {
                    Some(i) => orig_in[i],
                    None => cnf.fresh_var(), // locked-only input (e.g. scan controls)
                }
            }
        })
        .collect();
    let vars_l = cnf.encode_comb(&lock, &lock_in, &[]);

    let mut diffs = Vec::new();
    for (name, drv_o) in orig.outputs() {
        if let Some((_, drv_l)) = lock.outputs().iter().find(|(n, _)| n == name) {
            diffs.push(cnf.xor_lit(vars_o[drv_o.index()], vars_l[drv_l.index()]));
        }
    }
    if diffs.is_empty() {
        return None;
    }
    let any = cnf.or_lit(&diffs);
    cnf.assert_lit(any);

    let mut solver = Solver::new();
    solver.reserve_vars(cnf.num_vars());
    for c in cnf.clauses() {
        solver.add_dimacs_clause(c);
    }
    match solver.solve(&[]) {
        SolveResult::Unsat => Some(true),
        SolveResult::Sat => Some(false),
        SolveResult::Unknown => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{enumerate, EnumConfig};
    use crate::transforms::{apply, KeyAllocator};
    use rtlock_rtl::parse;

    const SRC: &str = "module t(input clk, input rst, input [7:0] a, input [7:0] b, output reg [7:0] y);\n\
        always @(posedge clk or posedge rst) begin\n\
          if (rst) y <= 8'd0; else y <= (a + b) * 8'd3;\n\
        end\nendmodule";

    #[test]
    fn identical_designs_cosim_clean() {
        let m = parse(SRC).unwrap();
        assert_eq!(cosim_mismatch_rate(&m, &m, &[], 30, 1), 0.0);
    }

    #[test]
    fn locked_design_verifies_with_correct_key_only() {
        let original = parse(SRC).unwrap();
        let mut locked = original.clone();
        let (cands, fsms) = enumerate(&original, &EnumConfig::default());
        let arith = cands
            .iter()
            .find(|c| matches!(c, crate::candidates::Candidate::Arithmetic { .. }))
            .expect("arith candidate");
        let mut keys = KeyAllocator::new();
        apply(&mut locked, arith, &fsms, &mut keys).unwrap();
        let key = keys.correct_key().to_vec();
        assert_eq!(key.len(), 2, "arithmetic locks use an entangled pair");

        assert_eq!(cosim_mismatch_rate(&original, &locked, &key, 40, 2), 0.0, "correct key");
        // Entangled pair: flipping BOTH bits preserves the XNOR condition
        // (an equivalent key); flipping ONE corrupts.
        let both_flipped: Vec<bool> = key.iter().map(|b| !b).collect();
        assert_eq!(cosim_mismatch_rate(&original, &locked, &both_flipped, 40, 2), 0.0, "equivalent key class");
        let mut one_flipped = key.clone();
        one_flipped[0] = !one_flipped[0];
        assert!(cosim_mismatch_rate(&original, &locked, &one_flipped, 40, 2) > 0.2, "wrong key corrupts");
    }

    #[test]
    fn formal_check_proves_correct_key() {
        let original = parse(SRC).unwrap();
        let mut locked = original.clone();
        let (cands, fsms) = enumerate(&original, &EnumConfig::default());
        let c = cands
            .iter()
            .find(|c| matches!(c, crate::candidates::Candidate::Constant { .. }))
            .expect("constant candidate");
        let mut keys = KeyAllocator::new();
        apply(&mut locked, c, &fsms, &mut keys).unwrap();
        let key = keys.correct_key().to_vec();
        assert_eq!(formal_equivalence(&original, &locked, &key), Some(true));
        let wrong: Vec<bool> = key.iter().map(|b| !b).collect();
        assert_eq!(formal_equivalence(&original, &locked, &wrong), Some(false));
    }

    #[test]
    fn bounded_cosim_reports_partial_verdict() {
        use rtlock_governor::{CancelToken, Deadline};
        let m = parse(SRC).unwrap();
        let token = CancelToken::with_deadline(Deadline::after(std::time::Duration::ZERO));
        let out = try_cosim_bounded(&m, &m, &[], 30, 1, &token).unwrap();
        assert!(!out.complete);
        assert_eq!(out.cycles_run, 0);
        assert_eq!(out.mismatch_rate, 0.0);
        let full = try_cosim_bounded(&m, &m, &[], 30, 1, &CancelToken::unlimited()).unwrap();
        assert!(full.complete);
        assert_eq!(full.cycles_run, 30);
    }

    #[test]
    fn try_cosim_surfaces_comb_loops_as_errors() {
        // x = !x is a combinational loop: the simulator cannot settle.
        let looped = parse(
            "module l(input a, output y);\n  wire x;\n  assign x = ~x;\n  assign y = x & a;\nendmodule",
        )
        .unwrap();
        let err = try_cosim_mismatch_rate(&looped, &looped, &[], 4, 1).unwrap_err();
        assert!(err.contains("design"), "{err}");
    }

    #[test]
    fn bounded_corruption_flags_incomplete_sampling() {
        use rtlock_governor::CancelToken;
        let m = parse(SRC).unwrap();
        let token = CancelToken::unlimited();
        token.cancel();
        let out = try_wrong_key_corruption(&m, &m, &[true, false], 3, 10, 1, &token).unwrap();
        assert!(!out.complete);
        assert_eq!(out.samples_run, 0);
        assert_eq!(out.corruption, 0.0);
    }

    #[test]
    fn key_port_values_split_correctly() {
        let original = parse(SRC).unwrap();
        let mut locked = original.clone();
        let (cands, fsms) = enumerate(&original, &EnumConfig::default());
        let mut keys = KeyAllocator::new();
        let mut applied = 0;
        for c in &cands {
            if matches!(c, crate::candidates::Candidate::Constant { .. }) && applied < 2
                && apply(&mut locked, c, &fsms, &mut keys).is_ok() {
                    applied += 1;
                }
        }
        let key = keys.correct_key().to_vec();
        assert_eq!(key_length(&locked), key.len());
        let ports = key_port_values(&locked, &key);
        let total: usize = ports.iter().map(|(_, v)| v.width()).sum();
        assert_eq!(total, key.len());
    }
}
