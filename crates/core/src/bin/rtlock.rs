//! `rtlock` — command-line front end for the locking flow.
//!
//! ```text
//! rtlock lock <input.v> [--out <locked.v>] [--bench <out.bench>]
//!             [--key-file <key.txt>] [--min-key-bits N] [--max-area PCT]
//!             [--min-resilience R] [--no-scan] [--no-probes]
//! rtlock verify <original.v> <locked.v> --key <bits>
//! rtlock info <input.v>
//! ```
//!
//! `lock` runs the full seven-step flow and writes the locked Verilog, the
//! correct key (one `0`/`1` per line, netlist key order) and optionally an
//! ISCAS-89 `.bench` export of the synthesized locked netlist.

use rtlock::database::DatabaseConfig;
use rtlock::select::SelectionSpec;
use rtlock::verify::cosim_mismatch_rate;
use rtlock::{lock, RtlLockConfig};
use rtlock_rtl::cdfg::Cdfg;
use rtlock_rtl::fsm;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rtlock lock <input.v> [--out F] [--bench F] [--key-file F]\n\
         \x20             [--min-key-bits N] [--max-area PCT] [--min-resilience R]\n\
         \x20             [--no-scan] [--no-probes]\n\
         \x20 rtlock verify <original.v> <locked.v> --key <0101...>\n\
         \x20 rtlock info <input.v>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lock") => cmd_lock(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        _ => usage(),
    }
}

fn read_module(path: &str) -> Result<rtlock_rtl::Module, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    rtlock_rtl::parse(&src).map_err(|e| format!("{path}: {e}"))
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn cmd_lock(args: &[String]) -> ExitCode {
    let Some(input) = args.first().filter(|a| !a.starts_with("--")) else { return usage() };
    let module = match read_module(input) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut config = RtlLockConfig::default();
    if let Some(v) = flag_value(args, "--min-key-bits") {
        config.spec.min_key_bits = v.parse().unwrap_or(config.spec.min_key_bits);
    }
    if let Some(v) = flag_value(args, "--max-area") {
        config.spec.max_area_pct = v.parse().unwrap_or(config.spec.max_area_pct);
    }
    if let Some(v) = flag_value(args, "--min-resilience") {
        config.spec.min_resilience = v.parse().unwrap_or(config.spec.min_resilience);
    }
    if args.iter().any(|a| a == "--no-scan") {
        config.scan = None;
    }
    if args.iter().any(|a| a == "--no-probes") {
        config.database = DatabaseConfig { sat_probe: false, ml_probe: false, ..config.database };
    }
    let _ = SelectionSpec::default(); // keep the import obviously used

    let locked = match lock(&module, &config) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: locking failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("locked `{}`:", module.name);
    println!("  cases applied : {}", locked.applied.len());
    for c in &locked.applied {
        println!("    - {}", c.label());
    }
    println!("  key bits      : {}", locked.key.len());
    println!("  corruption    : {:.1} % of wrong-key output samples", locked.report.corruption * 100.0);
    if let Some(p) = &locked.scan_policy {
        println!("  scan locking  : {} registers, {}-bit scan key", p.scanned_registers.len(), p.scan_key.len());
    }

    // Result artifacts commit atomically (temp + fsync + rename): a crash
    // mid-write leaves the previous file, never a torn one.
    let out = flag_value(args, "--out").map(String::from).unwrap_or_else(|| format!("{input}.locked.v"));
    if let Err(e) = rtlock_store::atomic_write(&out, rtlock_rtl::print(&locked.locked)) {
        eprintln!("error: write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("  wrote locked RTL -> {out}");

    let key_file = flag_value(args, "--key-file").map(String::from).unwrap_or_else(|| format!("{input}.key"));
    let key_text: String = locked.key.iter().map(|&b| if b { '1' } else { '0' }).collect();
    let full = match &locked.scan_policy {
        Some(p) => {
            let scan: String = p.scan_key.iter().map(|&b| if b { '1' } else { '0' }).collect();
            format!("functional {key_text}\nscan {scan}\n")
        }
        None => format!("functional {key_text}\n"),
    };
    if let Err(e) = rtlock_store::atomic_write(&key_file, full) {
        eprintln!("error: write {key_file}: {e}");
        return ExitCode::FAILURE;
    }
    println!("  wrote keys       -> {key_file} (provision to the TPM; do not ship)");

    if let Some(bench) = flag_value(args, "--bench") {
        match locked.export_bench() {
            Ok(text) => {
                if let Err(e) = rtlock_store::atomic_write(bench, text) {
                    eprintln!("error: write {bench}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("  wrote .bench     -> {bench}");
            }
            Err(e) => {
                eprintln!("error: bench export: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_verify(args: &[String]) -> ExitCode {
    let (Some(orig), Some(locked)) = (args.first(), args.get(1)) else { return usage() };
    let Some(key_str) = flag_value(args, "--key") else { return usage() };
    let key: Vec<bool> = key_str.chars().filter_map(|c| match c {
        '0' => Some(false),
        '1' => Some(true),
        _ => None,
    }).collect();
    let (original, locked_m) = match (read_module(orig), read_module(locked)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rate = cosim_mismatch_rate(&original, &locked_m, &key, 96, 0x5EED);
    if rate == 0.0 {
        println!("OK: locked design matches the original under the supplied key (96 cycles)");
        ExitCode::SUCCESS
    } else {
        println!("MISMATCH: {:.2} % of output samples diverge — wrong key or wrong files", rate * 100.0);
        ExitCode::FAILURE
    }
}

fn cmd_info(args: &[String]) -> ExitCode {
    let Some(input) = args.first() else { return usage() };
    let module = match read_module(input) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cdfg = Cdfg::build(&module);
    let fsms = fsm::extract(&module);
    println!("module `{}`:", module.name);
    println!("  inputs/outputs : {}/{}", module.inputs().len(), module.outputs().len());
    println!("  registers      : {}", cdfg.registers.len());
    println!("  operations     : {} ({} lockable constants)", cdfg.ops.len(), cdfg.consts.len());
    for (i, f) in fsms.iter().enumerate() {
        println!(
            "  FSM #{i} on `{}`: {} states, {} transitions, initial {:?}",
            module.net(f.state_reg).name,
            f.states.len(),
            f.transitions.len(),
            f.initial.as_ref().map(|s| s.to_u64_lossy()),
        );
    }
    match rtlock_synth::elaborate(&module) {
        Ok(mut n) => {
            rtlock_synth::optimize(&mut n);
            println!("  synthesized    : {} gates, {} flops", n.logic_count(), n.dffs().len());
        }
        Err(e) => println!("  synthesis      : failed ({e})"),
    }
    ExitCode::SUCCESS
}
