//! `rtlock-campaign` — journaled catalog campaigns with checkpoint/resume.
//!
//! ```text
//! rtlock-campaign --journal <file> [--designs a,b,c | --tiny N]
//!                 [--threads N] [--retries N] [--retry-base-ms MS]
//!                 [--attacks] [--out FILE] [--crash-after-events N]
//! ```
//!
//! Runs the lock→verify(→attack) pipeline over a set of designs,
//! checkpointing every design's final status into a crash-safe journal.
//! Rerunning the same command with the same journal resumes: completed
//! designs replay from the journal byte-for-byte and only the rest
//! execute. The canonical report (stdout, or `--out` via an atomic
//! write) is identical whether the campaign ran uninterrupted or was
//! killed and resumed any number of times, at any thread count.
//!
//! `--crash-after-events N` arms the crash-injection hook: the process
//! aborts right after the N-th journal append. The crash-recovery suite
//! drives kill-and-resume cycles through it.
//!
//! Exit codes: 0 = every design completed, 1 = some design failed,
//! 2 = usage or journal I/O error.

use rtlock::database::DatabaseConfig;
use rtlock::journal::CampaignJournal;
use rtlock::select::SelectionSpec;
use rtlock::{
    lock_catalog_resumable, CatalogEntry, CatalogJob, RtlLockConfig, RunBudget,
};
use rtlock_governor::CancelToken;
use rtlock_store::RetryPolicy;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: rtlock-campaign --journal <file> [options]

options:
  --journal <file>    campaign journal (created if missing; an existing
                      journal resumes the campaign it records)
  --designs <a,b,c>   named benchmarks from the design catalog
  --tiny <n>          n built-in synthetic designs (self-test corpus)
  --threads <n>       worker threads (default 1; 0 = one per core)
  --retries <n>       max attempts per design (default 1 = no retry)
  --retry-base-ms <n> base backoff in milliseconds (default 10)
  --attacks           race the attack portfolio on each locked design
  --out <file>        write the canonical report here (atomic) instead
                      of stdout
  --crash-after-events <n>
                      abort() after the n-th journal append (crash-
                      recovery self-test)
  --help              print this help
";

struct Args {
    journal: std::path::PathBuf,
    designs: Vec<String>,
    tiny: usize,
    threads: usize,
    retries: u32,
    retry_base_ms: u64,
    attacks: bool,
    out: Option<std::path::PathBuf>,
    crash_after: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut journal = None;
    let mut designs = Vec::new();
    let mut tiny = 0usize;
    let mut threads = 1usize;
    let mut retries = 1u32;
    let mut retry_base_ms = 10u64;
    let mut attacks = false;
    let mut out = None;
    let mut crash_after = None;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--journal" => journal = Some(value(&mut i, "--journal")?.into()),
            "--designs" => {
                designs = value(&mut i, "--designs")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            "--tiny" => {
                tiny = value(&mut i, "--tiny")?.parse().map_err(|e| format!("--tiny: {e}"))?;
            }
            "--threads" => {
                threads =
                    value(&mut i, "--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--retries" => {
                retries =
                    value(&mut i, "--retries")?.parse().map_err(|e| format!("--retries: {e}"))?;
            }
            "--retry-base-ms" => {
                retry_base_ms = value(&mut i, "--retry-base-ms")?
                    .parse()
                    .map_err(|e| format!("--retry-base-ms: {e}"))?;
            }
            "--attacks" => attacks = true,
            "--out" => out = Some(value(&mut i, "--out")?.into()),
            "--crash-after-events" => {
                crash_after = Some(
                    value(&mut i, "--crash-after-events")?
                        .parse()
                        .map_err(|e| format!("--crash-after-events: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    let journal = journal.ok_or("--journal is required")?;
    if designs.is_empty() && tiny == 0 {
        return Err("need --designs or --tiny".into());
    }
    Ok(Args { journal, designs, tiny, threads, retries, retry_base_ms, attacks, out, crash_after })
}

/// A small synthetic design corpus: deterministic, quick to lock, shaped
/// like the catalog determinism tests' modules.
fn tiny_entry(index: usize) -> CatalogEntry {
    let source = format!(
        r#"
module tiny{index}(input clk, input rst, input [7:0] d, output reg [7:0] y);
  always @(posedge clk or posedge rst) begin
    if (rst) y <= 8'd0; else y <= (d + 8'd{}) ^ 8'h2{};
  end
endmodule"#,
        13 + index,
        index % 10
    );
    let config = RtlLockConfig {
        database: DatabaseConfig { sat_probe: false, ..DatabaseConfig::default() },
        spec: SelectionSpec {
            min_resilience: 30.0,
            max_area_pct: 40.0,
            ..SelectionSpec::default()
        },
        verify_cycles: 16,
        scan: None,
        ..RtlLockConfig::default()
    };
    CatalogEntry {
        name: format!("tiny{index}"),
        module: rtlock_rtl::parse(&source).expect("tiny module parses"),
        config,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("rtlock-campaign: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut entries = Vec::new();
    for name in &args.designs {
        match CatalogEntry::benchmark(name, RtlLockConfig::default()) {
            Ok(entry) => entries.push(entry),
            Err(e) => {
                eprintln!("rtlock-campaign: {e}");
                return ExitCode::from(2);
            }
        }
    }
    entries.extend((0..args.tiny).map(tiny_entry));

    let job = CatalogJob {
        entries,
        budget: RunBudget::unlimited(),
        portfolio: if args.attacks { Some(Default::default()) } else { None },
        retry: RetryPolicy {
            max_attempts: args.retries.max(1),
            base_delay: Duration::from_millis(args.retry_base_ms),
            ..RetryPolicy::default()
        },
        cache: None,
    };

    let (mut journal, recovery) = match CampaignJournal::open(&args.journal) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("rtlock-campaign: cannot open journal {}: {e}", args.journal.display());
            return ExitCode::from(2);
        }
    };
    if !recovery.events.is_empty() {
        eprintln!(
            "rtlock-campaign: resuming from {} ({} events recovered{})",
            args.journal.display(),
            recovery.events.len(),
            if recovery.torn_tail { ", torn tail healed" } else { "" },
        );
    }
    if let Some(n) = args.crash_after {
        journal.set_crash_after(n);
    }

    let executor = if args.threads == 0 {
        rtlock_exec::Executor::machine_sized()
    } else {
        rtlock_exec::Executor::new(args.threads)
    };
    let report = lock_catalog_resumable(
        &job,
        &executor,
        &CancelToken::unlimited(),
        &mut journal,
        &recovery.events,
    );

    let replayed = report
        .designs
        .iter()
        .filter(|(_, st)| matches!(st, rtlock::DesignStatus::Replayed(_)))
        .count();
    eprintln!(
        "rtlock-campaign: {} designs, {} completed, {} replayed from journal, {} retries recorded",
        report.designs.len(),
        report.completed(),
        replayed,
        report.retries.len(),
    );

    let canonical = report.canonical();
    match &args.out {
        Some(path) => {
            if let Err(e) = rtlock_store::atomic_write(path, &canonical) {
                eprintln!("rtlock-campaign: write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!("rtlock-campaign: wrote report -> {}", path.display());
        }
        None => print!("{canonical}"),
    }

    if report.completed() == report.designs.len() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
