//! `rtlock-lint` — standalone front end for the static analysis engine.
//!
//! ```text
//! rtlock-lint [--format text|json] [--all-designs] [--list-rules] [files...]
//! ```
//!
//! `.v` inputs are parsed (parse errors become `P001` diagnostics in the
//! same report format) and, when elaboration succeeds, linted with both
//! the RTL and netlist views so every rule group runs. `.bench` inputs
//! are linted at the gate level only. `--all-designs` lints the bundled
//! benchmark catalog. Exit status: 0 when no `Deny` findings, 1 when any
//! input has one, 2 on usage errors.

use rtlock_lint::{lint, Diagnostic, LintPhase, LintReport, LintTarget};
use rtlock_netlist::from_bench;
use rtlock_rtl::Module;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rtlock-lint [--format text|json] [--all-designs] [--list-rules] [files...]\n\
         \x20   files: Verilog (.v) or ISCAS-89 (.bench)"
    );
    ExitCode::from(2)
}

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = Format::Text;
    let mut all_designs = false;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("text") => format = Format::Text,
                    Some("json") => format = Format::Json,
                    _ => return usage(),
                }
                i += 2;
            }
            "--all-designs" => {
                all_designs = true;
                i += 1;
            }
            "--list-rules" => {
                for (id, severity, summary) in rtlock_lint::rule_catalog() {
                    println!("{id}  {severity:<5}  {summary}");
                }
                return ExitCode::SUCCESS;
            }
            a if a.starts_with("--") => return usage(),
            _ => {
                files.push(args[i].clone());
                i += 1;
            }
        }
    }
    if !all_designs && files.is_empty() {
        return usage();
    }

    let mut any_deny = false;
    let mut emit = |name: &str, report: &LintReport| {
        match format {
            Format::Text => {
                print!("== {name} ==\n{}", report.to_text());
            }
            Format::Json => {
                // One JSON object per line, prefixed with the input name.
                println!(
                    "{{\"input\":{},\"report\":{}}}",
                    rtlock_lint::diag::json_string(name),
                    report.to_json()
                );
            }
        }
        any_deny |= !report.is_clean();
    };

    if all_designs {
        for b in rtlock_designs::catalog() {
            match b.module() {
                Ok(m) => {
                    let report = lint_module(&m);
                    emit(b.name, &report);
                }
                Err(e) => {
                    let report = parse_failure_report(Diagnostic::from(&e));
                    emit(b.name, &report);
                }
            }
        }
    }
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = if path.ends_with(".bench") {
            match from_bench(&src) {
                Ok(n) => {
                    let target = LintTarget::gates(&n).with_phase(LintPhase::Standalone);
                    lint(&target)
                }
                Err(e) => parse_failure_report(Diagnostic::from(&e)),
            }
        } else {
            match rtlock_rtl::parse(&src) {
                Ok(m) => lint_module(&m),
                Err(e) => parse_failure_report(Diagnostic::from(&e)),
            }
        };
        emit(path, &report);
    }

    if any_deny {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Lints a parsed module with both views when it elaborates; RTL-only
/// (plus an `E001` note) when it does not.
fn lint_module(m: &Module) -> LintReport {
    match rtlock_synth::elaborate(m) {
        Ok(mut n) => {
            rtlock::transforms::mark_key_inputs(&mut n);
            let target = LintTarget::full(m, &n).with_phase(LintPhase::Standalone);
            lint(&target)
        }
        Err(e) => {
            let target = LintTarget::rtl(m).with_phase(LintPhase::Standalone);
            let mut report = lint(&target);
            report.diagnostics.push(Diagnostic {
                rule: "E001",
                severity: rtlock_lint::Severity::Warn,
                span: rtlock_lint::Span::default(),
                message: format!("netlist rules skipped: elaboration failed ({e})"),
            });
            report
        }
    }
}

fn parse_failure_report(d: Diagnostic) -> LintReport {
    let mut report = LintReport::new(LintPhase::Standalone);
    report.diagnostics.push(d);
    report
}
