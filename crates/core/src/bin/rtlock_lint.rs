//! `rtlock-lint` — standalone front end for the static analysis engine.
//!
//! ```text
//! rtlock-lint [--format text|json|sarif] [--rule ID[,ID]] [--all-designs]
//!             [--list-rules] [files...]
//! ```
//!
//! `.v` inputs are parsed (parse errors become `P001` diagnostics in the
//! same report format) and, when elaboration succeeds, linted with both
//! the RTL and netlist views so every rule group runs. `.bench` inputs
//! are linted at the gate level only. `--all-designs` lints the bundled
//! benchmark catalog. `--rule` restricts the run to the listed rule ids
//! (repeatable, comma-separated); unknown ids are usage errors. With
//! `--format sarif` all reports are folded into one SARIF 2.1.0 document
//! on stdout. Exit status: 0 when no `Deny` findings, 1 when any input
//! has one, 2 on usage errors (unknown flag, unknown rule id, unreadable
//! file).

use rtlock_governor::CancelToken;
use rtlock_lint::{lint_selected_bounded, Diagnostic, LintPhase, LintReport, LintTarget};
use rtlock_netlist::from_bench;
use rtlock_rtl::Module;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rtlock-lint [--format text|json|sarif] [--rule ID[,ID]] [--all-designs]\n\
         \x20             [--list-rules] [files...]\n\
         \x20   files: Verilog (.v) or ISCAS-89 (.bench)\n\
         \x20   exit status: 0 = clean, 1 = at least one Deny finding, 2 = usage error"
    );
    ExitCode::from(2)
}

enum Format {
    Text,
    Json,
    Sarif,
}

/// The `--rule` filter: `None` means every rule runs.
struct RuleFilter(Option<Vec<String>>);

impl RuleFilter {
    fn selects(&self, id: &str) -> bool {
        match &self.0 {
            None => true,
            Some(ids) => ids.iter().any(|r| r == id),
        }
    }

    /// Adds the comma-separated ids in `arg`, rejecting unknown ones.
    fn add(&mut self, arg: &str) -> Result<(), String> {
        let catalog = rtlock_lint::rule_catalog();
        let ids = self.0.get_or_insert_with(Vec::new);
        for id in arg.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if !catalog.iter().any(|(rid, _, _)| *rid == id) {
                return Err(format!("unknown rule id `{id}` (see --list-rules)"));
            }
            if !ids.iter().any(|r| r == id) {
                ids.push(id.to_owned());
            }
        }
        Ok(())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = Format::Text;
    let mut all_designs = false;
    let mut filter = RuleFilter(None);
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("text") => format = Format::Text,
                    Some("json") => format = Format::Json,
                    Some("sarif") => format = Format::Sarif,
                    _ => return usage(),
                }
                i += 2;
            }
            "--rule" => {
                let Some(arg) = args.get(i + 1) else { return usage() };
                if let Err(e) = filter.add(arg) {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
                i += 2;
            }
            "--all-designs" => {
                all_designs = true;
                i += 1;
            }
            "--list-rules" => {
                for (id, severity, summary) in rtlock_lint::rule_catalog() {
                    println!("{id}  {severity:<5}  {summary}");
                }
                return ExitCode::SUCCESS;
            }
            a if a.starts_with("--") => return usage(),
            _ => {
                files.push(args[i].clone());
                i += 1;
            }
        }
    }
    if !all_designs && files.is_empty() {
        return usage();
    }

    let mut any_deny = false;
    let mut sarif_inputs: Vec<(String, LintReport)> = Vec::new();
    let mut emit = |name: &str, report: LintReport| {
        any_deny |= !report.is_clean();
        match format {
            Format::Text => {
                print!("== {name} ==\n{}", report.to_text());
            }
            Format::Json => {
                // One JSON object per line, prefixed with the input name.
                println!(
                    "{{\"input\":{},\"report\":{}}}",
                    rtlock_lint::diag::json_string(name),
                    report.to_json()
                );
            }
            Format::Sarif => sarif_inputs.push((name.to_owned(), report)),
        }
    };

    if all_designs {
        for b in rtlock_designs::catalog() {
            match b.module() {
                Ok(m) => {
                    let report = lint_module(&m, &filter);
                    emit(b.name, report);
                }
                Err(e) => {
                    let report = parse_failure_report(Diagnostic::from(&e));
                    emit(b.name, report);
                }
            }
        }
    }
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = if path.ends_with(".bench") {
            match from_bench(&src) {
                Ok(n) => {
                    let target = LintTarget::gates(&n).with_phase(LintPhase::Standalone);
                    lint_filtered(&target, &filter)
                }
                Err(e) => parse_failure_report(Diagnostic::from(&e)),
            }
        } else {
            match rtlock_rtl::parse(&src) {
                Ok(m) => lint_module(&m, &filter),
                Err(e) => parse_failure_report(Diagnostic::from(&e)),
            }
        };
        emit(path, report);
    }

    if matches!(format, Format::Sarif) {
        println!("{}", rtlock_lint::diag::to_sarif(&sarif_inputs));
    }

    if any_deny {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn lint_filtered(target: &LintTarget<'_>, filter: &RuleFilter) -> LintReport {
    lint_selected_bounded(target, &CancelToken::unlimited(), |id| filter.selects(id))
}

/// Lints a parsed module with both views when it elaborates; RTL-only
/// (plus an `E001` note) when it does not.
fn lint_module(m: &Module, filter: &RuleFilter) -> LintReport {
    match rtlock_synth::elaborate(m) {
        Ok(mut n) => {
            rtlock::transforms::mark_key_inputs(&mut n);
            let target = LintTarget::full(m, &n).with_phase(LintPhase::Standalone);
            lint_filtered(&target, filter)
        }
        Err(e) => {
            let target = LintTarget::rtl(m).with_phase(LintPhase::Standalone);
            let mut report = lint_filtered(&target, filter);
            report.diagnostics.push(Diagnostic {
                rule: "E001",
                severity: rtlock_lint::Severity::Warn,
                span: rtlock_lint::Span::default(),
                message: format!("netlist rules skipped: elaboration failed ({e})"),
            });
            report
        }
    }
}

fn parse_failure_report(d: Diagnostic) -> LintReport {
    let mut report = LintReport::new(LintPhase::Standalone);
    report.diagnostics.push(d);
    report
}
