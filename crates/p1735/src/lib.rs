//! IEEE P1735-style IP encryption and rights management (\[29\] in the
//! paper), built entirely from scratch.
//!
//! RTLock couples RTL locking with P1735 so that the *locked* RTL is also
//! *encrypted* before integration/verification: an insider in those teams
//! works with black-box data and tool-held keys, never plaintext RTL or
//! the locking key (Section III-B / Fig. 1(d)).
//!
//! Layers:
//! * [`sha256`] — SHA-256 + HMAC (FIPS 180-4 / RFC 2104);
//! * [`aes`] — AES-128/256 block cipher (FIPS 197);
//! * [`gcm`] — AES-GCM AEAD (SP 800-38D), the recommended P1735 data
//!   method;
//! * [`bigint`] / [`rsa`] — RSA-OAEP session-key wrap per tool;
//! * [`base64`] — RFC 4648 block encoding;
//! * [`envelope`] — the `pragma protect` envelope, grants and
//!   [`envelope::ToolSession`].
//!
//! # Examples
//!
//! ```
//! use rtlock_p1735::envelope::{protect, Envelope, Grant, Permissions, ToolSession};
//! use rtlock_p1735::rsa::generate_keypair;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let tool_keys = generate_keypair(512, &mut rng);
//! let text = protect(
//!     "module ip(input a, output y); assign y = a; endmodule",
//!     &[Grant {
//!         tool: "SimTool".into(),
//!         public_key: tool_keys.public,
//!         permissions: Permissions::simulation_only(),
//!     }],
//!     &mut rng,
//! );
//! let env = Envelope::parse(&text)?;
//! let session = ToolSession { tool: "SimTool".into(), private_key: tool_keys.private };
//! let ip = session.open(&env)?;
//! assert!(ip.source_len() > 0);
//! # Ok::<(), rtlock_p1735::envelope::EnvelopeError>(())
//! ```

#![warn(missing_docs)]

pub mod aes;
pub mod base64;
pub mod bigint;
pub mod envelope;
pub mod gcm;
pub mod rsa;
pub mod sha256;

pub use envelope::{protect, Envelope, EnvelopeError, Grant, Permissions, ProtectedIp, ToolSession};
