//! Minimal arbitrary-precision unsigned integers for RSA key wrap.
//!
//! Little-endian `u64` limbs; only the operations RSA needs: comparison,
//! add/sub, schoolbook multiplication, shift-subtract division, modular
//! exponentiation, extended-Euclid inversion, and Miller–Rabin primality.

use rand::Rng;

/// An unsigned big integer (normalized: no trailing zero limbs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> BigUint {
        BigUint { limbs: vec![] }
    }

    /// One.
    pub fn one() -> BigUint {
        BigUint { limbs: vec![1] }
    }

    /// From a machine word.
    pub fn from_u64(v: u64) -> BigUint {
        let mut b = BigUint { limbs: vec![v] };
        b.normalize();
        b
    }

    /// From big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> BigUint {
        let mut limbs = Vec::new();
        for chunk in bytes.rchunks(8) {
            let mut word = [0u8; 8];
            word[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(word));
        }
        let mut b = BigUint { limbs };
        b.normalize();
        b
    }

    /// To big-endian bytes (no leading zeros; empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.split_off(skip)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `true` for zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` for even values.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Reads bit `i`.
    pub fn bit(&self, i: usize) -> bool {
        self.limbs.get(i / 64).is_some_and(|l| l >> (i % 64) & 1 == 1)
    }

    /// Comparison.
    pub fn cmp_to(&self, rhs: &BigUint) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if self.limbs.len() != rhs.limbs.len() {
            return self.limbs.len().cmp(&rhs.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(rhs.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Addition.
    pub fn add(&self, rhs: &BigUint) -> BigUint {
        let mut out = Vec::with_capacity(self.limbs.len().max(rhs.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(rhs.limbs.len()) {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut b = BigUint { limbs: out };
        b.normalize();
        b
    }

    /// Subtraction.
    ///
    /// # Panics
    ///
    /// Panics if `rhs > self`.
    pub fn sub(&self, rhs: &BigUint) -> BigUint {
        assert!(self.cmp_to(rhs) != std::cmp::Ordering::Less, "big integer underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        let mut b = BigUint { limbs: out };
        b.normalize();
        b
    }

    /// Multiplication (schoolbook).
    pub fn mul(&self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut b = BigUint { limbs: out };
        b.normalize();
        b
    }

    /// Logical left shift.
    pub fn shl_bits(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let (words, bits) = (n / 64, n % 64);
        let mut out = vec![0u64; words];
        if bits == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push(l << bits | carry);
                carry = l >> (64 - bits);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut b = BigUint { limbs: out };
        b.normalize();
        b
    }

    fn shr1_in_place(&mut self) {
        let mut carry = 0u64;
        for l in self.limbs.iter_mut().rev() {
            let new_carry = *l << 63;
            *l = *l >> 1 | carry;
            carry = new_carry;
        }
        self.normalize();
    }

    fn sub_in_place(&mut self, rhs: &BigUint) {
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0, "in-place subtraction underflow");
        self.normalize();
    }

    /// Division with remainder: `(self / rhs, self % rhs)`.
    ///
    /// Shift-subtract with in-place updates (adequate for RSA-demo sizes;
    /// the hot path, [`BigUint::mod_pow`], uses Montgomery multiplication
    /// instead).
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, rhs: &BigUint) -> (BigUint, BigUint) {
        assert!(!rhs.is_zero(), "division by zero");
        if self.cmp_to(rhs) == std::cmp::Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        let shift = self.bits() - rhs.bits();
        let mut remainder = self.clone();
        let mut candidate = rhs.shl_bits(shift);
        let mut q_limbs = vec![0u64; shift / 64 + 1];
        for s in (0..=shift).rev() {
            if remainder.cmp_to(&candidate) != std::cmp::Ordering::Less {
                remainder.sub_in_place(&candidate);
                q_limbs[s / 64] |= 1 << (s % 64);
            }
            candidate.shr1_in_place();
        }
        let mut quotient = BigUint { limbs: q_limbs };
        quotient.normalize();
        (quotient, remainder)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Uses Montgomery multiplication for odd moduli (the RSA case) and
    /// falls back to square-and-multiply with division otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_pow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "zero modulus");
        if !m.is_even() && m.cmp_to(&BigUint::one()) == std::cmp::Ordering::Greater {
            return Montgomery::new(m).pow(self, exp);
        }
        let mut result = BigUint::one().rem(m);
        let mut base = self.rem(m);
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.mul(&base).rem(m);
            }
            base = base.mul(&base).rem(m);
        }
        result
    }

    /// Modular inverse `self⁻¹ mod m` via extended Euclid; `None` when not
    /// coprime.
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        // Track coefficients with explicit signs.
        let (mut old_r, mut r) = (self.rem(m), m.clone());
        let (mut old_s, mut s): ((BigUint, bool), (BigUint, bool)) =
            ((BigUint::one(), false), (BigUint::zero(), false));
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            // new_s = old_s - q * s (signed arithmetic).
            let qs = q.mul(&s.0);
            let new_s = signed_sub(&old_s, &(qs, s.1));
            old_s = std::mem::replace(&mut s, new_s);
        }
        if old_r != BigUint::one() {
            return None;
        }
        let (mag, neg) = old_s;
        let inv = if neg { m.sub(&mag.rem(m)) } else { mag.rem(m) };
        Some(inv.rem(m))
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probable_prime(&self, rounds: usize, rng: &mut impl Rng) -> bool {
        if self.cmp_to(&BigUint::from_u64(2)) == std::cmp::Ordering::Less {
            return false;
        }
        for small in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
            let p = BigUint::from_u64(small);
            if self == &p {
                return true;
            }
            if self.rem(&p).is_zero() {
                return false;
            }
        }
        let one = BigUint::one();
        let n_minus_1 = self.sub(&one);
        let mut d = n_minus_1.clone();
        let mut rr = 0usize;
        while d.is_even() {
            d = d.div_rem(&BigUint::from_u64(2)).0;
            rr += 1;
        }
        'witness: for _ in 0..rounds {
            let a = random_below(&n_minus_1, rng).add(&one); // in [1, n-1]
            let mut x = a.mod_pow(&d, self);
            if x == one || x == n_minus_1 {
                continue;
            }
            for _ in 0..rr - 1 {
                x = x.mul(&x).rem(self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }
}

/// Montgomery-form modular arithmetic for an odd modulus (CIOS variant).
struct Montgomery {
    m: Vec<u64>,
    m_prime: u64,
    /// R² mod m, for conversion into Montgomery form.
    r2: BigUint,
    n: usize,
}

impl Montgomery {
    fn new(m: &BigUint) -> Montgomery {
        let n = m.limbs.len();
        // m' = -m[0]^{-1} mod 2^64 via Newton iteration.
        let m0 = m.limbs[0];
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        let m_prime = inv.wrapping_neg();
        let r2 = BigUint::one().shl_bits(2 * 64 * n).rem(m);
        Montgomery { m: m.limbs.clone(), m_prime, r2, n }
    }

    /// CIOS Montgomery multiplication: returns `a * b * R⁻¹ mod m` where
    /// inputs are n-limb (little-endian) vectors already reduced mod m.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let n = self.n;
        let mut t = vec![0u64; n + 2];
        for &ai in a.iter().take(n) {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..n {
                let cur = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[n] as u128 + carry;
            t[n] = cur as u64;
            t[n + 1] = (cur >> 64) as u64;
            // m-multiple elimination
            let u = t[0].wrapping_mul(self.m_prime);
            let cur = t[0] as u128 + u as u128 * self.m[0] as u128;
            let mut carry = cur >> 64;
            for j in 1..n {
                let cur = t[j] as u128 + u as u128 * self.m[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[n] as u128 + carry;
            t[n - 1] = cur as u64;
            t[n] = t[n + 1] + ((cur >> 64) as u64);
            t[n + 1] = 0;
        }
        // Conditional final subtraction.
        let mut result = t[..=n].to_vec();
        let ge = {
            if result[n] != 0 {
                true
            } else {
                let mut ge = true;
                for j in (0..n).rev() {
                    if result[j] != self.m[j] {
                        ge = result[j] > self.m[j];
                        break;
                    }
                }
                ge
            }
        };
        if ge {
            let mut borrow = 0u64;
            for (r, &m) in result.iter_mut().zip(&self.m[..n]) {
                let (d1, b1) = r.overflowing_sub(m);
                let (d2, b2) = d1.overflowing_sub(borrow);
                *r = d2;
                borrow = u64::from(b1) + u64::from(b2);
            }
            result[n] = result[n].wrapping_sub(borrow);
        }
        result.truncate(n);
        result
    }

    fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let m_big = {
            let mut b = BigUint { limbs: self.m.clone() };
            b.normalize();
            b
        };
        let mut base_limbs = base.rem(&m_big).limbs;
        base_limbs.resize(self.n, 0);
        let mut r2 = self.r2.limbs.clone();
        r2.resize(self.n, 0);
        let base_mont = self.mont_mul(&base_limbs, &r2);
        // 1 in Montgomery form = R mod m = mont_mul(1, R²).
        let mut one = vec![0u64; self.n];
        one[0] = 1;
        let mut acc = self.mont_mul(&one, &r2);
        for i in (0..exp.bits()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_mont);
            }
        }
        // Convert out of Montgomery form.
        let out = self.mont_mul(&acc, &one);
        let mut b = BigUint { limbs: out };
        b.normalize();
        b
    }
}

fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    // a - b with (magnitude, negative) pairs.
    match (a.1, b.1) {
        (false, true) => (a.0.add(&b.0), false),
        (true, false) => (a.0.add(&b.0), true),
        (an, _) => {
            if a.0.cmp_to(&b.0) != std::cmp::Ordering::Less {
                (a.0.sub(&b.0), an)
            } else {
                (b.0.sub(&a.0), !an)
            }
        }
    }
}

/// Uniform random value in `[0, bound)`.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn random_below(bound: &BigUint, rng: &mut impl Rng) -> BigUint {
    assert!(!bound.is_zero(), "empty range");
    let bytes = bound.bits().div_ceil(8);
    loop {
        let mut buf = vec![0u8; bytes];
        rng.fill(&mut buf[..]);
        // Mask the top byte to reduce rejection rate.
        let top_bits = bound.bits() % 8;
        if top_bits != 0 {
            buf[0] &= (1u8 << top_bits) - 1;
        }
        let candidate = BigUint::from_bytes_be(&buf);
        if candidate.cmp_to(bound) == std::cmp::Ordering::Less {
            return candidate;
        }
    }
}

/// Generates a random probable prime with exactly `bits` bits.
pub fn random_prime(bits: usize, rng: &mut impl Rng) -> BigUint {
    assert!(bits >= 8, "prime too small");
    loop {
        let bytes = bits.div_ceil(8);
        let mut buf = vec![0u8; bytes];
        rng.fill(&mut buf[..]);
        buf[bytes - 1] |= 1; // odd
        let mut candidate = BigUint::from_bytes_be(&buf);
        // Keep the low bits, then force the top bit for exact size.
        candidate = candidate.rem(&BigUint::one().shl_bits(bits - 1));
        candidate = candidate.add(&BigUint::one().shl_bits(bits - 1));
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
        }
        if candidate.is_probable_prime(20, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bytes_round_trip() {
        let b = BigUint::from_bytes_be(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
        assert_eq!(b.to_bytes_be(), vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 7]).to_bytes_be(), vec![7]);
        assert!(BigUint::from_bytes_be(&[]).is_zero());
    }

    #[test]
    fn arithmetic_small_values() {
        let a = BigUint::from_u64(1_000_000_007);
        let b = BigUint::from_u64(998_244_353);
        assert_eq!(a.add(&b), BigUint::from_u64(1_998_244_360));
        assert_eq!(a.sub(&b), BigUint::from_u64(1_755_654));
        let p = a.mul(&b);
        assert_eq!(p.rem(&a), BigUint::zero());
        let (q, r) = p.div_rem(&b);
        assert_eq!(q, a);
        assert!(r.is_zero());
    }

    #[test]
    fn multiplication_crosses_limbs() {
        let a = BigUint::from_u64(u64::MAX);
        let sq = a.mul(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expect = BigUint::one()
            .shl_bits(128)
            .sub(&BigUint::one().shl_bits(65))
            .add(&BigUint::one());
        assert_eq!(sq, expect);
    }

    #[test]
    fn mod_pow_matches_u64_math() {
        let b = BigUint::from_u64(7);
        let e = BigUint::from_u64(130);
        let m = BigUint::from_u64(1_000_000_007);
        // 7^130 mod p computed by repeated squaring in u128.
        let mut expect = 1u128;
        let mut base = 7u128;
        let mut exp = 130u32;
        while exp > 0 {
            if exp & 1 == 1 {
                expect = expect * base % 1_000_000_007;
            }
            base = base * base % 1_000_000_007;
            exp >>= 1;
        }
        assert_eq!(b.mod_pow(&e, &m), BigUint::from_u64(expect as u64));
    }

    #[test]
    fn mod_inverse_correct() {
        let m = BigUint::from_u64(1_000_000_007);
        let a = BigUint::from_u64(123_456_789);
        let inv = a.mod_inverse(&m).unwrap();
        assert_eq!(a.mul(&inv).rem(&m), BigUint::one());
        // Non-coprime case.
        let m2 = BigUint::from_u64(100);
        assert!(BigUint::from_u64(10).mod_inverse(&m2).is_none());
    }

    #[test]
    fn miller_rabin_classifies_known_values() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 101, 65_537, 2_147_483_647] {
            assert!(BigUint::from_u64(p).is_probable_prime(16, &mut rng), "{p} is prime");
        }
        for c in [1u64, 4, 100, 65_535, 2_147_483_649] {
            assert!(!BigUint::from_u64(c).is_probable_prime(16, &mut rng), "{c} is composite");
        }
        // Carmichael number 561 = 3·11·17 must be rejected.
        assert!(!BigUint::from_u64(561).is_probable_prime(16, &mut rng));
    }

    #[test]
    fn random_prime_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = random_prime(96, &mut rng);
        assert_eq!(p.bits(), 96);
        assert!(p.is_probable_prime(16, &mut rng));
    }

    #[test]
    fn montgomery_matches_naive_modpow() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let mut m = random_below(&BigUint::one().shl_bits(130), &mut rng);
            if m.is_even() {
                m = m.add(&BigUint::one());
            }
            if m.cmp_to(&BigUint::from_u64(3)) == std::cmp::Ordering::Less {
                continue;
            }
            let b = random_below(&m, &mut rng);
            let e = random_below(&BigUint::one().shl_bits(40), &mut rng);
            // Naive square-and-multiply with division.
            let mut expect = BigUint::one().rem(&m);
            let mut base = b.rem(&m);
            for i in 0..e.bits() {
                if e.bit(i) {
                    expect = expect.mul(&base).rem(&m);
                }
                base = base.mul(&base).rem(&m);
            }
            assert_eq!(b.mod_pow(&e, &m), expect, "montgomery disagrees for modulus {m:?}");
        }
    }

    #[test]
    fn division_random_cross_check() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let a = random_below(&BigUint::one().shl_bits(192), &mut rng);
            let b = random_below(&BigUint::one().shl_bits(96), &mut rng).add(&BigUint::one());
            let (q, r) = a.div_rem(&b);
            assert!(r.cmp_to(&b) == std::cmp::Ordering::Less);
            assert_eq!(q.mul(&b).add(&r), a);
        }
    }
}
