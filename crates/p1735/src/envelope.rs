//! The `pragma protect` envelope and rights management (IEEE 1735-2014,
//! \[29\] in the paper).
//!
//! The locked RTL is encrypted once with a random AES session key
//! (AES-128-GCM); the session key is RSA-OAEP-wrapped separately for every
//! *authorized tool*. An integration/verification engineer can hand the
//! envelope to a tool holding one of those private keys; the tool can
//! simulate the design but the engineer never sees plaintext RTL or the
//! locking key — the insider-threat mitigation of Section III-B.

use crate::aes::{Aes, KeySize};
use crate::base64;
use crate::gcm::{gcm_decrypt, gcm_encrypt, TAG_LEN};
use crate::rsa::{self, PrivateKey, PublicKey};
use crate::sha256::{digest_hex, sha256};
use rand::Rng;
use std::fmt;

const AAD: &[u8] = b"rtlock-p1735-v1";

/// What a tool is allowed to do with the decrypted IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Permissions {
    /// Tool may decrypt internally for simulation/synthesis.
    pub decrypt_for_simulation: bool,
    /// Tool may re-export (delegate) the IP to another envelope.
    pub delegate: bool,
}

impl Permissions {
    /// The usual verification-tool rights: simulate yes, delegate no.
    pub fn simulation_only() -> Permissions {
        Permissions { decrypt_for_simulation: true, delegate: false }
    }
}

/// One authorized tool in the rights block.
#[derive(Debug, Clone)]
pub struct Grant {
    /// Tool/keyowner name (e.g. `"Synopsys-VCS"`).
    pub tool: String,
    /// The tool's public key.
    pub public_key: PublicKey,
    /// Permissions granted to this tool.
    pub permissions: Permissions,
}

/// Errors opening an envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Envelope text is structurally malformed.
    Malformed(String),
    /// The tool is not in the rights block.
    NotAuthorized,
    /// The tool is listed but lacks the needed permission.
    PermissionDenied,
    /// Cryptographic failure (wrong key or tampering).
    CryptoFailure,
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::Malformed(m) => write!(f, "malformed envelope: {m}"),
            EnvelopeError::NotAuthorized => write!(f, "tool not present in rights block"),
            EnvelopeError::PermissionDenied => write!(f, "tool lacks the required permission"),
            EnvelopeError::CryptoFailure => write!(f, "decryption or authentication failed"),
        }
    }
}

impl std::error::Error for EnvelopeError {}

/// Encrypts RTL source into a `pragma protect` envelope for the given
/// grants.
///
/// # Panics
///
/// Panics if `grants` is empty (an envelope nobody can open is a mistake).
pub fn protect(rtl_source: &str, grants: &[Grant], rng: &mut impl Rng) -> String {
    assert!(!grants.is_empty(), "at least one grant required");
    let mut session_key = [0u8; 16];
    rng.fill(&mut session_key[..]);
    let mut iv = [0u8; 12];
    rng.fill(&mut iv[..]);
    let aes = Aes::new(&session_key, KeySize::Aes128);
    let (ciphertext, tag) = gcm_encrypt(&aes, &iv, AAD, rtl_source.as_bytes());

    let mut out = String::new();
    out.push_str("`pragma protect begin_protected\n");
    out.push_str("`pragma protect version=2\n");
    out.push_str("`pragma protect encrypt_agent=\"rtlock-p1735\", encrypt_agent_info=\"0.1.0\"\n");
    for g in grants {
        let wrapped = rsa::wrap(&g.public_key, &session_key, rng).expect("16-byte session key fits");
        out.push_str(&format!(
            "`pragma protect key_keyowner=\"{}\", key_method=\"rsa-oaep\", key_keyname=\"{}-key\"\n",
            g.tool, g.tool
        ));
        out.push_str(&format!(
            "`pragma protect control decrypt_for_simulation={} delegate={}\n",
            g.permissions.decrypt_for_simulation, g.permissions.delegate
        ));
        out.push_str("`pragma protect key_block\n");
        out.push_str(&wrap72(&base64::encode(&wrapped)));
    }
    out.push_str("`pragma protect data_method=\"aes128-gcm\"\n");
    out.push_str("`pragma protect data_block\n");
    let mut payload = iv.to_vec();
    payload.extend_from_slice(&tag);
    payload.extend_from_slice(&ciphertext);
    out.push_str(&wrap72(&base64::encode(&payload)));
    out.push_str("`pragma protect end_protected\n");
    out
}

fn wrap72(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + s.len() / 72 + 1);
    for chunk in s.as_bytes().chunks(72) {
        out.push_str(std::str::from_utf8(chunk).expect("base64 is ascii"));
        out.push('\n');
    }
    out
}

/// A parsed envelope (still encrypted).
#[derive(Debug, Clone)]
pub struct Envelope {
    key_blocks: Vec<(String, Permissions, Vec<u8>)>,
    data: Vec<u8>,
}

impl Envelope {
    /// Parses envelope text.
    ///
    /// # Errors
    ///
    /// Returns [`EnvelopeError::Malformed`] on structural problems.
    pub fn parse(text: &str) -> Result<Envelope, EnvelopeError> {
        let mut key_blocks = Vec::new();
        let mut data = None;
        let mut lines = text.lines().peekable();
        let mut current_tool: Option<String> = None;
        let mut current_perm = Permissions::simulation_only();
        let mut seen_begin = false;
        while let Some(line) = lines.next() {
            let line = line.trim();
            if line == "`pragma protect begin_protected" {
                seen_begin = true;
            } else if let Some(rest) = line.strip_prefix("`pragma protect key_keyowner=\"") {
                let tool = rest.split('"').next().unwrap_or("").to_owned();
                current_tool = Some(tool);
            } else if let Some(rest) = line.strip_prefix("`pragma protect control ") {
                let mut p = Permissions { decrypt_for_simulation: false, delegate: false };
                for kv in rest.split_whitespace() {
                    match kv {
                        "decrypt_for_simulation=true" => p.decrypt_for_simulation = true,
                        "delegate=true" => p.delegate = true,
                        _ => {}
                    }
                }
                current_perm = p;
            } else if line == "`pragma protect key_block" {
                let b64 = collect_block(&mut lines);
                let bytes = base64::decode(&b64)
                    .ok_or_else(|| EnvelopeError::Malformed("bad base64 in key block".into()))?;
                let tool = current_tool
                    .take()
                    .ok_or_else(|| EnvelopeError::Malformed("key block without keyowner".into()))?;
                key_blocks.push((tool, current_perm, bytes));
            } else if line == "`pragma protect data_block" {
                let b64 = collect_block(&mut lines);
                data = Some(
                    base64::decode(&b64)
                        .ok_or_else(|| EnvelopeError::Malformed("bad base64 in data block".into()))?,
                );
            }
        }
        if !seen_begin {
            return Err(EnvelopeError::Malformed("missing begin_protected".into()));
        }
        let data = data.ok_or_else(|| EnvelopeError::Malformed("missing data block".into()))?;
        if data.len() < 12 + TAG_LEN {
            return Err(EnvelopeError::Malformed("data block too short".into()));
        }
        Ok(Envelope { key_blocks, data })
    }

    /// Tools named in the rights block.
    pub fn authorized_tools(&self) -> Vec<&str> {
        self.key_blocks.iter().map(|(t, _, _)| t.as_str()).collect()
    }
}

fn collect_block<'a>(lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>) -> String {
    let mut b64 = String::new();
    while let Some(peek) = lines.peek() {
        if peek.trim_start().starts_with("`pragma") {
            break;
        }
        b64.push_str(lines.next().expect("peeked"));
        b64.push('\n');
    }
    b64
}

/// A tool identity: a name plus the matching RSA private key. Opening an
/// envelope through a session models running the EDA tool with its vendor
/// keyring.
#[derive(Debug, Clone)]
pub struct ToolSession {
    /// Tool name (must match a grant's `tool`).
    pub tool: String,
    /// The tool's private key.
    pub private_key: PrivateKey,
}

/// Decrypted IP held *inside* a tool. The plaintext is private: callers
/// can fingerprint it or run tool-internal computations over it, but the
/// API never hands the source text out.
pub struct ProtectedIp {
    source: String,
    permissions: Permissions,
}

impl fmt::Debug for ProtectedIp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never leak the source through Debug.
        write!(f, "ProtectedIp(sha256={}, perms={:?})", self.source_digest(), self.permissions)
    }
}

impl ProtectedIp {
    /// SHA-256 fingerprint of the plaintext (safe to publish).
    pub fn source_digest(&self) -> String {
        digest_hex(&sha256(self.source.as_bytes()))
    }

    /// Plaintext length in bytes (safe metadata).
    pub fn source_len(&self) -> usize {
        self.source.len()
    }

    /// Permissions this session holds.
    pub fn permissions(&self) -> Permissions {
        self.permissions
    }

    /// Runs a tool-internal computation over the plaintext (e.g. parsing
    /// and simulating it). The closure boundary models the inside of the
    /// trusted tool binary: results flow out, source does not.
    pub fn with_source<R>(&self, tool_internal: impl FnOnce(&str) -> R) -> R {
        tool_internal(&self.source)
    }
}

impl ToolSession {
    /// Opens an envelope: finds this tool's key block, unwraps the session
    /// key, verifies and decrypts the data block.
    ///
    /// # Errors
    ///
    /// [`EnvelopeError::NotAuthorized`] if the tool has no key block,
    /// [`EnvelopeError::PermissionDenied`] without simulation rights, and
    /// [`EnvelopeError::CryptoFailure`] on key/tag mismatch.
    pub fn open(&self, envelope: &Envelope) -> Result<ProtectedIp, EnvelopeError> {
        let (_, permissions, wrapped) = envelope
            .key_blocks
            .iter()
            .find(|(t, _, _)| *t == self.tool)
            .ok_or(EnvelopeError::NotAuthorized)?;
        if !permissions.decrypt_for_simulation {
            return Err(EnvelopeError::PermissionDenied);
        }
        let session_key = rsa::unwrap(&self.private_key, wrapped).map_err(|_| EnvelopeError::CryptoFailure)?;
        if session_key.len() != 16 {
            return Err(EnvelopeError::CryptoFailure);
        }
        let aes = Aes::new(&session_key, KeySize::Aes128);
        let iv: [u8; 12] = envelope.data[..12].try_into().expect("length checked in parse");
        let tag: [u8; TAG_LEN] = envelope.data[12..12 + TAG_LEN].try_into().expect("length checked");
        let ct = &envelope.data[12 + TAG_LEN..];
        let plain = gcm_decrypt(&aes, &iv, AAD, ct, &tag).map_err(|_| EnvelopeError::CryptoFailure)?;
        let source = String::from_utf8(plain).map_err(|_| EnvelopeError::CryptoFailure)?;
        Ok(ProtectedIp { source, permissions: *permissions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::generate_keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const RTL: &str = "module secret(input a, output y); assign y = ~a; endmodule\n";

    fn setup() -> (String, ToolSession, ToolSession) {
        let mut rng = StdRng::seed_from_u64(21);
        let vcs = generate_keypair(512, &mut rng);
        let rogue = generate_keypair(512, &mut rng);
        let text = protect(
            RTL,
            &[Grant {
                tool: "SimTool".into(),
                public_key: vcs.public.clone(),
                permissions: Permissions::simulation_only(),
            }],
            &mut rng,
        );
        (
            text,
            ToolSession { tool: "SimTool".into(), private_key: vcs.private },
            ToolSession { tool: "RogueTool".into(), private_key: rogue.private },
        )
    }

    #[test]
    fn envelope_hides_plaintext() {
        let (text, _, _) = setup();
        assert!(!text.contains("secret"), "module name must not appear");
        assert!(!text.contains("assign"), "RTL body must not appear");
        assert!(text.contains("begin_protected"));
        assert!(text.contains("aes128-gcm"));
    }

    #[test]
    fn authorized_tool_opens_and_fingerprints() {
        let (text, sim, _) = setup();
        let env = Envelope::parse(&text).unwrap();
        assert_eq!(env.authorized_tools(), vec!["SimTool"]);
        let ip = sim.open(&env).unwrap();
        assert_eq!(ip.source_len(), RTL.len());
        assert_eq!(ip.source_digest(), digest_hex(&sha256(RTL.as_bytes())));
        let module_count = ip.with_source(|s| s.matches("module").count());
        assert_eq!(module_count, 2, "`module` + `endmodule`");
    }

    #[test]
    fn unauthorized_tool_rejected() {
        let (text, _, rogue) = setup();
        let env = Envelope::parse(&text).unwrap();
        assert_eq!(rogue.open(&env).unwrap_err(), EnvelopeError::NotAuthorized);
        // Even claiming the right name fails without the right key.
        let imposter = ToolSession { tool: "SimTool".into(), private_key: rogue.private_key };
        assert_eq!(imposter.open(&env).unwrap_err(), EnvelopeError::CryptoFailure);
    }

    #[test]
    fn tampered_envelope_rejected() {
        let (text, sim, _) = setup();
        // Flip a character inside the data block.
        let idx = text.find("data_block").unwrap() + 30;
        let mut bytes = text.into_bytes();
        bytes[idx] = if bytes[idx] == b'A' { b'B' } else { b'A' };
        let tampered = String::from_utf8(bytes).unwrap();
        match Envelope::parse(&tampered) {
            Ok(env) => assert_eq!(sim.open(&env).unwrap_err(), EnvelopeError::CryptoFailure),
            Err(EnvelopeError::Malformed(_)) => {} // also acceptable
            Err(e) => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn permission_denied_without_simulation_right() {
        let mut rng = StdRng::seed_from_u64(22);
        let kp = generate_keypair(512, &mut rng);
        let text = protect(
            RTL,
            &[Grant {
                tool: "ViewerOnly".into(),
                public_key: kp.public,
                permissions: Permissions { decrypt_for_simulation: false, delegate: false },
            }],
            &mut rng,
        );
        let env = Envelope::parse(&text).unwrap();
        let tool = ToolSession { tool: "ViewerOnly".into(), private_key: kp.private };
        assert_eq!(tool.open(&env).unwrap_err(), EnvelopeError::PermissionDenied);
    }

    #[test]
    fn multiple_grants_each_open_independently() {
        let mut rng = StdRng::seed_from_u64(23);
        let kp1 = generate_keypair(512, &mut rng);
        let kp2 = generate_keypair(512, &mut rng);
        let text = protect(
            RTL,
            &[
                Grant { tool: "A".into(), public_key: kp1.public, permissions: Permissions::simulation_only() },
                Grant { tool: "B".into(), public_key: kp2.public, permissions: Permissions::simulation_only() },
            ],
            &mut rng,
        );
        let env = Envelope::parse(&text).unwrap();
        let a = ToolSession { tool: "A".into(), private_key: kp1.private };
        let b = ToolSession { tool: "B".into(), private_key: kp2.private };
        assert_eq!(a.open(&env).unwrap().source_digest(), b.open(&env).unwrap().source_digest());
    }

    #[test]
    fn debug_does_not_leak_source() {
        let (text, sim, _) = setup();
        let env = Envelope::parse(&text).unwrap();
        let ip = sim.open(&env).unwrap();
        let dbg = format!("{ip:?}");
        assert!(!dbg.contains("assign"));
        assert!(dbg.contains("sha256"));
    }
}
