//! Standard base64 (RFC 4648) with padding — P1735 data/key blocks are
//! base64-encoded inside the pragma envelope.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as base64 with `=` padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], chunk.get(1).copied().unwrap_or(0), chunk.get(2).copied().unwrap_or(0)];
        let n = u32::from(b[0]) << 16 | u32::from(b[1]) << 8 | u32::from(b[2]);
        out.push(ALPHABET[(n >> 18 & 63) as usize] as char);
        out.push(ALPHABET[(n >> 12 & 63) as usize] as char);
        out.push(if chunk.len() > 1 { ALPHABET[(n >> 6 & 63) as usize] as char } else { '=' });
        out.push(if chunk.len() > 2 { ALPHABET[(n & 63) as usize] as char } else { '=' });
    }
    out
}

/// Decodes base64 (whitespace tolerated). Returns `None` on malformed
/// input.
pub fn decode(text: &str) -> Option<Vec<u8>> {
    let mut vals = Vec::new();
    let mut padding = 0usize;
    for c in text.chars() {
        if c.is_whitespace() {
            continue;
        }
        if c == '=' {
            padding += 1;
            continue;
        }
        if padding > 0 {
            return None; // data after padding
        }
        let v = ALPHABET.iter().position(|&a| a as char == c)? as u32;
        vals.push(v);
    }
    if !(vals.len() + padding).is_multiple_of(4) || padding > 2 {
        return None;
    }
    let mut out = Vec::with_capacity(vals.len() * 3 / 4);
    for chunk in vals.chunks(4) {
        let n = chunk.iter().fold(0u32, |acc, &v| acc << 6 | v) << (6 * (4 - chunk.len()));
        let bytes = [(n >> 16) as u8, (n >> 8) as u8, n as u8];
        let emit = match chunk.len() {
            4 => 3,
            3 => 2,
            2 => 1,
            _ => return None,
        };
        out.extend_from_slice(&bytes[..emit]);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_round_trip() {
        for data in [&b""[..], b"x", b"ab", b"abc", b"The quick brown fox", &[0u8, 255, 128, 7]] {
            assert_eq!(decode(&encode(data)).unwrap(), data);
        }
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn malformed_rejected() {
        assert!(decode("!!!!").is_none());
        assert!(decode("Zg=a").is_none());
        assert!(decode("Z").is_none());
    }
}
