//! AES-128/AES-256 block cipher (FIPS 197), implemented from scratch.

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

fn xtime(b: u8) -> u8 {
    (b << 1) ^ if b & 0x80 != 0 { 0x1b } else { 0 }
}

fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// AES key size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 256-bit key, 14 rounds.
    Aes256,
}

/// An expanded AES key.
#[derive(Debug, Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl Aes {
    /// Expands a key.
    ///
    /// # Panics
    ///
    /// Panics if the key length does not match the key size (16 or 32
    /// bytes).
    pub fn new(key: &[u8], size: KeySize) -> Aes {
        let (nk, rounds) = match size {
            KeySize::Aes128 => (4usize, 10usize),
            KeySize::Aes256 => (8, 14),
        };
        assert_eq!(key.len(), nk * 4, "AES key length mismatch");
        let total_words = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        let mut rcon = 1u8;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([temp[0] ^ prev[0], temp[1] ^ prev[1], temp[2] ^ prev[2], temp[3] ^ prev[3]]);
        }
        let round_keys: Vec<[u8; 16]> = w
            .chunks(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (j, word) in c.iter().enumerate() {
                    rk[j * 4..j * 4 + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Aes { round_keys, rounds }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut s = *block;
        add_round_key(&mut s, &self.round_keys[0]);
        for r in 1..self.rounds {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[r]);
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[self.rounds]);
        s
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let inv = inv_sbox();
        let mut s = *block;
        add_round_key(&mut s, &self.round_keys[self.rounds]);
        for r in (1..self.rounds).rev() {
            inv_shift_rows(&mut s);
            for b in &mut s {
                *b = inv[*b as usize];
            }
            add_round_key(&mut s, &self.round_keys[r]);
            inv_mix_columns(&mut s);
        }
        inv_shift_rows(&mut s);
        for b in &mut s {
            *b = inv[*b as usize];
        }
        add_round_key(&mut s, &self.round_keys[0]);
        s
    }
}

fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for (b, k) in s.iter_mut().zip(rk) {
        *b ^= k;
    }
}

fn sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn shift_rows(s: &mut [u8; 16]) {
    // State is column-major: s[r + 4c].
    let copy = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[r + 4 * c] = copy[r + 4 * ((c + r) % 4)];
        }
    }
}

fn inv_shift_rows(s: &mut [u8; 16]) {
    let copy = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[r + 4 * ((c + r) % 4)] = copy[r + 4 * c];
        }
    }
}

fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        s[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        s[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        s[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

fn inv_mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        s[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        s[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        s[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex")).collect()
    }

    #[test]
    fn fips197_aes128_vector() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f");
        let pt: [u8; 16] = from_hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new(&key, KeySize::Aes128);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(ct.to_vec(), from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn fips197_aes256_vector() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let pt: [u8; 16] = from_hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new(&key, KeySize::Aes256);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(ct.to_vec(), from_hex("8ea2b7ca516745bfeafc49904b496089"));
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn round_trips_random_blocks() {
        let key = [7u8; 16];
        let aes = Aes::new(&key, KeySize::Aes128);
        let mut block = [0u8; 16];
        for round in 0..32u8 {
            for (i, b) in block.iter_mut().enumerate() {
                *b = b.wrapping_mul(31).wrapping_add(i as u8 ^ round);
            }
            assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        }
    }

    #[test]
    #[should_panic(expected = "key length")]
    fn wrong_key_length_panics() {
        Aes::new(&[0u8; 10], KeySize::Aes128);
    }
}
