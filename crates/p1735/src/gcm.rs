//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! P1735 v2 mandates AEAD for the data block; GCM is the recommended data
//! method (`aes128-gcm` / `aes256-gcm`).

use crate::aes::Aes;

/// Authentication tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Error returned when authentication fails on decryption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthError;

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GCM authentication failed")
    }
}

impl std::error::Error for AuthError {}

/// GF(2^128) multiplication per SP 800-38D (bit-reflected convention).
fn gf_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1u128 << 120;
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if y >> (127 - i) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

fn ghash(h: u128, aad: &[u8], ct: &[u8]) -> u128 {
    let mut y = 0u128;
    let absorb = |data: &[u8], y: &mut u128| {
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            *y = gf_mul(*y ^ u128::from_be_bytes(block), h);
        }
    };
    absorb(aad, &mut y);
    absorb(ct, &mut y);
    let lengths = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
    gf_mul(y ^ lengths, h)
}

fn counter_block(iv: &[u8; 12], counter: u32) -> [u8; 16] {
    let mut b = [0u8; 16];
    b[..12].copy_from_slice(iv);
    b[12..].copy_from_slice(&counter.to_be_bytes());
    b
}

fn ctr_xor(aes: &Aes, iv: &[u8; 12], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for (i, chunk) in data.chunks(16).enumerate() {
        let ks = aes.encrypt_block(&counter_block(iv, 2 + i as u32));
        out.extend(chunk.iter().zip(&ks).map(|(d, k)| d ^ k));
    }
    out
}

/// Encrypts and authenticates. Returns `(ciphertext, tag)`.
pub fn gcm_encrypt(aes: &Aes, iv: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> (Vec<u8>, [u8; TAG_LEN]) {
    let h = u128::from_be_bytes(aes.encrypt_block(&[0u8; 16]));
    let ciphertext = ctr_xor(aes, iv, plaintext);
    let s = ghash(h, aad, &ciphertext);
    let ek0 = u128::from_be_bytes(aes.encrypt_block(&counter_block(iv, 1)));
    ((ciphertext), (s ^ ek0).to_be_bytes())
}

/// Verifies and decrypts.
///
/// # Errors
///
/// Returns [`AuthError`] if the tag does not match (no plaintext is
/// released).
pub fn gcm_decrypt(
    aes: &Aes,
    iv: &[u8; 12],
    aad: &[u8],
    ciphertext: &[u8],
    tag: &[u8; TAG_LEN],
) -> Result<Vec<u8>, AuthError> {
    let h = u128::from_be_bytes(aes.encrypt_block(&[0u8; 16]));
    let s = ghash(h, aad, ciphertext);
    let ek0 = u128::from_be_bytes(aes.encrypt_block(&counter_block(iv, 1)));
    let expect = (s ^ ek0).to_be_bytes();
    // Constant-time-ish comparison.
    let diff = expect.iter().zip(tag).fold(0u8, |acc, (a, b)| acc | (a ^ b));
    if diff != 0 {
        return Err(AuthError);
    }
    Ok(ctr_xor(aes, iv, ciphertext))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::KeySize;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex")).collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn nist_test_case_1_empty() {
        let aes = Aes::new(&[0u8; 16], KeySize::Aes128);
        let iv = [0u8; 12];
        let (ct, tag) = gcm_encrypt(&aes, &iv, &[], &[]);
        assert!(ct.is_empty());
        assert_eq!(hex(&tag), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    #[test]
    fn nist_test_case_2_one_block() {
        let aes = Aes::new(&[0u8; 16], KeySize::Aes128);
        let iv = [0u8; 12];
        let pt = [0u8; 16];
        let (ct, tag) = gcm_encrypt(&aes, &iv, &[], &pt);
        assert_eq!(hex(&ct), "0388dace60b6a392f328c2b971b2fe78");
        assert_eq!(hex(&tag), "ab6e47d42cec13bdf53a67b21257bddf");
    }

    #[test]
    fn nist_test_case_3_and_4() {
        let key = from_hex("feffe9928665731c6d6a8f9467308308");
        let aes = Aes::new(&key, KeySize::Aes128);
        let iv: [u8; 12] = from_hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let (ct, tag) = gcm_encrypt(&aes, &iv, &aad, &pt);
        assert_eq!(
            hex(&ct),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
        );
        assert_eq!(hex(&tag), "5bc94fbc3221a5db94fae95ae7121a47");
        // Round trip.
        let back = gcm_decrypt(&aes, &iv, &aad, &ct, &tag).unwrap();
        assert_eq!(back, pt);
    }

    #[test]
    fn tampering_is_detected() {
        let aes = Aes::new(&[9u8; 16], KeySize::Aes128);
        let iv = [3u8; 12];
        let (mut ct, tag) = gcm_encrypt(&aes, &iv, b"aad", b"locked rtl source");
        ct[0] ^= 1;
        assert_eq!(gcm_decrypt(&aes, &iv, b"aad", &ct, &tag), Err(AuthError));
        ct[0] ^= 1;
        let mut bad_tag = tag;
        bad_tag[15] ^= 0x80;
        assert_eq!(gcm_decrypt(&aes, &iv, b"aad", &ct, &bad_tag), Err(AuthError));
        // AAD is authenticated too.
        assert_eq!(gcm_decrypt(&aes, &iv, b"aa!", &ct, &tag), Err(AuthError));
        assert!(gcm_decrypt(&aes, &iv, b"aad", &ct, &tag).is_ok());
    }

    #[test]
    fn aes256_round_trip() {
        let aes = Aes::new(&[0x42u8; 32], KeySize::Aes256);
        let iv = [7u8; 12];
        let msg = b"module top(); endmodule // not really";
        let (ct, tag) = gcm_encrypt(&aes, &iv, &[], msg);
        assert_eq!(gcm_decrypt(&aes, &iv, &[], &ct, &tag).unwrap(), msg);
    }
}
