//! RSA key wrap for the P1735 key block.
//!
//! Each tool vendor publishes an RSA public key; the IP owner wraps the
//! AES session key for every authorized tool. Padding is OAEP-style
//! (SHA-256 + MGF1), which is what the P1735 v2 errata recommends over
//! PKCS#1 v1.5.
//!
//! Key sizes default to 1024 bits in tests/demos — small for production but
//! honest for a from-scratch schoolbook-arithmetic implementation.

use crate::bigint::{random_prime, BigUint};
use crate::sha256::sha256;
use rand::Rng;
use std::fmt;

/// RSA public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicKey {
    /// Modulus.
    pub n: BigUint,
    /// Public exponent (65537).
    pub e: BigUint,
}

/// RSA private key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivateKey {
    /// Modulus.
    pub n: BigUint,
    /// Private exponent.
    pub d: BigUint,
}

/// A generated key pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPair {
    /// Public half.
    pub public: PublicKey,
    /// Private half.
    pub private: PrivateKey,
}

/// Errors from wrap/unwrap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Message too long for the modulus.
    MessageTooLong,
    /// Padding check failed on unwrap.
    BadPadding,
}

impl fmt::Display for RsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsaError::MessageTooLong => write!(f, "message too long for RSA modulus"),
            RsaError::BadPadding => write!(f, "RSA padding check failed"),
        }
    }
}

impl std::error::Error for RsaError {}

/// Generates a key pair with a modulus of roughly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 128`.
pub fn generate_keypair(bits: usize, rng: &mut impl Rng) -> KeyPair {
    assert!(bits >= 128, "modulus too small");
    let e = BigUint::from_u64(65_537);
    loop {
        let p = random_prime(bits / 2, rng);
        let q = random_prime(bits - bits / 2, rng);
        if p == q {
            continue;
        }
        let n = p.mul(&q);
        let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
        let Some(d) = e.mod_inverse(&phi) else { continue };
        return KeyPair {
            public: PublicKey { n: n.clone(), e: e.clone() },
            private: PrivateKey { n, d },
        };
    }
}

fn mgf1(seed: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u32;
    while out.len() < len {
        let mut block = seed.to_vec();
        block.extend_from_slice(&counter.to_be_bytes());
        out.extend_from_slice(&sha256(&block));
        counter += 1;
    }
    out.truncate(len);
    out
}

/// OAEP hash length. SHA-256 truncated to 16 bytes so that 512-bit demo
/// moduli can still carry a 16-byte AES session key (full-length OAEP
/// would require >= 1024-bit keys); the construction is otherwise
/// standard.
const HASH_LEN: usize = 16;

fn label_hash() -> [u8; HASH_LEN] {
    sha256(b"P1735")[..HASH_LEN].try_into().expect("truncation")
}

/// OAEP-wraps `message` (e.g. an AES session key) under `public`.
///
/// # Errors
///
/// Returns [`RsaError::MessageTooLong`] if the message does not fit.
pub fn wrap(public: &PublicKey, message: &[u8], rng: &mut impl Rng) -> Result<Vec<u8>, RsaError> {
    let k = public.n.bits().div_ceil(8);
    if message.len() + 2 * HASH_LEN + 2 > k {
        return Err(RsaError::MessageTooLong);
    }
    // EM = 0x00 || maskedSeed || maskedDB
    let db_len = k - HASH_LEN - 1;
    let mut db = vec![0u8; db_len];
    db[..HASH_LEN].copy_from_slice(&label_hash());
    let msg_start = db_len - message.len();
    db[msg_start - 1] = 0x01;
    db[msg_start..].copy_from_slice(message);
    let mut seed = [0u8; HASH_LEN];
    rng.fill(&mut seed[..]);
    let db_mask = mgf1(&seed, db_len);
    for (b, m) in db.iter_mut().zip(&db_mask) {
        *b ^= m;
    }
    let seed_mask = mgf1(&db, HASH_LEN);
    let mut masked_seed = seed;
    for (s, m) in masked_seed.iter_mut().zip(&seed_mask) {
        *s ^= m;
    }
    let mut em = vec![0u8];
    em.extend_from_slice(&masked_seed);
    em.extend_from_slice(&db);
    let m = BigUint::from_bytes_be(&em);
    let c = m.mod_pow(&public.e, &public.n);
    let mut out = c.to_bytes_be();
    while out.len() < k {
        out.insert(0, 0);
    }
    Ok(out)
}

/// Unwraps a session key with the private key.
///
/// # Errors
///
/// Returns [`RsaError::BadPadding`] if the structure does not verify
/// (wrong key or corrupted key block).
pub fn unwrap(private: &PrivateKey, ciphertext: &[u8]) -> Result<Vec<u8>, RsaError> {
    let k = private.n.bits().div_ceil(8);
    let c = BigUint::from_bytes_be(ciphertext);
    let m = c.mod_pow(&private.d, &private.n);
    let mut em = m.to_bytes_be();
    while em.len() < k {
        em.insert(0, 0);
    }
    if em.len() != k || em[0] != 0 {
        return Err(RsaError::BadPadding);
    }
    let masked_seed: Vec<u8> = em[1..1 + HASH_LEN].to_vec();
    let mut db: Vec<u8> = em[1 + HASH_LEN..].to_vec();
    let seed_mask = mgf1(&db, HASH_LEN);
    let seed: Vec<u8> = masked_seed.iter().zip(&seed_mask).map(|(a, b)| a ^ b).collect();
    let db_mask = mgf1(&seed, db.len());
    for (b, m) in db.iter_mut().zip(&db_mask) {
        *b ^= m;
    }
    if db[..HASH_LEN] != label_hash() {
        return Err(RsaError::BadPadding);
    }
    let rest = &db[HASH_LEN..];
    let sep = rest.iter().position(|&b| b == 0x01).ok_or(RsaError::BadPadding)?;
    if rest[..sep].iter().any(|&b| b != 0) {
        return Err(RsaError::BadPadding);
    }
    Ok(rest[sep + 1..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wrap_unwrap_round_trip() {
        let mut rng = StdRng::seed_from_u64(11);
        let kp = generate_keypair(512, &mut rng);
        let session_key = [0xABu8; 16];
        let wrapped = wrap(&kp.public, &session_key, &mut rng).unwrap();
        assert_ne!(wrapped, session_key.to_vec());
        let back = unwrap(&kp.private, &wrapped).unwrap();
        assert_eq!(back, session_key.to_vec());
    }

    #[test]
    fn wrong_key_fails_padding() {
        let mut rng = StdRng::seed_from_u64(12);
        let kp1 = generate_keypair(512, &mut rng);
        let kp2 = generate_keypair(512, &mut rng);
        let wrapped = wrap(&kp1.public, &[1, 2, 3, 4], &mut rng).unwrap();
        assert!(unwrap(&kp2.private, &wrapped).is_err());
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let mut rng = StdRng::seed_from_u64(13);
        let kp = generate_keypair(512, &mut rng);
        let mut wrapped = wrap(&kp.public, &[9u8; 16], &mut rng).unwrap();
        wrapped[5] ^= 0x40;
        assert!(unwrap(&kp.private, &wrapped).is_err());
    }

    #[test]
    fn oversized_message_rejected() {
        let mut rng = StdRng::seed_from_u64(14);
        let kp = generate_keypair(512, &mut rng);
        let too_big = vec![0u8; 64];
        assert_eq!(wrap(&kp.public, &too_big, &mut rng), Err(RsaError::MessageTooLong));
    }

    #[test]
    fn wrapping_is_randomized() {
        let mut rng = StdRng::seed_from_u64(15);
        let kp = generate_keypair(512, &mut rng);
        let w1 = wrap(&kp.public, &[7u8; 16], &mut rng).unwrap();
        let w2 = wrap(&kp.public, &[7u8; 16], &mut rng).unwrap();
        assert_ne!(w1, w2, "OAEP seeds differ");
    }
}
