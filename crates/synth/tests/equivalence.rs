//! Elaboration correctness: the gate-level netlist must be cycle-accurate
//! equivalent to the RTL simulator on randomized stimulus.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtlock_netlist::NetSim;
use rtlock_rtl::sim::Simulator;
use rtlock_rtl::{parse, Bv, Dir};
use rtlock_synth::{elaborate, io, optimize};

/// Drives both simulators with the same random inputs for `cycles` cycles
/// and compares every output each cycle. Clock ports are skipped (implicit
/// at gate level); reset is asserted for the first two cycles.
fn check_equivalence(src: &str, cycles: usize, seed: u64) {
    let module = parse(src).expect("parse");
    let mut netlist = elaborate(&module).expect("elaborate");
    optimize(&mut netlist);

    let mut rtl = Simulator::new(&module);
    let mut gates = NetSim::new(&netlist).expect("acyclic");
    gates.reset();

    let clock_names: Vec<String> = module
        .procs
        .iter()
        .filter_map(|p| match &p.kind {
            rtlock_rtl::ProcessKind::Seq { clock, .. } => Some(module.net(*clock).name.clone()),
            _ => None,
        })
        .collect();
    let inputs: Vec<(String, usize)> = module
        .ports
        .iter()
        .filter(|&&p| module.net(p).dir == Some(Dir::Input))
        .map(|&p| (module.net(p).name.clone(), module.width(p)))
        .filter(|(n, _)| !clock_names.contains(n))
        .collect();
    let outputs: Vec<String> = module
        .ports
        .iter()
        .filter(|&&p| module.net(p).dir == Some(Dir::Output))
        .map(|&p| module.net(p).name.clone())
        .collect();
    let resets: Vec<(String, bool)> = module
        .procs
        .iter()
        .filter_map(|p| match &p.kind {
            rtlock_rtl::ProcessKind::Seq { reset: Some(r), .. } => {
                Some((module.net(r.net).name.clone(), r.active_high))
            }
            _ => None,
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    // Assert reset for two cycles first so both sides start aligned.
    for cycle in 0..cycles {
        let in_reset = cycle < 2;
        for (name, width) in &inputs {
            let value = if let Some((_, active_high)) = resets.iter().find(|(n, _)| n == name) {
                Bv::from_u64(1, u64::from(in_reset == *active_high))
            } else {
                let mut v = Bv::zeros(*width);
                for i in 0..*width {
                    v.set(i, rng.gen_bool(0.5));
                }
                v
            };
            rtl.set_by_name(name, value.clone());
            io::set_port(&mut gates, name, &value);
        }
        rtl.step().expect("rtl step");
        gates.step();
        for out in &outputs {
            let rv = rtl.get_by_name(out);
            let gv = io::get_port(&gates, out);
            assert_eq!(rv, gv, "output `{out}` diverged at cycle {cycle} (seed {seed})");
        }
    }
}

#[test]
fn combinational_datapath() {
    check_equivalence(
        "module t(input [7:0] a, input [7:0] b, output [7:0] s, output [7:0] d, output [7:0] p, output lt);\n\
         assign s = a + b;\n assign d = a - b;\n assign p = a * b;\n assign lt = a < b;\nendmodule",
        40,
        1,
    );
}

#[test]
fn shifts_and_reductions() {
    check_equivalence(
        "module t(input [7:0] a, input [3:0] n, output [7:0] l, output [7:0] r, output [2:0] red);\n\
         assign l = a << n;\n assign r = a >> n;\n\
         assign red = {&a, |a, ^a};\nendmodule",
        60,
        2,
    );
}

#[test]
fn ternary_concat_slices() {
    check_equivalence(
        "module t(input [7:0] a, input c, output [7:0] y, output [3:0] z);\n\
         assign y = c ? {a[3:0], a[7:4]} : {2{a[1:0], 2'b01}};\n\
         assign z = y[5:2];\nendmodule",
        40,
        3,
    );
}

#[test]
fn registered_accumulator() {
    check_equivalence(
        "module t(input clk, input rst, input [7:0] d, output reg [7:0] acc);\n\
         always @(posedge clk or posedge rst) begin\n\
           if (rst) acc <= 8'd0; else acc <= acc + d;\n\
         end\nendmodule",
        50,
        4,
    );
}

#[test]
fn fsm_with_datapath() {
    check_equivalence(
        "module t(input clk, input rst, input go, input [3:0] d, output reg [3:0] out, output busy);\n\
         reg [1:0] state; reg [1:0] state_next;\n\
         reg [3:0] work;\n\
         localparam [1:0] IDLE = 2'd0, RUN = 2'd1, DONE = 2'd2;\n\
         assign busy = state != IDLE;\n\
         always @(*) begin\n\
           state_next = state;\n\
           case (state)\n\
             IDLE: begin if (go) state_next = RUN; end\n\
             RUN: begin state_next = DONE; end\n\
             DONE: begin state_next = IDLE; end\n\
             default: begin state_next = IDLE; end\n\
           endcase\n\
         end\n\
         always @(posedge clk or posedge rst) begin\n\
           if (rst) begin state <= 2'd0; work <= 4'd0; out <= 4'd0; end\n\
           else begin\n\
             state <= state_next;\n\
             if (state == IDLE) work <= d;\n\
             if (state == RUN) work <= work + 4'd3;\n\
             if (state == DONE) out <= work;\n\
           end\n\
         end\nendmodule",
        80,
        5,
    );
}

#[test]
fn negedge_reset_and_partial_assign() {
    check_equivalence(
        "module t(input clk, input rst_n, input [3:0] d, output reg [7:0] q);\n\
         always @(posedge clk or negedge rst_n) begin\n\
           if (!rst_n) q <= 8'hA5;\n\
           else begin q[3:0] <= d; q[7:4] <= q[3:0]; end\n\
         end\nendmodule",
        50,
        6,
    );
}

#[test]
fn dynamic_index_and_logic_ops() {
    check_equivalence(
        "module t(input [7:0] a, input [2:0] i, input [3:0] x, input [3:0] y, output b, output l);\n\
         assign b = a[i];\n\
         assign l = (x != 4'd0) && (y > 4'd7) || !(|x);\nendmodule",
        60,
        7,
    );
}

#[test]
fn comb_process_with_case_defaults() {
    check_equivalence(
        "module t(input [1:0] sel, input [7:0] a, input [7:0] b, output reg [7:0] y);\n\
         always @(*) begin\n\
           y = 8'd0;\n\
           case (sel)\n\
             2'd0: y = a;\n\
             2'd1: y = b;\n\
             2'd2: y = a ^ b;\n\
           endcase\n\
         end\nendmodule",
        40,
        8,
    );
}

#[test]
fn multiple_clocked_processes() {
    check_equivalence(
        "module t(input clk, input rst, input [3:0] d, output reg [3:0] q1, output reg [3:0] q2);\n\
         always @(posedge clk or posedge rst) begin\n\
           if (rst) q1 <= 4'd0; else q1 <= d;\n\
         end\n\
         always @(posedge clk or posedge rst) begin\n\
           if (rst) q2 <= 4'd7; else q2 <= q1 + q2;\n\
         end\nendmodule",
        50,
        9,
    );
}

#[test]
fn reset_mid_run_matches() {
    // Reset asserted in the middle of the run must realign both models.
    let src = "module t(input clk, input rst, output reg [3:0] c);\n\
               always @(posedge clk or posedge rst) begin if (rst) c <= 4'd0; else c <= c + 4'd1; end\nendmodule";
    let module = parse(src).unwrap();
    let netlist = elaborate(&module).unwrap();
    let mut rtl = Simulator::new(&module);
    let mut gates = NetSim::new(&netlist).unwrap();
    gates.reset();
    for cycle in 0..20 {
        let r = cycle < 2 || (8..10).contains(&cycle);
        rtl.set_by_name("rst", Bv::from_u64(1, u64::from(r)));
        io::set_port(&mut gates, "rst", &Bv::from_u64(1, u64::from(r)));
        rtl.step().unwrap();
        gates.step();
        assert_eq!(rtl.get_by_name("c"), io::get_port(&gates, "c"), "cycle {cycle}");
    }
}
