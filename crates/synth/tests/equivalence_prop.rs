//! Property-based elaboration check: for randomly generated expression
//! trees, the synthesized netlist must agree with the RTL simulator on
//! random stimulus.

use proptest::prelude::*;
use rtlock_netlist::NetSim;
use rtlock_rtl::sim::Simulator;
use rtlock_rtl::{parse, Bv};
use rtlock_synth::{elaborate, io, optimize};

/// Random expression over `a`, `b` (8-bit) from a seed stream.
fn expr_from(ops: &[u8]) -> String {
    let mut expr = String::from("a");
    for (i, &op) in ops.iter().enumerate() {
        let rhs = match op % 4 {
            0 => "b".to_string(),
            1 => format!("8'd{}", op as u32 * 7 % 256),
            2 => "(a ^ b)".to_string(),
            _ => "{b[3:0], a[7:4]}".to_string(),
        };
        let o = ["+", "-", "&", "|", "^", "*", "<<", ">>", "~^"][(op as usize + i) % 9];
        expr = format!("({expr} {o} {rhs})");
    }
    expr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn elaboration_matches_rtl_simulation(
        ops in proptest::collection::vec(any::<u8>(), 1..8),
        stimuli in proptest::collection::vec((any::<u64>(), any::<u64>()), 6),
    ) {
        let src = format!(
            "module p(input [7:0] a, input [7:0] b, output [7:0] y, output flag);\n\
             assign y = {};\n assign flag = y > (a & b);\nendmodule",
            expr_from(&ops)
        );
        let module = parse(&src).expect("generated source parses");
        let mut netlist = elaborate(&module).expect("elaborates");
        optimize(&mut netlist);
        let mut rtl = Simulator::new(&module);
        let mut gates = NetSim::new(&netlist).expect("acyclic");
        for &(av, bv) in &stimuli {
            let a = Bv::from_u64(8, av);
            let b = Bv::from_u64(8, bv);
            rtl.set_by_name("a", a.clone());
            rtl.set_by_name("b", b.clone());
            io::set_port(&mut gates, "a", &a);
            io::set_port(&mut gates, "b", &b);
            rtl.settle().expect("settles");
            gates.eval_comb();
            prop_assert_eq!(rtl.get_by_name("y"), io::get_port(&gates, "y"), "y for {}", src);
            prop_assert_eq!(rtl.get_by_name("flag"), io::get_port(&gates, "flag"), "flag for {}", src);
        }
    }
}
