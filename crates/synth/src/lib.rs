//! RTL-to-gates synthesis for the RTLock reproduction.
//!
//! Stands in for the commercial flow (Synopsys DC on NanGate 15 nm) the
//! paper uses: [`elaborate()`] bit-blasts the RTL IR into the gate library,
//! [`optimize`] performs technology-independent cleanup (and powers the
//! constant-propagation step of the SWEEP/SCOPE attacks), and [`scan`]
//! provides scan insertion, stitching, reordering and the attacker-visible
//! scan view.
//!
//! # Examples
//!
//! ```
//! use rtlock_synth::{elaborate, optimize, scan};
//!
//! let m = rtlock_rtl::parse(r#"
//! module c(input clk, input rst, input [3:0] d, output reg [3:0] q);
//!   always @(posedge clk or posedge rst) begin
//!     if (rst) q <= 4'd0; else q <= q + d;
//!   end
//! endmodule"#)?;
//! let mut n = elaborate(&m)?;
//! optimize(&mut n);
//! scan::insert_full_scan(&mut n);
//! assert_eq!(n.dffs().len(), 4);
//! assert_eq!(n.scan_chain.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod elaborate;
pub mod io;
pub mod lower;
pub mod opt;
pub mod scan;

pub use builder::GateBuilder;
pub use elaborate::{elaborate, SynthError};
pub use opt::{optimize, optimize_bounded, OptStats};
pub use scan::{scan_view, ScanView};
