//! Elaboration: RTL IR → gate-level netlist.
//!
//! Bit-blasts every net, infers flip-flops from clocked processes (async
//! resets become a synchronous reset mux plus the flop's init value, which
//! matches the RTL simulator's clock-edge reset semantics), converts
//! procedural control flow into mux trees by symbolic execution, and lowers
//! word-level operators through [`crate::lower`].
//!
//! The invariant checked by the test-suite: for any supported module, the
//! elaborated netlist is cycle-accurate equivalent to the RTL simulator.

use crate::builder::GateBuilder;
use crate::lower::{self, Sig};
use rtlock_netlist::{GateId, Netlist, Port};
use rtlock_rtl::ast::*;
use rtlock_rtl::Bv;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Error raised for constructs elaboration cannot handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// A combinational dependency cycle between nets.
    CombLoop(String),
    /// A net is driven more than once.
    MultipleDrivers(String),
    /// Anything else outside the supported subset.
    Unsupported(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::CombLoop(n) => write!(f, "combinational loop through net `{n}`"),
            SynthError::MultipleDrivers(n) => write!(f, "net `{n}` has multiple drivers"),
            SynthError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
        }
    }
}

impl std::error::Error for SynthError {}

/// Elaborates a module into a netlist.
///
/// Clock nets disappear (the netlist has an implicit global clock); reset
/// nets remain as data inputs feeding the reset muxes.
///
/// # Errors
///
/// Returns [`SynthError`] for combinational loops, multiple drivers, or
/// unsupported constructs.
///
/// # Examples
///
/// ```
/// let m = rtlock_rtl::parse(
///     "module t(input [3:0] a, input [3:0] b, output [3:0] y); assign y = a + b; endmodule")?;
/// let n = rtlock_synth::elaborate(&m)?;
/// assert_eq!(n.inputs().len(), 8);
/// assert!(n.logic_count() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn elaborate(module: &Module) -> Result<Netlist, SynthError> {
    Elaborator::new(module)?.run()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Driver {
    None,
    Assigns,
    CombProc(usize),
    SeqProc(usize),
    Input,
}

struct Elaborator<'m> {
    module: &'m Module,
    builder: GateBuilder,
    driver: Vec<Driver>,
    /// Assign indices per driven net.
    assign_map: HashMap<NetId, Vec<usize>>,
    /// Elaborated value of each net.
    values: HashMap<NetId, Sig>,
    /// Nets currently being computed (cycle detection).
    visiting: HashSet<NetId>,
    /// Comb processes already executed.
    done_procs: HashSet<usize>,
    clocks: HashSet<NetId>,
    registers: HashMap<NetId, Sig>,
}

impl<'m> Elaborator<'m> {
    fn new(module: &'m Module) -> Result<Self, SynthError> {
        let mut driver = vec![Driver::None; module.nets.len()];
        let mut assign_map: HashMap<NetId, Vec<usize>> = HashMap::new();
        let mut clocks = HashSet::new();

        for &p in &module.ports {
            if module.net(p).dir == Some(Dir::Input) {
                driver[p.index()] = Driver::Input;
            }
        }
        for p in &module.procs {
            if let ProcessKind::Seq { clock, .. } = &p.kind {
                clocks.insert(*clock);
            }
        }
        let set_driver = |driver: &mut Vec<Driver>, net: NetId, d: Driver, module: &Module| {
            let cur = driver[net.index()];
            if cur == Driver::None || cur == d {
                driver[net.index()] = d;
                Ok(())
            } else {
                Err(SynthError::MultipleDrivers(module.net(net).name.clone()))
            }
        };
        for (i, a) in module.assigns.iter().enumerate() {
            set_driver(&mut driver, a.lhs.net, Driver::Assigns, module)?;
            assign_map.entry(a.lhs.net).or_default().push(i);
        }
        for (pi, p) in module.procs.iter().enumerate() {
            let mut targets = HashSet::new();
            collect_targets(&p.body, &mut targets);
            collect_targets(&p.reset_body, &mut targets);
            let d = match p.kind {
                ProcessKind::Comb => Driver::CombProc(pi),
                ProcessKind::Seq { .. } => Driver::SeqProc(pi),
            };
            for t in targets {
                set_driver(&mut driver, t, d, module)?;
            }
        }

        Ok(Elaborator {
            module,
            builder: GateBuilder::new(module.name.clone()),
            driver,
            assign_map,
            values: HashMap::new(),
            visiting: HashSet::new(),
            done_procs: HashSet::new(),
            clocks,
            registers: HashMap::new(),
        })
    }

    fn run(mut self) -> Result<Netlist, SynthError> {
        // Inputs (clocks excluded).
        for &p in &self.module.ports {
            if self.module.net(p).dir != Some(Dir::Input) || self.clocks.contains(&p) {
                continue;
            }
            let w = self.module.width(p);
            let name = &self.module.net(p).name;
            let sig: Sig = (0..w)
                .map(|i| {
                    let n = if w == 1 { name.clone() } else { format!("{name}[{i}]") };
                    self.builder.input(n)
                })
                .collect();
            self.builder.netlist_mut().input_ports.push(Port { name: name.clone(), bits: sig.clone() });
            self.values.insert(p, sig);
        }

        // Registers: create flops with init values from reset bodies.
        for (pi, p) in self.module.procs.iter().enumerate() {
            if !matches!(p.kind, ProcessKind::Seq { .. }) {
                continue;
            }
            let mut targets = HashSet::new();
            collect_targets(&p.body, &mut targets);
            collect_targets(&p.reset_body, &mut targets);
            let mut targets: Vec<NetId> = targets.into_iter().collect();
            targets.sort();
            for t in targets {
                if self.registers.contains_key(&t) {
                    return Err(SynthError::MultipleDrivers(self.module.net(t).name.clone()));
                }
                let w = self.module.width(t);
                let init = const_reset_value(&p.reset_body, t).unwrap_or_else(|| Bv::zeros(w)).resize(w);
                let name = &self.module.net(t).name;
                let sig: Sig = (0..w)
                    .map(|i| {
                        let n = if w == 1 { name.clone() } else { format!("{name}[{i}]") };
                        self.builder.dff(init.bit(i), n)
                    })
                    .collect();
                self.registers.insert(t, sig.clone());
                self.values.insert(t, sig);
            }
            let _ = pi;
        }

        // Next-state logic for each clocked process.
        for p in self.module.procs.iter() {
            let ProcessKind::Seq { reset, .. } = &p.kind else { continue };
            let mut targets = HashSet::new();
            collect_targets(&p.body, &mut targets);
            collect_targets(&p.reset_body, &mut targets);
            // Sorted so the reset-gating gates below are emitted in a
            // run-independent order (HashSet order varies per process).
            let mut targets: Vec<NetId> = targets.into_iter().collect();
            targets.sort();

            // Non-blocking: body reads old register values via compute().
            let mut env: HashMap<NetId, Sig> = HashMap::new();
            for &t in &targets {
                env.insert(t, self.registers[&t].clone());
            }
            let base = env.clone();
            self.exec_block(&p.body, &mut env, false)?;

            // Reset values.
            let reset_env = if reset.is_some() {
                let mut renv = base.clone();
                self.exec_block(&p.reset_body, &mut renv, false)?;
                Some(renv)
            } else {
                None
            };

            let reset_bit = match reset {
                Some(spec) => {
                    let rsig = self.compute(spec.net)?;
                    let bit = lower::reduce_or(&mut self.builder, &rsig);
                    Some(if spec.active_high { bit } else { self.builder.not(bit) })
                }
                None => None,
            };

            for &t in &targets {
                let next = env[&t].clone();
                let d = match (&reset_bit, &reset_env) {
                    (Some(rb), Some(renv)) => lower::mux_vec(&mut self.builder, *rb, &next, &renv[&t]),
                    _ => next,
                };
                let regs = self.registers[&t].clone();
                for (i, &ff) in regs.iter().enumerate() {
                    self.builder.set_dff_input(ff, d[i]);
                }
            }
        }

        // Outputs.
        for &p in &self.module.ports {
            if self.module.net(p).dir != Some(Dir::Output) {
                continue;
            }
            let sig = self.compute(p)?;
            let name = self.module.net(p).name.clone();
            for (i, &g) in sig.iter().enumerate() {
                let n = if sig.len() == 1 { name.clone() } else { format!("{name}[{i}]") };
                self.builder.netlist_mut().add_output(n, g);
            }
            self.builder.netlist_mut().output_ports.push(Port { name, bits: sig });
        }

        let mut netlist = self.builder.into_netlist();
        netlist.sweep_dead();
        Ok(netlist)
    }

    /// Computes the signal of a net, elaborating its driver on demand.
    fn compute(&mut self, net: NetId) -> Result<Sig, SynthError> {
        if let Some(v) = self.values.get(&net) {
            return Ok(v.clone());
        }
        if self.clocks.contains(&net) {
            return Err(SynthError::Unsupported(format!(
                "clock `{}` used as data",
                self.module.net(net).name
            )));
        }
        if !self.visiting.insert(net) {
            return Err(SynthError::CombLoop(self.module.net(net).name.clone()));
        }
        let w = self.module.width(net);
        let result = match self.driver[net.index()] {
            Driver::Input => unreachable!("inputs precomputed"),
            Driver::SeqProc(_) => unreachable!("registers precomputed"),
            Driver::None => {
                // Undriven: constant zeros.
                let zero = self.builder.constant(false);
                Ok(vec![zero; w])
            }
            Driver::Assigns => {
                let idxs = self.assign_map[&net].clone();
                let mut bits: Vec<Option<GateId>> = vec![None; w];
                for i in idxs {
                    let a = &self.module.assigns[i];
                    let rhs = self.eval_expr(&a.rhs.clone(), None)?;
                    let (hi, lo) = a.lhs.range.unwrap_or((w - 1, 0));
                    let rhs = lower::resize(&mut self.builder, &rhs, hi - lo + 1);
                    for (k, &g) in rhs.iter().enumerate() {
                        if bits[lo + k].is_some() {
                            return Err(SynthError::MultipleDrivers(self.module.net(net).name.clone()));
                        }
                        bits[lo + k] = Some(g);
                    }
                }
                let zero = self.builder.constant(false);
                Ok(bits.into_iter().map(|b| b.unwrap_or(zero)).collect())
            }
            Driver::CombProc(pi) => {
                self.exec_comb_proc(pi)?;
                Ok(self.values.get(&net).cloned().unwrap_or_else(|| {
                    // Target never assigned on any path: zeros.
                    Vec::new()
                }))
            }
        };
        self.visiting.remove(&net);
        let mut sig = result?;
        if sig.is_empty() {
            let zero = self.builder.constant(false);
            sig = vec![zero; w];
        }
        self.values.insert(net, sig.clone());
        Ok(sig)
    }

    /// Executes a combinational process once, caching all its targets.
    fn exec_comb_proc(&mut self, pi: usize) -> Result<(), SynthError> {
        if self.done_procs.contains(&pi) {
            return Ok(());
        }
        let p = &self.module.procs[pi];
        let mut targets = HashSet::new();
        collect_targets(&p.body, &mut targets);
        // Targets start as zeros (a fully-assigning process overwrites them;
        // anything else would be a latch, which we approximate with 0).
        let mut env: HashMap<NetId, Sig> = HashMap::new();
        for &t in &targets {
            let w = self.module.width(t);
            let zero = self.builder.constant(false);
            env.insert(t, vec![zero; w]);
        }
        let body = p.body.clone();
        self.exec_block(&body, &mut env, true)?;
        self.done_procs.insert(pi);
        for (t, sig) in env {
            self.values.insert(t, sig);
        }
        Ok(())
    }

    /// Symbolically executes statements, updating `env` for target nets.
    /// `blocking` controls whether reads of targets see `env` (comb) or the
    /// old register values (seq, already seeded into `env`... reads go
    /// through `env` either way — for seq processes `env` is seeded with
    /// the register outputs, which are the old values, so the semantics
    /// match non-blocking assignment as long as we *don't* let later
    /// statements observe earlier updates; hence for `blocking == false`
    /// expression evaluation bypasses `env`).
    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        env: &mut HashMap<NetId, Sig>,
        blocking: bool,
    ) -> Result<(), SynthError> {
        for s in stmts {
            match s {
                Stmt::Assign { lhs, rhs } => {
                    let val = self.eval_expr(rhs, if blocking { Some(env) } else { None })?;
                    let w = self.module.width(lhs.net);
                    let (hi, lo) = lhs.range.unwrap_or((w - 1, 0));
                    let val = lower::resize(&mut self.builder, &val, hi - lo + 1);
                    let slot = env
                        .get_mut(&lhs.net)
                        .expect("assignment targets are seeded in env");
                    for (k, g) in val.into_iter().enumerate() {
                        slot[lo + k] = g;
                    }
                }
                Stmt::If { cond, then_, else_ } => {
                    let c = self.eval_expr(cond, if blocking { Some(env) } else { None })?;
                    let cbit = lower::reduce_or(&mut self.builder, &c);
                    let mut tenv = env.clone();
                    let mut eenv = env.clone();
                    self.exec_block(then_, &mut tenv, blocking)?;
                    self.exec_block(else_, &mut eenv, blocking)?;
                    // Sorted: the merge muxes must come out in a
                    // run-independent order, not HashMap order.
                    let mut keys: Vec<NetId> = env.keys().copied().collect();
                    keys.sort();
                    for t in keys {
                        let tv = &tenv[&t];
                        let ev = &eenv[&t];
                        let merged = lower::mux_vec(&mut self.builder, cbit, ev, tv);
                        env.insert(t, merged);
                    }
                }
                Stmt::Case { subject, arms, default } => {
                    let subj = self.eval_expr(subject, if blocking { Some(env) } else { None })?;
                    let mut denv = env.clone();
                    self.exec_block(default, &mut denv, blocking)?;
                    // Build from the last arm backwards so earlier arms win.
                    let mut acc = denv;
                    for arm in arms.iter().rev() {
                        let mut aenv = env.clone();
                        self.exec_block(&arm.body, &mut aenv, blocking)?;
                        // Selection: subject equals any label.
                        let mut sel = self.builder.constant(false);
                        for label in &arm.labels {
                            let lab = label.resize(subj.len());
                            let lsig = lower::constant(&mut self.builder, &lab);
                            let e = lower::eq(&mut self.builder, &subj, &lsig);
                            sel = self.builder.or(sel, e);
                        }
                        let mut keys: Vec<NetId> = acc.keys().copied().collect();
                        keys.sort();
                        let mut merged = HashMap::new();
                        for t in keys {
                            let base = &acc[&t];
                            let av = &aenv[&t];
                            merged.insert(t, lower::mux_vec(&mut self.builder, sel, base, av));
                        }
                        acc = merged;
                    }
                    *env = acc;
                }
            }
        }
        Ok(())
    }

    /// Evaluates an expression to a signal. When `env` is provided,
    /// references to nets present in it read the in-flight procedural value
    /// (blocking semantics).
    fn eval_expr(
        &mut self,
        e: &Expr,
        env: Option<&HashMap<NetId, Sig>>,
    ) -> Result<Sig, SynthError> {
        let read = |this: &mut Self, net: NetId, env: Option<&HashMap<NetId, Sig>>| -> Result<Sig, SynthError> {
            if let Some(env) = env {
                if let Some(v) = env.get(&net) {
                    return Ok(v.clone());
                }
            }
            this.compute(net)
        };
        match e {
            Expr::Const(c) => Ok(lower::constant(&mut self.builder, c)),
            Expr::Ref(n) => read(self, *n, env),
            Expr::Slice { net, hi, lo } => {
                let s = read(self, *net, env)?;
                Ok(s[*lo..=*hi].to_vec())
            }
            Expr::IndexDyn { net, index } => {
                let s = read(self, *net, env)?;
                let idx = self.eval_expr(index, env)?;
                Ok(vec![lower::index_dyn(&mut self.builder, &s, &idx)])
            }
            Expr::Unary { op, arg } => {
                let a = self.eval_expr(arg, env)?;
                Ok(match op {
                    UnaryOp::Not => lower::not(&mut self.builder, &a),
                    UnaryOp::Neg => lower::neg(&mut self.builder, &a),
                    UnaryOp::LogicNot => {
                        let r = lower::reduce_or(&mut self.builder, &a);
                        vec![self.builder.not(r)]
                    }
                    UnaryOp::RedAnd => vec![lower::reduce_and(&mut self.builder, &a)],
                    UnaryOp::RedOr => vec![lower::reduce_or(&mut self.builder, &a)],
                    UnaryOp::RedXor => vec![lower::reduce_xor(&mut self.builder, &a)],
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                let a0 = self.eval_expr(lhs, env)?;
                let b0 = self.eval_expr(rhs, env)?;
                let w = a0.len().max(b0.len());
                let a = lower::resize(&mut self.builder, &a0, w);
                let c = lower::resize(&mut self.builder, &b0, w);
                let b = &mut self.builder;
                Ok(match op {
                    BinaryOp::And => lower::bitwise(b, &a, &c, |b, x, y| b.and(x, y)),
                    BinaryOp::Or => lower::bitwise(b, &a, &c, |b, x, y| b.or(x, y)),
                    BinaryOp::Xor => lower::bitwise(b, &a, &c, |b, x, y| b.xor(x, y)),
                    BinaryOp::Xnor => lower::bitwise(b, &a, &c, |b, x, y| b.xnor(x, y)),
                    BinaryOp::Add => lower::add(b, &a, &c),
                    BinaryOp::Sub => lower::sub(b, &a, &c),
                    BinaryOp::Mul => lower::mul(b, &a, &c),
                    BinaryOp::Shl => lower::shift_var(b, &a, &c, true),
                    BinaryOp::Shr => lower::shift_var(b, &a, &c, false),
                    BinaryOp::Eq => vec![lower::eq(b, &a, &c)],
                    BinaryOp::Ne => {
                        let e = lower::eq(b, &a, &c);
                        vec![b.not(e)]
                    }
                    BinaryOp::Lt => vec![lower::ult(b, &a, &c)],
                    BinaryOp::Le => {
                        let gt = lower::ult(b, &c, &a);
                        vec![b.not(gt)]
                    }
                    BinaryOp::Gt => vec![lower::ult(b, &c, &a)],
                    BinaryOp::Ge => {
                        let lt = lower::ult(b, &a, &c);
                        vec![b.not(lt)]
                    }
                    BinaryOp::LogicAnd => {
                        let x = lower::reduce_or(b, &a);
                        let y = lower::reduce_or(b, &c);
                        vec![b.and(x, y)]
                    }
                    BinaryOp::LogicOr => {
                        let x = lower::reduce_or(b, &a);
                        let y = lower::reduce_or(b, &c);
                        vec![b.or(x, y)]
                    }
                })
            }
            Expr::Ternary { cond, then_, else_ } => {
                let c = self.eval_expr(cond, env)?;
                let cbit = lower::reduce_or(&mut self.builder, &c);
                let t0 = self.eval_expr(then_, env)?;
                let e0 = self.eval_expr(else_, env)?;
                let w = t0.len().max(e0.len());
                let t = lower::resize(&mut self.builder, &t0, w);
                let f = lower::resize(&mut self.builder, &e0, w);
                Ok(lower::mux_vec(&mut self.builder, cbit, &f, &t))
            }
            Expr::Concat(parts) => {
                // parts[0] is the MSB part.
                let mut out = Vec::new();
                for p in parts.iter().rev() {
                    let s = self.eval_expr(p, env)?;
                    out.extend(s);
                }
                Ok(out)
            }
            Expr::Repeat { times, expr } => {
                let s = self.eval_expr(expr, env)?;
                let mut out = Vec::with_capacity(s.len() * times);
                for _ in 0..*times {
                    out.extend(s.iter().copied());
                }
                Ok(out)
            }
        }
    }
}

fn collect_targets(stmts: &[Stmt], out: &mut HashSet<NetId>) {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, .. } => {
                out.insert(lhs.net);
            }
            Stmt::If { then_, else_, .. } => {
                collect_targets(then_, out);
                collect_targets(else_, out);
            }
            Stmt::Case { arms, default, .. } => {
                for a in arms {
                    collect_targets(&a.body, out);
                }
                collect_targets(default, out);
            }
        }
    }
}

fn const_reset_value(reset_body: &[Stmt], target: NetId) -> Option<Bv> {
    for s in reset_body {
        if let Stmt::Assign { lhs, rhs } = s {
            if lhs.net == target && lhs.range.is_none() {
                if let Expr::Const(c) = rhs {
                    return Some(c.clone());
                }
            }
        }
    }
    None
}
