//! Word-level operator lowering onto gate vectors.
//!
//! A *signal* is a `Vec<GateId>`, least-significant bit first. These
//! routines implement the datapath macros a synthesis tool would infer:
//! ripple-carry adders, borrow subtractors, shift-and-add multipliers,
//! barrel shifters, comparators and reduction trees.

use crate::builder::GateBuilder;
use rtlock_netlist::GateId;
use rtlock_rtl::Bv;

/// A bit-blasted signal, LSB first.
pub type Sig = Vec<GateId>;

/// Materializes a constant as a signal.
pub fn constant(b: &mut GateBuilder, value: &Bv) -> Sig {
    value.iter_bits().map(|bit| b.constant(bit)).collect()
}

/// Zero-extends or truncates to `width`.
pub fn resize(b: &mut GateBuilder, sig: &Sig, width: usize) -> Sig {
    let mut out = Vec::with_capacity(width);
    for i in 0..width {
        out.push(sig.get(i).copied().unwrap_or_else(|| b.constant(false)));
    }
    out
}

/// Bitwise NOT.
pub fn not(b: &mut GateBuilder, a: &Sig) -> Sig {
    a.iter().map(|&x| b.not(x)).collect()
}

/// Bitwise binary op over equal-width signals.
///
/// # Panics
///
/// Panics if widths differ.
pub fn bitwise(b: &mut GateBuilder, a: &Sig, c: &Sig, f: impl Fn(&mut GateBuilder, GateId, GateId) -> GateId) -> Sig {
    assert_eq!(a.len(), c.len(), "width mismatch in bitwise op");
    a.iter().zip(c).map(|(&x, &y)| f(b, x, y)).collect()
}

/// Ripple-carry adder (modular).
pub fn add(b: &mut GateBuilder, a: &Sig, c: &Sig) -> Sig {
    assert_eq!(a.len(), c.len(), "width mismatch in add");
    let mut out = Vec::with_capacity(a.len());
    let mut carry = b.constant(false);
    for (&x, &y) in a.iter().zip(c) {
        let xy = b.xor(x, y);
        let s = b.xor(xy, carry);
        let c1 = b.and(x, y);
        let c2 = b.and(xy, carry);
        carry = b.or(c1, c2);
        out.push(s);
    }
    out
}

/// Two's-complement subtraction (modular): `a - c = a + ~c + 1`.
pub fn sub(b: &mut GateBuilder, a: &Sig, c: &Sig) -> Sig {
    assert_eq!(a.len(), c.len(), "width mismatch in sub");
    let mut out = Vec::with_capacity(a.len());
    let mut carry = b.constant(true);
    for (&x, &y) in a.iter().zip(c) {
        let ny = b.not(y);
        let xy = b.xor(x, ny);
        let s = b.xor(xy, carry);
        let c1 = b.and(x, ny);
        let c2 = b.and(xy, carry);
        carry = b.or(c1, c2);
        out.push(s);
    }
    out
}

/// Two's-complement negation.
pub fn neg(b: &mut GateBuilder, a: &Sig) -> Sig {
    let zero: Sig = a.iter().map(|_| b.constant(false)).collect();
    sub(b, &zero, a)
}

/// Shift-and-add array multiplier (result truncated to operand width).
pub fn mul(b: &mut GateBuilder, a: &Sig, c: &Sig) -> Sig {
    assert_eq!(a.len(), c.len(), "width mismatch in mul");
    let w = a.len();
    let mut acc: Sig = (0..w).map(|_| b.constant(false)).collect();
    for (i, &cb) in c.iter().enumerate() {
        // Partial product: (a << i) AND replicate(cb), truncated to w.
        let mut pp: Sig = Vec::with_capacity(w);
        for k in 0..w {
            if k < i {
                pp.push(b.constant(false));
            } else {
                let bit = a[k - i];
                pp.push(b.and(bit, cb));
            }
        }
        acc = add(b, &acc, &pp);
    }
    acc
}

/// Left shift by a constant amount.
pub fn shl_const(b: &mut GateBuilder, a: &Sig, amount: usize) -> Sig {
    let w = a.len();
    (0..w)
        .map(|i| if i >= amount { a[i - amount] } else { b.constant(false) })
        .collect()
}

/// Right (logical) shift by a constant amount.
pub fn shr_const(b: &mut GateBuilder, a: &Sig, amount: usize) -> Sig {
    let w = a.len();
    (0..w)
        .map(|i| if i + amount < w { a[i + amount] } else { b.constant(false) })
        .collect()
}

/// Barrel shifter for a variable amount. `left` selects direction.
pub fn shift_var(b: &mut GateBuilder, a: &Sig, amount: &Sig, left: bool) -> Sig {
    let w = a.len();
    let mut cur = a.clone();
    // Stages for each amount bit that can affect the result.
    let stages = usize::BITS as usize - (w.max(1) - 1).leading_zeros() as usize;
    for (s, &amt_bit) in amount.iter().enumerate() {
        if s >= stages {
            // Shifting by >= w zeroes everything if this bit is set.
            let nz = amt_bit;
            let zero = b.constant(false);
            cur = cur.iter().map(|&x| b.mux(nz, x, zero)).collect();
            continue;
        }
        let dist = 1usize << s;
        let shifted = if left { shl_const(b, &cur, dist) } else { shr_const(b, &cur, dist) };
        cur = cur.iter().zip(&shifted).map(|(&x, &y)| b.mux(amt_bit, x, y)).collect();
    }
    cur
}

/// Equality comparator (1-bit result).
pub fn eq(b: &mut GateBuilder, a: &Sig, c: &Sig) -> GateId {
    assert_eq!(a.len(), c.len(), "width mismatch in eq");
    let mut acc = b.constant(true);
    for (&x, &y) in a.iter().zip(c) {
        let e = b.xnor(x, y);
        acc = b.and(acc, e);
    }
    acc
}

/// Unsigned less-than comparator (1-bit result).
pub fn ult(b: &mut GateBuilder, a: &Sig, c: &Sig) -> GateId {
    assert_eq!(a.len(), c.len(), "width mismatch in ult");
    // From LSB to MSB: lt = (!x & y) | (x==y) & lt_prev
    let mut lt = b.constant(false);
    for (&x, &y) in a.iter().zip(c) {
        let nx = b.not(x);
        let strictly = b.and(nx, y);
        let same = b.xnor(x, y);
        let keep = b.and(same, lt);
        lt = b.or(strictly, keep);
    }
    lt
}

/// OR-reduction.
pub fn reduce_or(b: &mut GateBuilder, a: &Sig) -> GateId {
    tree(b, a, |b, x, y| b.or(x, y), false)
}

/// AND-reduction.
pub fn reduce_and(b: &mut GateBuilder, a: &Sig) -> GateId {
    tree(b, a, |b, x, y| b.and(x, y), true)
}

/// XOR-reduction (parity).
pub fn reduce_xor(b: &mut GateBuilder, a: &Sig) -> GateId {
    tree(b, a, |b, x, y| b.xor(x, y), false)
}

fn tree(b: &mut GateBuilder, a: &Sig, f: impl Fn(&mut GateBuilder, GateId, GateId) -> GateId, empty: bool) -> GateId {
    if a.is_empty() {
        return b.constant(empty);
    }
    let mut layer = a.clone();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(f(b, pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    layer[0]
}

/// Per-bit 2:1 mux between equal-width signals.
pub fn mux_vec(b: &mut GateBuilder, sel: GateId, a: &Sig, c: &Sig) -> Sig {
    assert_eq!(a.len(), c.len(), "width mismatch in mux");
    a.iter().zip(c).map(|(&x, &y)| b.mux(sel, x, y)).collect()
}

/// Dynamic single-bit select `a[index]` as a mux tree.
pub fn index_dyn(b: &mut GateBuilder, a: &Sig, index: &Sig) -> GateId {
    // Out-of-range indices read 0 (matching the RTL simulator).
    let width_needed = usize::BITS as usize - (a.len().max(1) - 1).leading_zeros() as usize;
    let mut cur = a.clone();
    for (s, &idx_bit) in index.iter().enumerate() {
        if s >= width_needed {
            let zero = b.constant(false);
            cur = cur.iter().map(|&x| b.mux(idx_bit, x, zero)).collect();
            continue;
        }
        let dist = 1usize << s;
        let mut next = Vec::with_capacity(cur.len());
        for i in 0..cur.len() {
            let hi = cur.get(i + dist).copied().unwrap_or_else(|| b.constant(false));
            next.push(b.mux(idx_bit, cur[i], hi));
        }
        cur = next;
    }
    cur[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_netlist::NetSim;

    /// Evaluates a built netlist on concrete input values (LSB-first bit
    /// assignment over inputs in creation order).
    fn eval(b: &GateBuilder, inputs: &[(Sig, u64)], out: &Sig) -> u64 {
        let mut sim = NetSim::new(b.netlist()).unwrap();
        for (sig, val) in inputs {
            for (i, &g) in sig.iter().enumerate() {
                sim.set_input(g, if val >> i & 1 == 1 { u64::MAX } else { 0 });
            }
        }
        sim.eval_comb();
        let mut acc = 0u64;
        for (i, &g) in out.iter().enumerate() {
            if sim.value(g) & 1 == 1 {
                acc |= 1 << i;
            }
        }
        acc
    }

    fn mk_inputs(b: &mut GateBuilder, width: usize, n: usize) -> Vec<Sig> {
        (0..n)
            .map(|k| (0..width).map(|i| b.input(format!("in{k}_{i}"))).collect())
            .collect()
    }

    #[test]
    fn adder_matches_arithmetic() {
        let mut b = GateBuilder::new("t");
        let ins = mk_inputs(&mut b, 8, 2);
        let sum = add(&mut b, &ins[0], &ins[1]);
        for (x, y) in [(0u64, 0u64), (1, 1), (200, 100), (255, 255), (37, 91)] {
            let got = eval(&b, &[(ins[0].clone(), x), (ins[1].clone(), y)], &sum);
            assert_eq!(got, (x + y) & 0xFF, "{x}+{y}");
        }
    }

    #[test]
    fn sub_and_neg() {
        let mut b = GateBuilder::new("t");
        let ins = mk_inputs(&mut b, 8, 2);
        let d = sub(&mut b, &ins[0], &ins[1]);
        let n = neg(&mut b, &ins[0]);
        for (x, y) in [(5u64, 3u64), (3, 5), (0, 0), (255, 1)] {
            let got = eval(&b, &[(ins[0].clone(), x), (ins[1].clone(), y)], &d);
            assert_eq!(got, x.wrapping_sub(y) & 0xFF, "{x}-{y}");
        }
        let got = eval(&b, &[(ins[0].clone(), 7), (ins[1].clone(), 0)], &n);
        assert_eq!(got, (!7u64 + 1) & 0xFF);
    }

    #[test]
    fn multiplier_matches_arithmetic() {
        let mut b = GateBuilder::new("t");
        let ins = mk_inputs(&mut b, 8, 2);
        let p = mul(&mut b, &ins[0], &ins[1]);
        for (x, y) in [(3u64, 5u64), (0, 77), (15, 17), (255, 255)] {
            let got = eval(&b, &[(ins[0].clone(), x), (ins[1].clone(), y)], &p);
            assert_eq!(got, (x * y) & 0xFF, "{x}*{y}");
        }
    }

    #[test]
    fn const_shifts() {
        let mut b = GateBuilder::new("t");
        let ins = mk_inputs(&mut b, 8, 1);
        let l = shl_const(&mut b, &ins[0], 3);
        let r = shr_const(&mut b, &ins[0], 2);
        assert_eq!(eval(&b, &[(ins[0].clone(), 0b101)], &l), 0b101000);
        assert_eq!(eval(&b, &[(ins[0].clone(), 0b1100)], &r), 0b11);
    }

    #[test]
    fn barrel_shifter() {
        let mut b = GateBuilder::new("t");
        let a: Sig = (0..8).map(|i| b.input(format!("a{i}"))).collect();
        let amt: Sig = (0..4).map(|i| b.input(format!("s{i}"))).collect();
        let l = shift_var(&mut b, &a, &amt, true);
        let r = shift_var(&mut b, &a, &amt, false);
        for shift in 0..10u64 {
            let got_l = eval(&b, &[(a.clone(), 0b1011), (amt.clone(), shift)], &l);
            let got_r = eval(&b, &[(a.clone(), 0b1011_0000), (amt.clone(), shift)], &r);
            if shift >= 8 {
                assert_eq!(got_l, 0, "shl {shift}");
                assert_eq!(got_r, 0, "shr {shift}");
            } else {
                assert_eq!(got_l, (0b1011 << shift) & 0xFF, "shl {shift}");
                assert_eq!(got_r, 0b1011_0000 >> shift, "shr {shift}");
            }
        }
    }

    #[test]
    fn comparators() {
        let mut b = GateBuilder::new("t");
        let ins = mk_inputs(&mut b, 6, 2);
        let e = vec![eq(&mut b, &ins[0], &ins[1])];
        let lt = vec![ult(&mut b, &ins[0], &ins[1])];
        for (x, y) in [(3u64, 3u64), (3, 4), (4, 3), (0, 63), (63, 0)] {
            let ge = eval(&b, &[(ins[0].clone(), x), (ins[1].clone(), y)], &e);
            let gl = eval(&b, &[(ins[0].clone(), x), (ins[1].clone(), y)], &lt);
            assert_eq!(ge == 1, x == y, "{x}=={y}");
            assert_eq!(gl == 1, x < y, "{x}<{y}");
        }
    }

    #[test]
    fn reductions() {
        let mut b = GateBuilder::new("t");
        let ins = mk_inputs(&mut b, 5, 1);
        let ro = vec![reduce_or(&mut b, &ins[0])];
        let ra = vec![reduce_and(&mut b, &ins[0])];
        let rx = vec![reduce_xor(&mut b, &ins[0])];
        for v in [0u64, 1, 0b11111, 0b10101, 0b11011] {
            assert_eq!(eval(&b, &[(ins[0].clone(), v)], &ro) == 1, v != 0);
            assert_eq!(eval(&b, &[(ins[0].clone(), v)], &ra) == 1, v == 0b11111);
            assert_eq!(eval(&b, &[(ins[0].clone(), v)], &rx) == 1, (v.count_ones() % 2) == 1);
        }
    }

    #[test]
    fn dynamic_index() {
        let mut b = GateBuilder::new("t");
        let a: Sig = (0..8).map(|i| b.input(format!("a{i}"))).collect();
        let idx: Sig = (0..4).map(|i| b.input(format!("i{i}"))).collect();
        let out = vec![index_dyn(&mut b, &a, &idx)];
        for i in 0..12u64 {
            let got = eval(&b, &[(a.clone(), 0b0110_1001), (idx.clone(), i)], &out);
            let expect = if i < 8 { 0b0110_1001u64 >> i & 1 } else { 0 };
            assert_eq!(got, expect, "index {i}");
        }
    }

    #[test]
    fn resize_zero_extends() {
        let mut b = GateBuilder::new("t");
        let ins = mk_inputs(&mut b, 4, 1);
        let wide = resize(&mut b, &ins[0], 8);
        assert_eq!(eval(&b, &[(ins[0].clone(), 0b1111)], &wide), 0b0000_1111);
        let narrow = resize(&mut b, &ins[0], 2);
        assert_eq!(eval(&b, &[(ins[0].clone(), 0b1111)], &narrow), 0b11);
    }
}
