//! Hash-consing gate builder with on-the-fly constant folding.
//!
//! Every gate created through [`GateBuilder`] is structurally hashed and
//! algebraically simplified, so elaboration directly produces a reasonably
//! optimized netlist — mimicking what a synthesis tool's technology-
//! independent optimization achieves. This matters for the paper's ML-attack
//! argument: key gates inserted *at RTL* are optimized together with the
//! rest of the design instead of being bolted onto an already-minimal
//! netlist.

use rtlock_netlist::{GateId, GateKind, Netlist};
use std::collections::HashMap;

/// Netlist construction wrapper with structural hashing.
///
/// # Examples
///
/// ```
/// use rtlock_synth::GateBuilder;
///
/// let mut b = GateBuilder::new("demo");
/// let x = b.input("x");
/// let y = b.input("y");
/// let g1 = b.and(x, y);
/// let g2 = b.and(y, x);
/// assert_eq!(g1, g2, "commutative ops are hash-consed");
/// let t = b.constant(true);
/// assert_eq!(b.and(x, t), x, "AND with 1 folds away");
/// ```
#[derive(Debug, Clone)]
pub struct GateBuilder {
    netlist: Netlist,
    strash: HashMap<(GateKind, Vec<GateId>), GateId>,
    zero: Option<GateId>,
    one: Option<GateId>,
}

impl GateBuilder {
    /// Creates a builder for a new netlist.
    pub fn new(name: impl Into<String>) -> GateBuilder {
        GateBuilder { netlist: Netlist::new(name), strash: HashMap::new(), zero: None, one: None }
    }

    /// Wraps an existing netlist (hash table starts empty, so only new
    /// gates get consed).
    pub fn from_netlist(netlist: Netlist) -> GateBuilder {
        GateBuilder { netlist, strash: HashMap::new(), zero: None, one: None }
    }

    /// Finishes building, returning the netlist.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// Read access to the netlist under construction.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Mutable access (port bookkeeping, outputs, key marking).
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.netlist
    }

    /// Adds a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> GateId {
        self.netlist.add_input(name)
    }

    /// The shared constant gate for `value`.
    pub fn constant(&mut self, value: bool) -> GateId {
        if value {
            if let Some(g) = self.one {
                return g;
            }
            let g = self.netlist.add_gate(GateKind::Const1, vec![]);
            self.one = Some(g);
            g
        } else {
            if let Some(g) = self.zero {
                return g;
            }
            let g = self.netlist.add_gate(GateKind::Const0, vec![]);
            self.zero = Some(g);
            g
        }
    }

    fn const_of(&self, g: GateId) -> Option<bool> {
        match self.netlist.gate(g).kind {
            GateKind::Const0 => Some(false),
            GateKind::Const1 => Some(true),
            _ => None,
        }
    }

    fn raw(&mut self, kind: GateKind, fanin: Vec<GateId>) -> GateId {
        let key = (kind, fanin.clone());
        if let Some(&g) = self.strash.get(&key) {
            return g;
        }
        let g = self.netlist.add_gate(kind, fanin);
        self.strash.insert(key, g);
        g
    }

    /// Inverter with folding (`!!a = a`, constants fold).
    pub fn not(&mut self, a: GateId) -> GateId {
        if let Some(c) = self.const_of(a) {
            return self.constant(!c);
        }
        if self.netlist.gate(a).kind == GateKind::Not {
            return self.netlist.gate(a).fanin[0];
        }
        self.raw(GateKind::Not, vec![a])
    }

    /// 2-input AND with folding.
    pub fn and(&mut self, a: GateId, b: GateId) -> GateId {
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) | (_, Some(false)) => return self.constant(false),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        self.raw(GateKind::And, vec![x, y])
    }

    /// 2-input OR with folding.
    pub fn or(&mut self, a: GateId, b: GateId) -> GateId {
        match (self.const_of(a), self.const_of(b)) {
            (Some(true), _) | (_, Some(true)) => return self.constant(true),
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        self.raw(GateKind::Or, vec![x, y])
    }

    /// 2-input XOR with folding.
    pub fn xor(&mut self, a: GateId, b: GateId) -> GateId {
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return self.not(b),
            (_, Some(true)) => return self.not(a),
            _ => {}
        }
        if a == b {
            return self.constant(false);
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        self.raw(GateKind::Xor, vec![x, y])
    }

    /// XNOR via XOR + NOT (keeps the hash-cons space small).
    pub fn xnor(&mut self, a: GateId, b: GateId) -> GateId {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// NAND via AND + NOT.
    pub fn nand(&mut self, a: GateId, b: GateId) -> GateId {
        let x = self.and(a, b);
        self.not(x)
    }

    /// NOR via OR + NOT.
    pub fn nor(&mut self, a: GateId, b: GateId) -> GateId {
        let x = self.or(a, b);
        self.not(x)
    }

    /// 2:1 mux (`sel ? b : a`) with folding.
    pub fn mux(&mut self, sel: GateId, a: GateId, b: GateId) -> GateId {
        if let Some(c) = self.const_of(sel) {
            return if c { b } else { a };
        }
        if a == b {
            return a;
        }
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), Some(true)) => return sel,
            (Some(true), Some(false)) => return self.not(sel),
            (Some(false), None) => return self.and(sel, b),
            (None, Some(false)) => {
                let ns = self.not(sel);
                return self.and(ns, a);
            }
            (Some(true), None) => {
                let ns = self.not(sel);
                return self.or(ns, b);
            }
            (None, Some(true)) => return self.or(sel, a),
            _ => {}
        }
        self.raw(GateKind::Mux, vec![sel, a, b])
    }

    /// Creates a flip-flop with a placeholder D pin (wire it later with
    /// [`GateBuilder::set_dff_input`]). Flip-flops are never hash-consed.
    pub fn dff(&mut self, init: bool, name: impl Into<String>) -> GateId {
        let placeholder = self.constant(false);
        self.netlist.add_named_gate(GateKind::Dff { init }, vec![placeholder], name)
    }

    /// Connects a flip-flop's D pin.
    ///
    /// # Panics
    ///
    /// Panics if `dff` is not a flip-flop.
    pub fn set_dff_input(&mut self, dff: GateId, d: GateId) {
        assert!(self.netlist.gate(dff).kind.is_dff(), "{dff} is not a flip-flop");
        self.netlist.gate_mut(dff).fanin[0] = d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_shared() {
        let mut b = GateBuilder::new("t");
        assert_eq!(b.constant(true), b.constant(true));
        assert_eq!(b.constant(false), b.constant(false));
        assert_ne!(b.constant(true), b.constant(false));
    }

    #[test]
    fn folding_rules() {
        let mut b = GateBuilder::new("t");
        let x = b.input("x");
        let t = b.constant(true);
        let f = b.constant(false);
        assert_eq!(b.and(x, f), f);
        assert_eq!(b.or(x, t), t);
        assert_eq!(b.xor(x, f), x);
        let nx = b.not(x);
        assert_eq!(b.xor(x, t), nx);
        assert_eq!(b.not(nx), x, "double negation");
        assert_eq!(b.and(x, x), x);
        let zero = b.xor(x, x);
        assert_eq!(b.const_of(zero), Some(false));
    }

    #[test]
    fn mux_folds() {
        let mut b = GateBuilder::new("t");
        let s = b.input("s");
        let x = b.input("x");
        let t = b.constant(true);
        let f = b.constant(false);
        assert_eq!(b.mux(t, x, f), f, "const select picks branch");
        assert_eq!(b.mux(s, x, x), x);
        assert_eq!(b.mux(s, f, t), s, "0/1 mux is the select itself");
        let and_sx = b.and(s, x);
        assert_eq!(b.mux(s, f, x), and_sx);
    }

    #[test]
    fn strash_dedupes_structurally() {
        let mut b = GateBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.xor(x, y);
        let g2 = b.xor(y, x);
        assert_eq!(g1, g2);
        let n1 = b.nand(x, y);
        let n2 = b.nand(x, y);
        assert_eq!(n1, n2);
        assert_eq!(b.netlist().logic_count(), 3, "one xor, one and, one shared not");
    }

    #[test]
    fn dffs_not_consed() {
        let mut b = GateBuilder::new("t");
        let d1 = b.dff(false, "r0");
        let d2 = b.dff(false, "r1");
        assert_ne!(d1, d2);
        let x = b.input("x");
        b.set_dff_input(d1, x);
        assert_eq!(b.netlist().gate(d1).fanin[0], x);
    }
}
