//! Standalone netlist optimization passes.
//!
//! Used in two roles:
//! 1. post-elaboration cleanup (idempotent after the builder's on-the-fly
//!    folding), and
//! 2. *re-synthesis* inside the SWEEP/SCOPE attacks, which hardwire a key
//!    bit to a constant and measure how much the netlist shrinks — the
//!    constant-propagation signal those attacks learn from.
//!
//! Passes: constant folding, buffer/double-inverter collapse, algebraic
//! one-input simplifications, structural hashing, dead-gate sweeping.
//! Iterates to a fixpoint.

use rtlock_governor::CancelToken;
use rtlock_netlist::{Gate, GateId, GateKind, Netlist};
use std::collections::HashMap;

/// Deliberate-miscompile injection for the differential fuzzing harness.
///
/// `rtlock-fuzz` needs a known-bad optimizer to prove the cross-layer
/// oracle actually catches miscompiles end-to-end (find → diverge →
/// shrink). When armed, the inverted-select mux rewrite in [`optimize`]
/// absorbs the select inverter **without swapping the data legs** — a
/// classic polarity bug that silently corrupts any design whose ternary
/// condition elaborates to an inverter-driven mux select.
///
/// The flag is process-global and off by default; nothing in the
/// production flow arms it. Only the fuzz harness CLI
/// (`rtlock-fuzz --inject-opt-bug`) and its acceptance tests do.
pub mod inject {
    use std::sync::atomic::{AtomicBool, Ordering};

    static OPT_MUX_BUG: AtomicBool = AtomicBool::new(false);

    /// Arms (or disarms) the deliberate inverted-select miscompile.
    pub fn set_opt_mux_bug(enabled: bool) {
        OPT_MUX_BUG.store(enabled, Ordering::SeqCst);
    }

    /// Whether the miscompile is currently armed.
    pub fn opt_mux_bug() -> bool {
        OPT_MUX_BUG.load(Ordering::SeqCst)
    }
}

/// Statistics from an optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Gates removed by all passes combined.
    pub gates_removed: usize,
    /// Fixpoint iterations executed.
    pub iterations: usize,
    /// `true` when a [`CancelToken`] stopped the fixpoint before
    /// convergence. The netlist is still functionally correct (every pass
    /// is semantics-preserving), just less optimized.
    pub interrupted: bool,
}

/// Optimizes a netlist in place to a fixpoint.
///
/// # Examples
///
/// ```
/// use rtlock_netlist::{Netlist, GateKind};
/// use rtlock_synth::optimize;
///
/// let mut n = Netlist::new("t");
/// let a = n.add_input("a");
/// let one = n.add_gate(GateKind::Const1, vec![]);
/// let x = n.add_gate(GateKind::And, vec![a, one]);   // folds to a
/// let nn = n.add_gate(GateKind::Not, vec![x]);
/// let y = n.add_gate(GateKind::Not, vec![nn]);       // double inverter
/// n.add_output("y", y);
/// let stats = optimize(&mut n);
/// assert!(stats.gates_removed >= 3);
/// assert_eq!(n.logic_count(), 0, "y == a directly");
/// ```
pub fn optimize(netlist: &mut Netlist) -> OptStats {
    optimize_bounded(netlist, &CancelToken::unlimited())
}

/// Like [`optimize`], but polls `cancel` between fixpoint iterations and
/// stops early (with [`OptStats::interrupted`] set) when asked. Each pass
/// is semantics-preserving, so an interrupted run leaves a correct — merely
/// under-optimized — netlist.
pub fn optimize_bounded(netlist: &mut Netlist, cancel: &CancelToken) -> OptStats {
    let mut stats = OptStats::default();
    let before_total = netlist.len();
    loop {
        if cancel.should_stop().is_some() {
            stats.interrupted = true;
            break;
        }
        stats.iterations += 1;
        let changed_fold = fold_pass(netlist);
        let changed_hash = strash_pass(netlist);
        let removed = netlist.sweep_dead();
        if !changed_fold && !changed_hash && removed == 0 {
            break;
        }
        if stats.iterations > 50 {
            break; // safety net; passes should converge long before this
        }
    }
    stats.gates_removed = before_total.saturating_sub(netlist.len());
    stats
}

fn const_of(netlist: &Netlist, g: GateId) -> Option<bool> {
    match netlist.gate(g).kind {
        GateKind::Const0 => Some(false),
        GateKind::Const1 => Some(true),
        _ => None,
    }
}

/// Per-pass cache of the shared constant gates (a linear scan per fold is
/// quadratic on large netlists).
#[derive(Default, Clone, Copy)]
struct ConstCache {
    zero: Option<GateId>,
    one: Option<GateId>,
}

impl ConstCache {
    fn scan(netlist: &Netlist) -> ConstCache {
        let mut c = ConstCache::default();
        for id in netlist.ids() {
            match netlist.gate(id).kind {
                GateKind::Const0 if c.zero.is_none() => c.zero = Some(id),
                GateKind::Const1 if c.one.is_none() => c.one = Some(id),
                _ => {}
            }
        }
        c
    }

    fn get(&mut self, netlist: &mut Netlist, value: bool) -> GateId {
        let slot = if value { &mut self.one } else { &mut self.zero };
        match *slot {
            Some(g) => g,
            None => {
                let kind = if value { GateKind::Const1 } else { GateKind::Const0 };
                let g = netlist.add_gate(kind, vec![]);
                *slot = Some(g);
                g
            }
        }
    }
}

/// One constant-folding / algebraic pass. Returns `true` if anything
/// changed.
fn fold_pass(netlist: &mut Netlist) -> bool {
    let order = match netlist.topo_order() {
        Ok(o) => o,
        Err(_) => return false,
    };
    // alias[g] = the gate g should be replaced by.
    let mut alias: Vec<GateId> = netlist.ids().collect();
    let mut consts_cache = ConstCache::scan(netlist);
    let resolve = |alias: &[GateId], mut g: GateId| -> GateId {
        while alias[g.index()] != g {
            g = alias[g.index()];
        }
        g
    };
    let mut changed = false;

    for id in order {
        let kind = netlist.gate(id).kind;
        if !kind.is_logic() {
            continue;
        }
        // Resolve fanins through aliases first.
        let fanin: Vec<GateId> = netlist.gate(id).fanin.iter().map(|&f| resolve(&alias, f)).collect();
        if fanin != netlist.gate(id).fanin {
            netlist.gate_mut(id).fanin = fanin.clone();
            changed = true;
        }
        let consts: Vec<Option<bool>> = fanin.iter().map(|&f| const_of(netlist, f)).collect();

        // Fully constant gate.
        if consts.iter().all(|c| c.is_some()) {
            let ins: Vec<bool> = consts.iter().map(|c| c.expect("checked")).collect();
            let v = kind.eval(&ins);
            let c = consts_cache.get(netlist, v);
            while alias.len() < netlist.len() {
                alias.push(GateId(alias.len() as u32));
            }
            alias[id.index()] = c;
            changed = true;
            continue;
        }

        let consts_cache_ref = &mut consts_cache;
        let mut replace_with = |nl: &mut Netlist, target: Replacement, alias: &mut Vec<GateId>| {
            let new = match target {
                Replacement::Gate(g) => g,
                Replacement::Const(v) => consts_cache_ref.get(nl, v),
                Replacement::Invert(g) => nl.add_gate(GateKind::Not, vec![g]),
            };
            // Newly created gates need identity alias entries.
            while alias.len() < nl.len() {
                alias.push(GateId(alias.len() as u32));
            }
            alias[id.index()] = new;
        };

        enum Replacement {
            Gate(GateId),
            Const(bool),
            Invert(GateId),
        }

        let simplification: Option<Replacement> = match kind {
            GateKind::Buf => Some(Replacement::Gate(fanin[0])),
            GateKind::Not => {
                if netlist.gate(fanin[0]).kind == GateKind::Not {
                    Some(Replacement::Gate(netlist.gate(fanin[0]).fanin[0]))
                } else {
                    None
                }
            }
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let (a, b) = (fanin[0], fanin[1]);
                let invert_out = matches!(kind, GateKind::Nand | GateKind::Nor);
                let is_and = matches!(kind, GateKind::And | GateKind::Nand);
                let absorbing = !is_and; // OR absorbs on 1, AND on 0
                let one_sided = |c: bool, other: GateId| -> Replacement {
                    if c == absorbing {
                        // Absorbing input: result is the absorbing constant.
                        if invert_out {
                            Replacement::Const(!absorbing)
                        } else {
                            Replacement::Const(absorbing)
                        }
                    } else if invert_out {
                        Replacement::Invert(other)
                    } else {
                        Replacement::Gate(other)
                    }
                };
                match (consts[0], consts[1]) {
                    (Some(c), None) => Some(one_sided(c, b)),
                    (None, Some(c)) => Some(one_sided(c, a)),
                    _ if a == b => {
                        if invert_out {
                            Some(Replacement::Invert(a))
                        } else {
                            Some(Replacement::Gate(a))
                        }
                    }
                    _ => None,
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let (a, b) = (fanin[0], fanin[1]);
                let invert_out = kind == GateKind::Xnor;
                match (consts[0], consts[1]) {
                    (Some(c), None) => {
                        if c == invert_out {
                            Some(Replacement::Gate(b))
                        } else {
                            Some(Replacement::Invert(b))
                        }
                    }
                    (None, Some(c)) => {
                        if c == invert_out {
                            Some(Replacement::Gate(a))
                        } else {
                            Some(Replacement::Invert(a))
                        }
                    }
                    _ if a == b => Some(Replacement::Const(invert_out)),
                    _ => None,
                }
            }
            GateKind::Mux => {
                let (s, a, b) = (fanin[0], fanin[1], fanin[2]);
                match consts[0] {
                    Some(false) => Some(Replacement::Gate(a)),
                    Some(true) => Some(Replacement::Gate(b)),
                    None if a == b => Some(Replacement::Gate(a)),
                    // Inverted select: swap the data legs and absorb the NOT.
                    None if netlist.gate(s).kind == GateKind::Not => {
                        let inner = netlist.gate(s).fanin[0];
                        let legs = if inject::opt_mux_bug() { vec![inner, a, b] } else { vec![inner, b, a] };
                        netlist.gate_mut(id).fanin = legs;
                        changed = true;
                        None
                    }
                    None => match (consts[1], consts[2]) {
                        (Some(false), Some(true)) => Some(Replacement::Gate(s)),
                        (Some(true), Some(false)) => Some(Replacement::Invert(s)),
                        _ => None,
                    },
                }
            }
            _ => None,
        };
        if let Some(r) = simplification {
            replace_with(netlist, r, &mut alias);
            changed = true;
        }
    }

    if changed {
        // Rewrite all fanins and outputs through the alias map.
        for id in netlist.ids() {
            let fanin: Vec<GateId> = netlist.gate(id).fanin.iter().map(|&f| resolve(&alias, f)).collect();
            netlist.gate_mut(id).fanin = fanin;
        }
        for i in 0..netlist.outputs().len() {
            let drv = netlist.outputs()[i].1;
            let r = resolve(&alias, drv);
            if r != drv {
                netlist.replace_output_driver(i, r);
            }
        }
        // Port groups track driver gates too and must follow the aliases,
        // or sweep_dead would see dangling ids.
        let mut ports = std::mem::take(&mut netlist.output_ports);
        for p in &mut ports {
            for b in &mut p.bits {
                *b = resolve(&alias, *b);
            }
        }
        netlist.output_ports = ports;
    }
    changed
}

/// Structural-hashing pass merging identical gates. Returns `true` if
/// anything changed.
fn strash_pass(netlist: &mut Netlist) -> bool {
    let order = match netlist.topo_order() {
        Ok(o) => o,
        Err(_) => return false,
    };
    let mut alias: Vec<GateId> = netlist.ids().collect();
    let resolve = |alias: &[GateId], mut g: GateId| -> GateId {
        while alias[g.index()] != g {
            g = alias[g.index()];
        }
        g
    };
    let mut seen: HashMap<(GateKind, Vec<GateId>), GateId> = HashMap::new();
    let mut changed = false;
    for id in order {
        let kind = netlist.gate(id).kind;
        if !kind.is_logic() {
            continue;
        }
        let mut fanin: Vec<GateId> = netlist.gate(id).fanin.iter().map(|&f| resolve(&alias, f)).collect();
        // Canonicalize commutative operands.
        if matches!(kind, GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor | GateKind::Xor | GateKind::Xnor)
        {
            fanin.sort();
        }
        match seen.get(&(kind, fanin.clone())) {
            Some(&prev) if prev != id => {
                alias[id.index()] = prev;
                changed = true;
            }
            _ => {
                seen.insert((kind, fanin), id);
            }
        }
    }
    if changed {
        for id in netlist.ids() {
            let fanin: Vec<GateId> = netlist.gate(id).fanin.iter().map(|&f| resolve(&alias, f)).collect();
            *netlist.gate_mut(id) = Gate::new(netlist.gate(id).kind, fanin);
        }
        for i in 0..netlist.outputs().len() {
            let drv = netlist.outputs()[i].1;
            let r = resolve(&alias, drv);
            if r != drv {
                netlist.replace_output_driver(i, r);
            }
        }
        // Port groups track driver gates too and must follow the aliases,
        // or sweep_dead would see dangling ids.
        let mut ports = std::mem::take(&mut netlist.output_ports);
        for p in &mut ports {
            for b in &mut p.bits {
                *b = resolve(&alias, *b);
            }
        }
        netlist.output_ports = ports;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_netlist::NetSim;

    #[test]
    fn constant_propagation_collapses_cone() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let zero = n.add_gate(GateKind::Const0, vec![]);
        let and = n.add_gate(GateKind::And, vec![a, zero]);
        let or = n.add_gate(GateKind::Or, vec![and, a]);
        n.add_output("y", or);
        optimize(&mut n);
        assert_eq!(n.logic_count(), 0, "y == a");
        assert_eq!(n.outputs()[0].1, a);
    }

    #[test]
    fn key_gate_with_correct_constant_vanishes() {
        // XOR(x, 0) -> x : the SWEEP/SCOPE signal.
        let mut n = Netlist::new("t");
        let x = n.add_input("x");
        let k = n.add_input("k");
        let g = n.add_gate(GateKind::Xor, vec![x, k]);
        n.add_output("y", g);
        let mut correct = n.clone();
        correct.convert_input_to_const(correct.find_input("k").unwrap(), false);
        optimize(&mut correct);
        assert_eq!(correct.logic_count(), 0, "correct key removes the key gate");
        let mut wrong = n.clone();
        wrong.convert_input_to_const(wrong.find_input("k").unwrap(), true);
        optimize(&mut wrong);
        assert_eq!(wrong.logic_count(), 1, "wrong key leaves an inverter");
    }

    #[test]
    fn strash_merges_duplicate_cones() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(GateKind::And, vec![a, b]);
        let g2 = n.add_gate(GateKind::And, vec![b, a]);
        let x = n.add_gate(GateKind::Xor, vec![g1, g2]);
        n.add_output("y", x);
        optimize(&mut n);
        // xor(g,g) = 0 so everything folds away.
        assert_eq!(n.logic_count(), 0);
    }

    #[test]
    fn optimization_preserves_function() {
        // Random-ish circuit; compare sim before/after on several patterns.
        let mut n = Netlist::new("t");
        let ins: Vec<GateId> = (0..6).map(|i| n.add_input(format!("i{i}"))).collect();
        let one = n.add_gate(GateKind::Const1, vec![]);
        let g1 = n.add_gate(GateKind::Nand, vec![ins[0], ins[1]]);
        let g2 = n.add_gate(GateKind::Xor, vec![g1, ins[2]]);
        let g3 = n.add_gate(GateKind::And, vec![g2, one]);
        let g4 = n.add_gate(GateKind::Mux, vec![ins[3], g3, g1]);
        let g5 = n.add_gate(GateKind::Nor, vec![g4, ins[4]]);
        let g6 = n.add_gate(GateKind::Xnor, vec![g5, ins[5]]);
        let g7 = n.add_gate(GateKind::Not, vec![g6]);
        let g8 = n.add_gate(GateKind::Not, vec![g7]);
        n.add_output("y", g8);

        let reference = n.clone();
        optimize(&mut n);
        assert!(n.len() < reference.len());

        let mut simr = NetSim::new(&reference).unwrap();
        let mut simo = NetSim::new(&n).unwrap();
        for pattern in 0..64u64 {
            let bits: Vec<bool> = (0..6).map(|i| pattern >> i & 1 == 1).collect();
            simr.set_inputs_bool(&bits);
            simo.set_inputs_bool(&bits);
            simr.eval_comb();
            simo.eval_comb();
            assert_eq!(simr.outputs()[0] & 1, simo.outputs()[0] & 1, "pattern {pattern}");
        }
    }

    #[test]
    fn dff_cones_survive() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let ff = n.add_gate(GateKind::Dff { init: false }, vec![a]);
        let x = n.add_gate(GateKind::Xor, vec![ff, a]);
        n.add_output("y", x);
        optimize(&mut n);
        assert_eq!(n.dffs().len(), 1);
        assert_eq!(n.logic_count(), 1);
    }

    #[test]
    fn expired_token_stops_before_first_pass() {
        use rtlock_governor::{CancelToken, Deadline};
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let zero = n.add_gate(GateKind::Const0, vec![]);
        let and = n.add_gate(GateKind::And, vec![a, zero]);
        n.add_output("y", and);
        let snapshot = n.clone();
        let token = CancelToken::with_deadline(Deadline::after(std::time::Duration::ZERO));
        let stats = optimize_bounded(&mut n, &token);
        assert!(stats.interrupted);
        assert_eq!(stats.iterations, 0);
        assert_eq!(n, snapshot, "interrupted run leaves the netlist intact");
        // The unlimited run still converges afterwards.
        let stats = optimize_bounded(&mut n, &CancelToken::unlimited());
        assert!(!stats.interrupted);
        assert_eq!(n.logic_count(), 0);
    }

    #[test]
    fn cancelled_token_stops_immediately() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let g = n.add_gate(GateKind::Not, vec![a]);
        n.add_output("y", g);
        let token = CancelToken::unlimited();
        token.cancel();
        assert!(optimize_bounded(&mut n, &token).interrupted);
    }

    #[test]
    fn idempotent() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::Nand, vec![a, b]);
        n.add_output("y", g);
        optimize(&mut n);
        let snapshot = n.clone();
        let stats = optimize(&mut n);
        assert_eq!(n, snapshot);
        assert_eq!(stats.gates_removed, 0);
    }
}
