//! Scan-chain infrastructure (DFT).
//!
//! Models the paper's hybrid scan flow: RTLock inserts a *partial* scan
//! chain at RTL (step 7), the DFT synthesis tool scans the remaining
//! registers (step 3 of Fig. 2), the two chains are *stitched*, and the
//! full chain is *re-ordered* to recover PPA (Section III-C).
//!
//! Scan cells are tracked as netlist metadata (`scan_chain`); the PPA model
//! charges the scan-mux premium per scanned flop. The *scan view* — the
//! combinational circuit an attacker or ATPG tool sees through scan access —
//! is materialized by [`scan_view`].

use rtlock_netlist::{GateId, Netlist};

/// Adds the given flip-flops to the scan chain (in the given order).
///
/// # Panics
///
/// Panics if a gate is not a flip-flop or is already scanned.
pub fn insert_scan(netlist: &mut Netlist, flops: &[GateId]) {
    for &f in flops {
        assert!(netlist.gate(f).kind.is_dff(), "{f} is not a flip-flop");
        assert!(!netlist.scan_chain.contains(&f), "{f} already in the scan chain");
        netlist.scan_chain.push(f);
    }
}

/// Scans every flip-flop not yet in the chain (what the DFT synthesis tool
/// does for the registers RTLock left unscanned). Returns how many flops
/// were added.
pub fn insert_full_scan(netlist: &mut Netlist) -> usize {
    let missing: Vec<GateId> =
        netlist.dffs().into_iter().filter(|f| !netlist.scan_chain.contains(f)).collect();
    let n = missing.len();
    insert_scan(netlist, &missing);
    n
}

/// Stitches: simply concatenates `extra` after the existing chain,
/// matching the paper's "connecting chains to build a longer chain".
///
/// # Panics
///
/// Panics if a gate is not a flip-flop or is already scanned.
pub fn stitch(netlist: &mut Netlist, extra: &[GateId]) {
    insert_scan(netlist, extra);
}

/// Re-orders the full chain by gate id — a proxy for placement-aware
/// reordering by the commercial DFT compiler, which reduces routing
/// overhead of the hybrid manual+automatic chain.
pub fn reorder(netlist: &mut Netlist) {
    netlist.scan_chain.sort();
}

/// The combinational circuit seen through scan access.
#[derive(Debug, Clone)]
pub struct ScanView {
    /// The cut netlist: scanned flops are pseudo-PIs, their D pins
    /// pseudo-POs. Unscanned flops remain sequential.
    pub netlist: Netlist,
    /// Scanned flop ids (now [`rtlock_netlist::GateKind::Input`] gates) in
    /// chain order; these double as the pseudo-PI gate ids.
    pub pseudo_inputs: Vec<GateId>,
    /// Output indices (into `netlist.outputs()`) of the pseudo-POs, in
    /// chain order.
    pub pseudo_output_indices: Vec<usize>,
}

/// Builds the scan view of a netlist.
///
/// Every flop in `netlist.scan_chain` is cut: its output becomes a fresh
/// primary input `scan_ppi_<i>`, and its D cone is exposed as an output
/// `scan_ppo_<i>`. Gate ids are preserved (no sweep), so analyses can map
/// between the view and the original netlist.
pub fn scan_view(netlist: &Netlist) -> ScanView {
    let mut view = netlist.clone();
    let chain = view.scan_chain.clone();
    let mut pseudo_output_indices = Vec::with_capacity(chain.len());
    for (i, &ff) in chain.iter().enumerate() {
        // Use the flop's register name so views of a locked and an original
        // netlist can be aligned by name.
        let base = netlist.gate_name(ff).map(str::to_owned).unwrap_or_else(|| format!("ff{i}"));
        let d = view.cut_dff(ff, format!("ppi_{base}"));
        pseudo_output_indices.push(view.outputs().len());
        view.add_output(format!("ppo_{base}"), d);
    }
    view.scan_chain.clear();
    ScanView { netlist: view, pseudo_inputs: chain, pseudo_output_indices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_netlist::{GateKind, NetSim, Netlist};

    fn two_flop_pipeline() -> Netlist {
        let mut n = Netlist::new("pipe");
        let a = n.add_input("a");
        let f1 = n.add_gate(GateKind::Dff { init: false }, vec![a]);
        let inv = n.add_gate(GateKind::Not, vec![f1]);
        let f2 = n.add_gate(GateKind::Dff { init: false }, vec![inv]);
        n.add_output("y", f2);
        n
    }

    #[test]
    fn partial_then_full_scan() {
        let mut n = two_flop_pipeline();
        let dffs = n.dffs();
        insert_scan(&mut n, &dffs[..1]);
        assert_eq!(n.scan_chain.len(), 1);
        let added = insert_full_scan(&mut n);
        assert_eq!(added, 1);
        assert_eq!(n.scan_chain.len(), 2);
    }

    #[test]
    fn reorder_sorts_by_id() {
        let mut n = two_flop_pipeline();
        let dffs = n.dffs();
        insert_scan(&mut n, &[dffs[1], dffs[0]]);
        reorder(&mut n);
        assert_eq!(n.scan_chain, dffs);
    }

    #[test]
    fn scan_view_cuts_flops() {
        let mut n = two_flop_pipeline();
        insert_full_scan(&mut n);
        let view = scan_view(&n);
        assert_eq!(view.netlist.dffs().len(), 0, "all flops cut");
        assert_eq!(view.pseudo_inputs.len(), 2);
        // The view is combinational: loading ppi values yields D values at
        // the ppos after one eval.
        let mut sim = NetSim::new(&view.netlist).unwrap();
        sim.set_input(view.netlist.find_input("a").unwrap(), u64::MAX);
        sim.set_input(view.pseudo_inputs[0], 0);
        sim.set_input(view.pseudo_inputs[1], 0);
        sim.eval_comb();
        let outs = sim.outputs();
        // ppo_0 = D of f1 = a = 1 ; ppo_1 = D of f2 = !f1 = 1.
        assert_eq!(outs[view.pseudo_output_indices[0]], u64::MAX);
        assert_eq!(outs[view.pseudo_output_indices[1]], u64::MAX);
    }

    #[test]
    fn partial_scan_view_keeps_unscanned_flops() {
        let mut n = two_flop_pipeline();
        let dffs = n.dffs();
        insert_scan(&mut n, &dffs[..1]);
        let view = scan_view(&n);
        assert_eq!(view.netlist.dffs().len(), 1, "second flop still sequential");
    }

    #[test]
    #[should_panic(expected = "already in the scan chain")]
    fn double_scan_rejected() {
        let mut n = two_flop_pipeline();
        let dffs = n.dffs();
        insert_scan(&mut n, &dffs);
        insert_scan(&mut n, &dffs[..1]);
    }
}
