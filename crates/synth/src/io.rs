//! Port-level I/O helpers bridging RTL values ([`Bv`]) and bit-blasted
//! netlists.

use rtlock_netlist::{NetSim, Netlist};
use rtlock_rtl::Bv;

/// Applies an RTL-level value to a named multi-bit input port (all lanes).
///
/// # Panics
///
/// Panics if the port does not exist or the width mismatches.
pub fn set_port(sim: &mut NetSim<'_>, name: &str, value: &Bv) {
    let port = sim
        .netlist()
        .input_ports
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("no input port `{name}`"));
    assert_eq!(port.bits.len(), value.width(), "width mismatch on port `{name}`");
    let bits = port.bits.clone();
    for (i, g) in bits.into_iter().enumerate() {
        sim.set_input(g, if value.bit(i) { u64::MAX } else { 0 });
    }
}

/// Reads an RTL-level value from a named multi-bit output port (lane 0).
///
/// # Panics
///
/// Panics if the port does not exist.
pub fn get_port(sim: &NetSim<'_>, name: &str) -> Bv {
    let port = sim
        .netlist()
        .output_ports
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("no output port `{name}`"));
    let mut v = Bv::zeros(port.bits.len());
    for (i, &g) in port.bits.iter().enumerate() {
        v.set(i, sim.value(g) & 1 == 1);
    }
    v
}

/// Names of all data input ports of a netlist (handy for random testing).
pub fn input_port_names(netlist: &Netlist) -> Vec<String> {
    netlist.input_ports.iter().map(|p| p.name.clone()).collect()
}

/// Names of all output ports of a netlist.
pub fn output_port_names(netlist: &Netlist) -> Vec<String> {
    netlist.output_ports.iter().map(|p| p.name.clone()).collect()
}
