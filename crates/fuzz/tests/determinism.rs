//! Determinism contract: the fuzzer is a pure function of its seed.
//!
//! Corpus file names embed seeds, CI smoke runs pin a seed, and triage
//! depends on replaying exactly what a campaign saw — so the same seed
//! must yield byte-identical Verilog and identical verdicts, run to run.

use rtlock_fuzz::gen::{generate, render, GenConfig};
use rtlock_fuzz::oracle::{check_module, OracleConfig};
use rtlock_fuzz::{run_fuzz, FuzzConfig};
use rtlock_governor::CancelToken;

#[test]
fn same_seed_renders_byte_identical_verilog() {
    let cfg = GenConfig::default();
    for seed in [0u64, 1, 2, 42, 0xDEAD_BEEF, u64::MAX] {
        let a = render(&generate(seed, &cfg));
        let b = render(&generate(seed, &cfg));
        assert_eq!(a, b, "seed {seed} rendered differently across runs");
    }
}

#[test]
fn same_seed_yields_identical_verdicts() {
    let gen_cfg = GenConfig::default();
    let oracle_cfg = OracleConfig::default();
    for seed in 0..40u64 {
        let m = generate(seed, &gen_cfg);
        let first = check_module(&m, seed, &oracle_cfg);
        let second = check_module(&m, seed, &oracle_cfg);
        assert_eq!(first, second, "seed {seed} verdict changed between runs");
    }
}

#[test]
fn same_campaign_reports_identical_results() {
    let cfg = FuzzConfig { seed: 9, iters: 30, ..FuzzConfig::default() };
    let a = run_fuzz(&cfg, &CancelToken::unlimited());
    let b = run_fuzz(&cfg, &CancelToken::unlimited());
    assert_eq!(a.executed, b.executed);
    assert_eq!(a.incomplete, b.incomplete);
    assert_eq!(a.divergences.len(), b.divergences.len());
    for (x, y) in a.divergences.iter().zip(&b.divergences) {
        assert_eq!(x.seed, y.seed);
        assert_eq!(x.layer, y.layer);
        assert_eq!(x.shrunk_source, y.shrunk_source);
    }
}

#[test]
fn distinct_seeds_explore_distinct_modules() {
    let cfg = GenConfig::default();
    let mut sources = std::collections::HashSet::new();
    for seed in 0..50u64 {
        sources.insert(render(&generate(seed, &cfg)));
    }
    assert!(
        sources.len() >= 49,
        "expected near-total seed diversity, got {} unique of 50",
        sources.len()
    );
}
