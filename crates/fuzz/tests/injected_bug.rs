//! End-to-end self-test of the harness: arm the flag-gated optimizer
//! miscompile, run a short campaign, and require that the campaign (a)
//! catches it and (b) shrinks at least one reproducer to a tiny module.
//! This is the "does the smoke detector detect smoke" test — a fuzzer
//! that only ever reports green is indistinguishable from one that checks
//! nothing.
//!
//! The injection flag is process-global, so this whole file runs as one
//! serialized test body.

use rtlock_fuzz::oracle::{check_source, Layer, OracleConfig, Verdict};
use rtlock_fuzz::{run_fuzz, FuzzConfig};
use rtlock_governor::CancelToken;
use rtlock_synth::opt::inject;

#[test]
fn armed_optimizer_bug_is_caught_and_shrunk_small() {
    // Locking layer off: the bug lives in the optimizer, and the locked
    // layer re-runs the whole flow per iteration for no extra signal here.
    let cfg = FuzzConfig {
        seed: 1,
        iters: 60,
        oracle: OracleConfig { check_locked: false, ..OracleConfig::default() },
        ..FuzzConfig::default()
    };

    // Sanity: disarmed, the same campaign is clean.
    assert!(!inject::opt_mux_bug(), "flag must start disarmed");
    let clean = run_fuzz(&cfg, &CancelToken::unlimited());
    assert_eq!(
        clean.divergences.len(),
        0,
        "campaign must be clean while the bug is disarmed: {:?}",
        clean.divergences.iter().map(|d| (d.seed, d.layer)).collect::<Vec<_>>()
    );

    inject::set_opt_mux_bug(true);
    let report = run_fuzz(&cfg, &CancelToken::unlimited());
    inject::set_opt_mux_bug(false);

    assert!(
        !report.divergences.is_empty(),
        "armed miscompile must be caught within {} iterations",
        cfg.iters
    );
    for d in &report.divergences {
        assert!(
            matches!(d.layer, Layer::OptSim | Layer::ScanSim | Layer::Formal),
            "an optimizer bug must surface at or after the optimizer, got {} (seed {})",
            d.layer,
            d.seed
        );
    }
    let smallest = report.divergences.iter().map(|d| d.shrunk_lines).min().expect("non-empty");
    assert!(
        smallest <= 20,
        "at least one reproducer must shrink to <= 20 lines, best was {smallest}"
    );

    // Every shrunk reproducer must still reproduce when replayed through
    // the oracle from source — that is what makes the corpus useful.
    inject::set_opt_mux_bug(true);
    let mut replayed = 0;
    for d in &report.divergences {
        let v = check_source(&d.shrunk_source, d.seed, &cfg.oracle);
        if matches!(v, Verdict::Diverged { .. }) {
            replayed += 1;
        }
    }
    inject::set_opt_mux_bug(false);
    assert_eq!(
        replayed,
        report.divergences.len(),
        "all shrunk reproducers must replay from source"
    );
}
