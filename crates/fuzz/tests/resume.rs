//! Checkpoint/resume acceptance for the fuzzing campaign: a journaled
//! run interrupted after any prefix of its chunk completions resumes to
//! a report byte-identical to an uninterrupted run — divergence text
//! included — at any job count.
//!
//! The optimizer-miscompile injection flag is process-global, so this
//! whole file runs as its own test binary (like `injected_bug.rs`).

use rtlock::journal::CampaignJournal;
use rtlock_fuzz::oracle::OracleConfig;
use rtlock_fuzz::{run_fuzz, run_fuzz_resumable, FuzzConfig, FuzzReport};
use rtlock_governor::CancelToken;
use rtlock_synth::opt::inject;
use std::path::{Path, PathBuf};

type Digest = (u64, u64, bool, Vec<(u64, String, String, String)>);

fn digest(r: &FuzzReport) -> Digest {
    (
        r.executed,
        r.incomplete,
        r.cancelled,
        r.divergences
            .iter()
            .map(|d| (d.seed, d.layer.to_string(), d.detail.clone(), d.shrunk_source.clone()))
            .collect(),
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtlock_fuzz_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_journaled(cfg: &FuzzConfig, path: &Path, jobs: usize) -> FuzzReport {
    let (mut journal, recovery) = CampaignJournal::open(path).expect("open journal");
    run_fuzz_resumable(
        cfg,
        &rtlock_exec::Executor::new(jobs),
        &CancelToken::unlimited(),
        &mut journal,
        &recovery.events,
    )
}

#[test]
fn resumed_campaign_is_byte_identical_at_any_prefix() {
    // Armed miscompile so the journal carries real divergences (detail +
    // shrunk source) through the replay path, not just counters.
    let cfg = FuzzConfig {
        seed: 1,
        iters: 40,
        oracle: OracleConfig { check_locked: false, ..OracleConfig::default() },
        ..FuzzConfig::default()
    };
    inject::set_opt_mux_bug(true);
    let outcome = std::panic::catch_unwind(|| {
        let baseline = run_fuzz(&cfg, &CancelToken::unlimited());
        assert!(
            !baseline.divergences.is_empty(),
            "armed bug must diverge for the replay path to be exercised"
        );

        let dir = temp_dir("prefix");
        let full_path = dir.join("full.journal");
        let full = run_journaled(&cfg, &full_path, 2);
        assert_eq!(digest(&full), digest(&baseline), "fresh journaled run");

        // Replay from every interruption point: a journal holding the
        // first k events is exactly what a kill after the k-th append
        // leaves behind (the store heals any torn tail first).
        let (_, recovery) = CampaignJournal::open(&full_path).expect("reopen");
        let events = recovery.events;
        assert!(!events.is_empty());
        for k in 0..=events.len() {
            let path = dir.join(format!("prefix{k}.journal"));
            {
                let (mut journal, _) = CampaignJournal::open(&path).expect("open prefix");
                for event in &events[..k] {
                    journal.append(event).expect("seed prefix");
                }
            }
            for jobs in [1, 3] {
                let resumed = run_journaled(&cfg, &path, jobs);
                assert_eq!(
                    digest(&resumed),
                    digest(&baseline),
                    "prefix {k}/{} jobs {jobs}",
                    events.len()
                );
            }
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    });
    inject::set_opt_mux_bug(false);
    if let Err(p) = outcome {
        std::panic::resume_unwind(p);
    }
}

#[test]
fn fully_replayed_campaign_executes_nothing_new() {
    let cfg = FuzzConfig { seed: 5, iters: 24, ..FuzzConfig::default() };
    let dir = temp_dir("noop");
    let path = dir.join("fuzz.journal");
    let first = run_journaled(&cfg, &path, 2);

    let (mut journal, recovery) = CampaignJournal::open(&path).expect("reopen");
    let resumed = run_fuzz_resumable(
        &cfg,
        &rtlock_exec::Executor::new(2),
        &CancelToken::unlimited(),
        &mut journal,
        &recovery.events,
    );
    assert_eq!(digest(&resumed), digest(&first));
    assert_eq!(journal.appended(), 0, "a fully replayed campaign appends nothing");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
