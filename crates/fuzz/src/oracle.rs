//! The cross-layer differential oracle.
//!
//! One module, five executable layers, one reference. The RTL interpreter
//! is the semantic ground truth; every later representation of the same
//! design must agree with it on shared stimulus:
//!
//! 1. RTL simulation (reference),
//! 2. elaborated (pre-optimization) netlist simulation,
//! 3. optimized netlist simulation,
//! 4. scan-inserted netlist, emulated sequentially through its scan view,
//! 5. locked design co-simulated under the correct key.
//!
//! On top of the simulations, a SAT miter formally checks the pre- vs
//! post-optimization netlists over all inputs and states — simulation
//! catches deep sequential divergence cheaply, the miter catches
//! single-minterm miscompiles stimulus would likely miss.

use crate::gen::GenModule;
use crate::rng::FuzzRng;
use rtlock::candidates::{enumerate, EnumConfig};
use rtlock::transforms::{apply_all, KeyAllocator};
use rtlock::verify::try_cosim_bounded;
use rtlock_governor::CancelToken;
use rtlock_netlist::{CnfBuilder, NetSim, Netlist};
use rtlock_rtl::bv::Bv;
use rtlock_rtl::sim::Simulator;
use rtlock_rtl::{Dir, Module, ProcessKind};
use rtlock_sat::{Budget, SolveResult, Solver};
use rtlock_synth::{elaborate, optimize, scan, scan_view};

/// The pipeline layer a divergence was observed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Parse or elaboration rejected the module (or RTL sim could not
    /// settle) — the generator's well-formedness contract broke.
    Frontend,
    /// Elaborated netlist simulation disagreed with RTL simulation.
    ElabSim,
    /// Optimized netlist simulation disagreed with RTL simulation.
    OptSim,
    /// Scan-view sequential emulation disagreed with RTL simulation.
    ScanSim,
    /// The dataflow analysis (`rtlock-dataflow` fixpoints) panicked, or
    /// its constant proofs contradict each other across the pre-/post-
    /// optimization netlists or the simulated reference trace.
    Analysis,
    /// Locked design under the correct key disagreed with the original.
    Locked,
    /// SAT miter found a pre-/post-optimization counterexample.
    Formal,
    /// A cache-armed rerun (elaborate/optimize/SCOAP/CNF through a fresh
    /// artifact store, once cold and once warm) produced a different
    /// artifact than the direct computation — a cache correctness bug.
    CacheDiff,
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Layer {
    /// The stable wire/file name of the layer (used in corpus file names
    /// and campaign journal events).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Frontend => "frontend",
            Layer::ElabSim => "elab-sim",
            Layer::OptSim => "opt-sim",
            Layer::ScanSim => "scan-sim",
            Layer::Analysis => "analysis",
            Layer::Locked => "locked",
            Layer::Formal => "formal",
            Layer::CacheDiff => "cache-diff",
        }
    }

    /// Inverse of [`Layer::name`]; `None` for unknown names so a journal
    /// written by a newer schema degrades instead of panicking.
    pub fn from_name(name: &str) -> Option<Layer> {
        [
            Layer::Frontend,
            Layer::ElabSim,
            Layer::OptSim,
            Layer::ScanSim,
            Layer::Analysis,
            Layer::Locked,
            Layer::Formal,
            Layer::CacheDiff,
        ]
        .into_iter()
        .find(|l| l.name() == name)
    }
}

/// Oracle result for one module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every enabled layer agreed with the reference.
    Pass,
    /// A layer could not finish inside its budget (SAT `Unknown`); not a
    /// divergence, but not a clean pass either.
    Incomplete(String),
    /// Two layers disagreed.
    Diverged {
        /// Layer that disagreed.
        layer: Layer,
        /// Human-readable description (cycle/output of first mismatch).
        detail: String,
    },
}

/// Oracle settings.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Clock cycles of shared random stimulus for the simulation layers.
    pub cycles: usize,
    /// Cycles for the locked-design co-simulation.
    pub lock_cycles: usize,
    /// Run the locking layer (enumerate + lock + correct-key cosim).
    pub check_locked: bool,
    /// Run the dataflow analysis layer (fixpoints on the pre- and
    /// post-optimization netlists, cross-checked for contradictions).
    pub check_analysis: bool,
    /// Run the SAT miter between pre- and post-optimization netlists.
    pub check_formal: bool,
    /// SAT conflict budget for the miter.
    pub formal_conflicts: u64,
    /// Run the cache differential layer: elaborate/optimize/SCOAP/CNF
    /// through a fresh artifact store, once cold (all misses) and once
    /// warm (all hits), demanding both passes reproduce the direct
    /// computation exactly.
    pub check_cache: bool,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            cycles: 12,
            lock_cycles: 16,
            check_locked: true,
            check_analysis: true,
            check_formal: true,
            formal_conflicts: 200_000,
            check_cache: true,
        }
    }
}

/// Checks a generated module: renders it and runs [`check_source`].
pub fn check_module(module: &GenModule, seed: u64, cfg: &OracleConfig) -> Verdict {
    check_source(&crate::gen::render(module), seed, cfg)
}

/// Checks Verilog source text through all enabled layers.
///
/// Works for any module in the supported subset (hand-written corpus
/// entries included), not just generator output: clocks and resets are
/// discovered from the parsed process list exactly as the flow's own
/// co-simulation does.
pub fn check_source(source: &str, seed: u64, cfg: &OracleConfig) -> Verdict {
    let module = match rtlock_rtl::parse(source) {
        Ok(m) => m,
        Err(e) => {
            return Verdict::Diverged { layer: Layer::Frontend, detail: format!("parse: {e}") }
        }
    };
    check_parsed(&module, seed, cfg)
}

/// Port-level stimulus/observation plan derived from a parsed module.
struct Ports {
    /// Non-clock inputs: `(name, width, reset_active_high)`.
    inputs: Vec<(String, usize, Option<bool>)>,
    /// Output ports: `(name, width)`.
    outputs: Vec<(String, usize)>,
}

fn ports_of(module: &Module) -> Ports {
    let clocks: Vec<String> = module
        .procs
        .iter()
        .filter_map(|p| match &p.kind {
            ProcessKind::Seq { clock, .. } => Some(module.net(*clock).name.clone()),
            _ => None,
        })
        .collect();
    let resets: Vec<(String, bool)> = module
        .procs
        .iter()
        .filter_map(|p| match &p.kind {
            ProcessKind::Seq { reset: Some(r), .. } => {
                Some((module.net(r.net).name.clone(), r.active_high))
            }
            _ => None,
        })
        .collect();
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    for &p in &module.ports {
        let net = module.net(p);
        match net.dir {
            Some(Dir::Input) if !clocks.contains(&net.name) => {
                let reset = resets.iter().find(|(n, _)| *n == net.name).map(|&(_, ah)| ah);
                inputs.push((net.name.clone(), module.width(p), reset));
            }
            Some(Dir::Output) => outputs.push((net.name.clone(), module.width(p))),
            _ => {}
        }
    }
    Ports { inputs, outputs }
}

/// Per-cycle values for every non-clock input, reset ports held active for
/// the first two cycles (mirroring the flow's own co-simulation protocol).
fn make_stimulus(ports: &Ports, seed: u64, cycles: usize) -> Vec<Vec<u64>> {
    let mut rng = FuzzRng::derive(seed, 0x5717_4d55);
    (0..cycles)
        .map(|cycle| {
            ports
                .inputs
                .iter()
                .map(|&(_, width, reset)| match reset {
                    Some(active_high) => u64::from((cycle < 2) == active_high),
                    None => {
                        let mask =
                            if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
                        rng.next_u64() & mask
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs the RTL reference: per-cycle output-port samples.
fn run_rtl(
    module: &Module,
    ports: &Ports,
    stim: &[Vec<u64>],
) -> Result<Vec<Vec<u64>>, Verdict> {
    let mut sim = Simulator::new(module);
    let mut trace = Vec::with_capacity(stim.len());
    for cycle in stim {
        for ((name, width, _), &v) in ports.inputs.iter().zip(cycle) {
            sim.set_by_name(name, Bv::from_u64(*width, v));
        }
        sim.step().map_err(|e| Verdict::Diverged {
            layer: Layer::Frontend,
            detail: format!("rtl sim: {e}"),
        })?;
        trace.push(ports.outputs.iter().map(|(n, _)| sim.get_by_name(n).to_u64_lossy()).collect());
    }
    Ok(trace)
}

/// Bit-level name of bit `i` of a `width`-bit port, matching elaboration.
fn bit_name(name: &str, width: usize, i: usize) -> String {
    if width == 1 {
        name.to_owned()
    } else {
        format!("{name}[{i}]")
    }
}

/// Resolves every input bit of the RTL ports to its netlist input gate.
fn map_input_bits(
    netlist: &Netlist,
    ports: &Ports,
    layer: Layer,
) -> Result<Vec<Vec<rtlock_netlist::GateId>>, Verdict> {
    ports
        .inputs
        .iter()
        .map(|(name, width, _)| {
            (0..*width)
                .map(|i| {
                    let bn = bit_name(name, *width, i);
                    netlist.find_input(&bn).ok_or_else(|| Verdict::Diverged {
                        layer,
                        detail: format!("input bit `{bn}` missing from netlist"),
                    })
                })
                .collect()
        })
        .collect()
}

/// Resolves every output bit to its driving gate by name.
fn map_output_bits(
    netlist: &Netlist,
    ports: &Ports,
    layer: Layer,
) -> Result<Vec<Vec<rtlock_netlist::GateId>>, Verdict> {
    ports
        .outputs
        .iter()
        .map(|(name, width)| {
            (0..*width)
                .map(|i| {
                    let bn = bit_name(name, *width, i);
                    netlist
                        .outputs()
                        .iter()
                        .find(|(n, _)| *n == bn)
                        .map(|&(_, g)| g)
                        .ok_or_else(|| Verdict::Diverged {
                            layer,
                            detail: format!("output bit `{bn}` missing from netlist"),
                        })
                })
                .collect()
        })
        .collect()
}

fn read_outputs(sim: &NetSim<'_>, out_bits: &[Vec<rtlock_netlist::GateId>]) -> Vec<u64> {
    out_bits
        .iter()
        .map(|bits| {
            bits.iter().enumerate().fold(0u64, |acc, (i, &g)| acc | ((sim.value(g) & 1) << i))
        })
        .collect()
}

/// Simulates a (possibly sequential) netlist on the shared stimulus and
/// compares against the reference trace.
fn diff_netlist(
    netlist: &Netlist,
    ports: &Ports,
    stim: &[Vec<u64>],
    reference: &[Vec<u64>],
    layer: Layer,
) -> Result<(), Verdict> {
    let in_bits = map_input_bits(netlist, ports, layer)?;
    let out_bits = map_output_bits(netlist, ports, layer)?;
    let mut sim = NetSim::new(netlist).map_err(|e| Verdict::Diverged {
        layer,
        detail: format!("netlist cycle: {e:?}"),
    })?;
    for (cycle, (vals, want)) in stim.iter().zip(reference).enumerate() {
        for (bits, &v) in in_bits.iter().zip(vals) {
            for (i, &g) in bits.iter().enumerate() {
                sim.set_input(g, if (v >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
        }
        sim.step();
        let got = read_outputs(&sim, &out_bits);
        if let Some(d) = first_diff(cycle, ports, want, &got) {
            return Err(Verdict::Diverged { layer, detail: d });
        }
    }
    Ok(())
}

fn first_diff(cycle: usize, ports: &Ports, want: &[u64], got: &[u64]) -> Option<String> {
    ports.outputs.iter().zip(want.iter().zip(got)).find_map(|((name, _), (w, g))| {
        (w != g).then(|| format!("cycle {cycle}, output `{name}`: rtl={w:#x} layer={g:#x}"))
    })
}

/// Simulates the scan-inserted netlist *through its scan view*: scanned
/// flops are cut to pseudo-PI/PPO pairs, so sequential behavior must be
/// reconstructed by feeding each cycle's PPO values back into the PPIs.
/// This checks the view's cut/feedback bookkeeping, which plain
/// [`NetSim::step`] on the scanned netlist would not exercise.
fn diff_scan_view(
    scanned: &Netlist,
    ports: &Ports,
    stim: &[Vec<u64>],
    reference: &[Vec<u64>],
) -> Result<(), Verdict> {
    let view = scan_view(scanned);
    let layer = Layer::ScanSim;
    let in_bits = map_input_bits(&view.netlist, ports, layer)?;
    let out_bits = map_output_bits(&view.netlist, ports, layer)?;
    // The cut flop id doubles as the pseudo-PI id; PPO driver gates come
    // from the recorded output indices.
    let ppis = &view.pseudo_inputs;
    let ppo_gates: Vec<rtlock_netlist::GateId> =
        view.pseudo_output_indices.iter().map(|&i| view.netlist.outputs()[i].1).collect();
    let mut sim = NetSim::new(&view.netlist).map_err(|e| Verdict::Diverged {
        layer,
        detail: format!("scan view cycle: {e:?}"),
    })?;
    // NetSim starts all flops at 0; the view's state loop must match.
    let mut state = vec![0u64; ppis.len()];
    for (cycle, (vals, want)) in stim.iter().zip(reference).enumerate() {
        for (bits, &v) in in_bits.iter().zip(vals) {
            for (i, &g) in bits.iter().enumerate() {
                sim.set_input(g, if (v >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
        }
        for (&ppi, &s) in ppis.iter().zip(&state) {
            sim.set_input(ppi, s);
        }
        sim.eval_comb();
        let next: Vec<u64> = ppo_gates.iter().map(|&g| sim.value(g)).collect();
        // Clock edge: new state becomes visible to the outputs, matching
        // NetSim::step's post-edge re-evaluation.
        for (&ppi, &s) in ppis.iter().zip(&next) {
            sim.set_input(ppi, s);
        }
        sim.eval_comb();
        state = next;
        let got = read_outputs(&sim, &out_bits);
        if let Some(d) = first_diff(cycle, ports, want, &got) {
            return Err(Verdict::Diverged { layer, detail: d });
        }
    }
    Ok(())
}

/// Locks the module with every applicable candidate and co-simulates
/// against the original under the correct key. `Ok(None)` means the layer
/// was vacuous (no locking candidates in this module).
fn diff_locked(module: &Module, seed: u64, cfg: &OracleConfig) -> Result<Option<()>, Verdict> {
    let (cands, fsms) = enumerate(module, &EnumConfig::default());
    if cands.is_empty() {
        return Ok(None);
    }
    let mut locked = module.clone();
    let mut keys = KeyAllocator::new();
    let applied = apply_all(&mut locked, &cands, &fsms, &mut keys);
    if applied.is_empty() {
        return Ok(None);
    }
    let key = keys.correct_key().to_vec();
    let outcome = try_cosim_bounded(
        module,
        &locked,
        &key,
        cfg.lock_cycles,
        seed ^ 0x10cb_ed00,
        &CancelToken::unlimited(),
    )
    .map_err(|e| Verdict::Diverged { layer: Layer::Locked, detail: format!("cosim: {e}") })?;
    if outcome.mismatch_rate > 0.0 {
        return Err(Verdict::Diverged {
            layer: Layer::Locked,
            detail: format!(
                "correct-key mismatch rate {:.3} over {} cycles ({} candidates applied)",
                outcome.mismatch_rate,
                outcome.cycles_run,
                applied.len()
            ),
        });
    }
    Ok(Some(()))
}

/// Runs the `rtlock-dataflow` fixpoints on the pre- and post-optimization
/// netlists and cross-checks their verdicts. Three contracts:
///
/// 1. the analysis never panics on well-formed synthesis output;
/// 2. an output proven constant on *both* netlists must be the same
///    constant (optimization preserves functions, and constant proofs are
///    sound, so disagreement means one analysis or the optimizer lied);
/// 3. an output bit proven constant on the elaborated netlist must hold
///    that value on every cycle of the simulated reference trace (the
///    `ElabSim` layer already pinned the netlist to the RTL reference).
fn diff_analysis(
    pre: &Netlist,
    opt: &Netlist,
    ports: &Ports,
    reference: &[Vec<u64>],
) -> Result<(), Verdict> {
    let layer = Layer::Analysis;
    let run = |n: &Netlist, which: &str| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rtlock_dataflow::analyze_netlist(n)
        }))
        .map_err(|_| Verdict::Diverged {
            layer,
            detail: format!("dataflow analysis panicked on the {which} netlist"),
        })
    };
    let a_pre = run(pre, "elaborated")?;
    let a_opt = run(opt, "optimized")?;

    for (name, g_pre) in pre.outputs() {
        let pre_const = a_pre.value_of(*g_pre).constant();
        let opt_const = opt
            .outputs()
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|&(_, g)| a_opt.value_of(g).constant());
        if let (Some(x), Some(y)) = (pre_const, opt_const) {
            if x != y {
                return Err(Verdict::Diverged {
                    layer,
                    detail: format!(
                        "output `{name}` proven constant {x} pre-optimization but {y} post"
                    ),
                });
            }
        }
    }

    // Constant-proof vs simulation: locate each proven-constant output bit
    // in the reference trace (port-bit addressed) and demand every cycle
    // agrees.
    for (pi, (pname, width)) in ports.outputs.iter().enumerate() {
        for bit in 0..*width {
            let bn = bit_name(pname, *width, bit);
            let Some(&(_, g)) = pre.outputs().iter().find(|(n, _)| *n == bn) else {
                continue;
            };
            let Some(c) = a_pre.value_of(g).constant() else { continue };
            for (cycle, sample) in reference.iter().enumerate() {
                let got = sample[pi] >> bit & 1 == 1;
                if got != c {
                    return Err(Verdict::Diverged {
                        layer,
                        detail: format!(
                            "output `{bn}` proven constant {c} but reads {got} at cycle {cycle}"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}


/// The cache differential: pushes the module through the cached
/// elaborate → optimize → SCOAP → CNF pipeline against a fresh in-memory
/// artifact store, twice. The first pass is all misses (the cached layer's
/// compute path), the second all hits (the decode path). Both must
/// reproduce the directly computed `pre`/`opt` artifacts exactly — any
/// divergence is a cache correctness bug, reported (and later shrunk)
/// like every other layer's.
fn diff_cache(module: &Module, pre: &Netlist, opt: &Netlist) -> Result<(), Verdict> {
    let layer = Layer::CacheDiff;
    let store = rtlock_artifacts::ArtifactStore::in_memory();
    let token = CancelToken::unlimited();
    let direct_scoap = rtlock_netlist::scoap::analyze(opt);
    let mut direct_cnf = CnfBuilder::new();
    let in_vars: Vec<i32> = opt.inputs().iter().map(|_| direct_cnf.fresh_var()).collect();
    let state_vars: Vec<i32> = opt.dffs().iter().map(|_| direct_cnf.fresh_var()).collect();
    let direct_vars = direct_cnf.encode_comb(opt, &in_vars, &state_vars);

    for pass in ["cold", "warm"] {
        let fail = |what: &str| Verdict::Diverged {
            layer,
            detail: format!("cached {what} differs from the direct computation ({pass} pass)"),
        };
        let elab = rtlock_artifacts::cached_elaborate(Some(&store), module, &token).map_err(
            |e| Verdict::Diverged { layer, detail: format!("cached elaborate ({pass}): {e}") },
        )?;
        if elab != *pre {
            return Err(fail("elaborated netlist"));
        }
        let (cached_opt, _) = rtlock_artifacts::cached_optimize(Some(&store), &elab, &token);
        if cached_opt != *opt {
            return Err(fail("optimized netlist"));
        }
        if rtlock_artifacts::cached_scoap(Some(&store), &cached_opt, &token) != direct_scoap {
            return Err(fail("SCOAP profile"));
        }
        let mut cnf = CnfBuilder::new();
        let ins: Vec<i32> = opt.inputs().iter().map(|_| cnf.fresh_var()).collect();
        let states: Vec<i32> = opt.dffs().iter().map(|_| cnf.fresh_var()).collect();
        let vars = rtlock_artifacts::encode_comb_cached(
            Some(&store),
            &mut cnf,
            &cached_opt,
            &ins,
            &states,
            &token,
        );
        if vars != direct_vars
            || cnf.num_vars() != direct_cnf.num_vars()
            || cnf.clauses() != direct_cnf.clauses()
        {
            return Err(fail("CNF encoding"));
        }
    }
    Ok(())
}

/// SAT miter between the pre- and post-optimization netlists: inputs are
/// shared by name, flip-flops matched by register name get a shared state
/// variable, and the miter asserts some output bit *or some matched
/// next-state bit* differs. `Ok(true)` = proved equivalent.
fn miter_pre_post(pre: &Netlist, post: &Netlist, conflicts: u64) -> Result<bool, Verdict> {
    let layer = Layer::Formal;
    let mut cnf = CnfBuilder::new();

    let pre_in: Vec<i32> = pre.inputs().iter().map(|_| cnf.fresh_var()).collect();
    let post_in: Vec<i32> = post
        .inputs()
        .iter()
        .map(|&g| {
            let name = post.gate_name(g);
            match pre.inputs().iter().position(|&og| pre.gate_name(og) == name) {
                Some(i) => pre_in[i],
                None => cnf.fresh_var(),
            }
        })
        .collect();

    let pre_dffs = pre.dffs();
    let post_dffs = post.dffs();
    let pre_state: Vec<i32> = pre_dffs.iter().map(|_| cnf.fresh_var()).collect();
    // Matched flops (by register name) share the pre-side state variable;
    // flops the optimizer legitimately removed stay unmatched.
    let mut matched: Vec<(usize, usize)> = Vec::new();
    let post_state: Vec<i32> = post_dffs
        .iter()
        .enumerate()
        .map(|(j, &g)| {
            let name = post.gate_name(g);
            match pre_dffs.iter().position(|&og| pre.gate_name(og) == name && name.is_some()) {
                Some(i) => {
                    matched.push((i, j));
                    pre_state[i]
                }
                None => cnf.fresh_var(),
            }
        })
        .collect();

    let vars_pre = cnf.encode_comb(pre, &pre_in, &pre_state);
    let vars_post = cnf.encode_comb(post, &post_in, &post_state);

    let mut diffs = Vec::new();
    for (name, g_pre) in pre.outputs() {
        let Some(&(_, g_post)) = post.outputs().iter().find(|(n, _)| n == name) else {
            return Err(Verdict::Diverged {
                layer,
                detail: format!("output `{name}` missing after optimization"),
            });
        };
        diffs.push(cnf.xor_lit(vars_pre[g_pre.index()], vars_post[g_post.index()]));
    }
    for &(i, j) in &matched {
        let d_pre = vars_pre[pre.gate(pre_dffs[i]).fanin[0].index()];
        let d_post = vars_post[post.gate(post_dffs[j]).fanin[0].index()];
        diffs.push(cnf.xor_lit(d_pre, d_post));
    }
    if diffs.is_empty() {
        return Ok(true);
    }
    let any = cnf.or_lit(&diffs);
    cnf.assert_lit(any);

    let mut solver = Solver::new();
    solver.set_budget(Budget::conflicts(conflicts));
    solver.reserve_vars(cnf.num_vars());
    for c in cnf.clauses() {
        solver.add_dimacs_clause(c);
    }
    match solver.solve(&[]) {
        SolveResult::Unsat => Ok(true),
        SolveResult::Sat => Err(Verdict::Diverged {
            layer,
            detail: "miter SAT: pre-/post-optimization netlists differ on some input/state"
                .into(),
        }),
        SolveResult::Unknown => Err(Verdict::Incomplete("formal miter hit conflict budget".into())),
    }
}

/// Runs all enabled layers on a parsed module.
pub fn check_parsed(module: &Module, seed: u64, cfg: &OracleConfig) -> Verdict {
    let ports = ports_of(module);
    let stim = make_stimulus(&ports, seed, cfg.cycles);

    let reference = match run_rtl(module, &ports, &stim) {
        Ok(t) => t,
        Err(v) => return v,
    };

    let pre = match elaborate(module) {
        Ok(n) => n,
        Err(e) => {
            return Verdict::Diverged {
                layer: Layer::Frontend,
                detail: format!("elaborate: {e}"),
            }
        }
    };
    if let Err(v) = diff_netlist(&pre, &ports, &stim, &reference, Layer::ElabSim) {
        return v;
    }

    let mut opt = pre.clone();
    optimize(&mut opt);
    if let Err(v) = diff_netlist(&opt, &ports, &stim, &reference, Layer::OptSim) {
        return v;
    }

    let mut scanned = opt.clone();
    scan::insert_full_scan(&mut scanned);
    if let Err(v) = diff_scan_view(&scanned, &ports, &stim, &reference) {
        return v;
    }

    if cfg.check_analysis {
        if let Err(v) = diff_analysis(&pre, &opt, &ports, &reference) {
            return v;
        }
    }

    if cfg.check_cache {
        if let Err(v) = diff_cache(module, &pre, &opt) {
            return v;
        }
    }

    let mut incomplete = None;
    if cfg.check_formal {
        match miter_pre_post(&pre, &opt, cfg.formal_conflicts) {
            Ok(_) => {}
            Err(Verdict::Incomplete(msg)) => incomplete = Some(msg),
            Err(v) => return v,
        }
    }

    if cfg.check_locked {
        match diff_locked(module, seed, cfg) {
            Ok(_) => {}
            Err(v) => return v,
        }
    }

    match incomplete {
        Some(msg) => Verdict::Incomplete(msg),
        None => Verdict::Pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADDER: &str = "module t(input [3:0] a, input [3:0] b, output [3:0] y);\n\
        assign y = a + b;\nendmodule\n";

    const COUNTER: &str = "module c(input clk, input rst, input [3:0] d, output reg [3:0] q);\n\
        always @(posedge clk or posedge rst) begin\n\
          if (rst) q <= 4'd0; else q <= q + d;\n\
        end\nendmodule\n";

    #[test]
    fn clean_combinational_module_passes() {
        assert_eq!(check_source(ADDER, 3, &OracleConfig::default()), Verdict::Pass);
    }

    #[test]
    fn clean_sequential_module_passes() {
        assert_eq!(check_source(COUNTER, 5, &OracleConfig::default()), Verdict::Pass);
    }

    #[test]
    fn parse_error_is_a_frontend_divergence() {
        let v = check_source("module broken(; endmodule", 1, &OracleConfig::default());
        assert!(matches!(v, Verdict::Diverged { layer: Layer::Frontend, .. }), "{v:?}");
    }

    #[test]
    fn injected_optimizer_bug_is_caught() {
        // The miscompile mis-orders mux legs when absorbing an inverted
        // select, so a module built around `(!s) ? a : b` must trip the
        // optimized-netlist layers while the bug is armed.
        let src = "module m(input s, input [3:0] a, input [3:0] b, output [3:0] y);\n\
            assign y = (!s) ? (a ^ 4'd5) : (b + 4'd1);\nendmodule\n";
        assert_eq!(check_source(src, 7, &OracleConfig::default()), Verdict::Pass);
        rtlock_synth::opt::inject::set_opt_mux_bug(true);
        let v = check_source(src, 7, &OracleConfig::default());
        rtlock_synth::opt::inject::set_opt_mux_bug(false);
        match v {
            Verdict::Diverged { layer, .. } => {
                assert!(matches!(layer, Layer::OptSim | Layer::Formal), "layer {layer}");
            }
            other => panic!("bug not caught: {other:?}"),
        }
    }
    #[test]
    fn analysis_layer_name_roundtrips() {
        assert_eq!(Layer::from_name("analysis"), Some(Layer::Analysis));
        assert_eq!(Layer::Analysis.name(), "analysis");
        assert_eq!(Layer::from_name("cache-diff"), Some(Layer::CacheDiff));
        assert_eq!(Layer::CacheDiff.name(), "cache-diff");
    }

    #[test]
    fn cache_differential_layer_passes_on_clean_modules() {
        let module = rtlock_rtl::parse(COUNTER).expect("parses");
        let pre = elaborate(&module).expect("elaborates");
        let mut opt = pre.clone();
        optimize(&mut opt);
        assert!(diff_cache(&module, &pre, &opt).is_ok());
        // A wrong expectation must be reported as a CacheDiff divergence,
        // proving the comparison is not vacuous.
        match diff_cache(&module, &Netlist::new("other"), &opt) {
            Err(Verdict::Diverged { layer: Layer::CacheDiff, detail }) => {
                assert!(detail.contains("elaborated netlist"), "{detail}");
            }
            other => panic!("expected a cache divergence, got {other:?}"),
        }
    }

    #[test]
    fn constant_output_module_passes_the_analysis_layer() {
        // `a & ~a` folds to a proven-constant output; the analysis layer
        // must agree with both the optimizer and the reference trace.
        let src = "module k(input a, input b, output y, output z);\n\
            assign y = a & ~a;\n\
            assign z = a ^ b;\nendmodule\n";
        let cfg = OracleConfig { check_locked: false, ..OracleConfig::default() };
        assert_eq!(check_source(src, 9, &cfg), Verdict::Pass);
    }

    #[test]
    fn contradictory_constant_proofs_diverge() {
        use rtlock_netlist::{GateKind, Netlist};
        // Reference semantics: y == 0 always.
        let module = rtlock_rtl::parse(
            "module m(input a, output y);\n assign y = a & ~a;\nendmodule\n",
        )
        .expect("parses");
        let ports = ports_of(&module);
        let stim = make_stimulus(&ports, 3, 8);
        let reference = run_rtl(&module, &ports, &stim).expect("rtl sim");

        let tied = |kind: GateKind| {
            let mut n = Netlist::new("m");
            n.add_input("a");
            let c = n.add_gate(kind, vec![]);
            n.add_output("y", c);
            n
        };
        let zero = tied(GateKind::Const0);
        let one = tied(GateKind::Const1);

        // Pre proves y == 0, "optimized" proves y == 1: contradiction.
        match diff_analysis(&zero, &one, &ports, &reference) {
            Err(Verdict::Diverged { layer: Layer::Analysis, detail }) => {
                assert!(detail.contains("proven constant"), "{detail}");
            }
            other => panic!("expected an analysis divergence, got {other:?}"),
        }
        // Both sides agree on y == 1, but the reference trace reads 0:
        // the proof-vs-simulation cross-check must fire.
        match diff_analysis(&one, &one, &ports, &reference) {
            Err(Verdict::Diverged { layer: Layer::Analysis, detail }) => {
                assert!(detail.contains("at cycle"), "{detail}");
            }
            other => panic!("expected a trace contradiction, got {other:?}"),
        }
        // The honest pair is clean.
        assert!(diff_analysis(&zero, &zero, &ports, &reference).is_ok());
    }
}
