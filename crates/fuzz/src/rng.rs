//! Deterministic random-number generation for the fuzzer.
//!
//! The whole harness is seed-driven: the same seed must produce
//! byte-identical generated Verilog and identical oracle verdicts across
//! runs and platforms (the determinism suite enforces this). We therefore
//! use our own SplitMix64 instead of an external RNG whose stream could
//! change under us.

/// SplitMix64 generator. Cheap, full-period over the 64-bit state, and
/// stable by construction — the stream is part of the corpus contract
/// (corpus file names embed the seed that produced them).
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the tiny bounds the generator uses and, crucially, deterministic.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// `true` with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Uniformly picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Derives an independent stream for sub-task `salt` (iteration
    /// numbers, stimulus streams) without perturbing this stream.
    pub fn derive(seed: u64, salt: u64) -> FuzzRng {
        let mut r = FuzzRng::new(seed ^ salt.rotate_left(17).wrapping_mul(0xA24B_AED4_963E_E407));
        // One warm-up step decorrelates small seed/salt pairs.
        r.next_u64();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FuzzRng::new(42);
        let mut b = FuzzRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = FuzzRng::new(7);
        for bound in 1..20u64 {
            for _ in 0..50 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = FuzzRng::derive(1, 0);
        let mut b = FuzzRng::derive(1, 1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "derived streams must not collide");
    }
}
