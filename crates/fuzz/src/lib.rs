//! Cross-layer differential fuzzing and formal equivalence harness.
//!
//! See DESIGN.md §9 for the architecture. In short: a seed-driven
//! generator ([`gen`]) produces random RTL modules biased toward
//! optimizer-rewritten constructs; a five-layer oracle ([`oracle`]) runs
//! each module through RTL simulation, elaborated-netlist simulation,
//! optimized-netlist simulation, scan-view sequential emulation, and a
//! locked-with-correct-key cosimulation on shared random stimulus, plus a
//! SAT miter between the pre- and post-optimization netlists; a greedy
//! minimizer ([`shrink`]) reduces divergent modules; and [`corpus`]
//! persists shrunk divergences as regression inputs.
//!
//! ```
//! use rtlock_fuzz::{run_fuzz, FuzzConfig};
//! use rtlock_governor::CancelToken;
//!
//! let cfg = FuzzConfig { seed: 7, iters: 3, ..FuzzConfig::default() };
//! let report = run_fuzz(&cfg, &CancelToken::unlimited());
//! assert_eq!(report.executed, 3);
//! assert!(report.divergences.is_empty());
//! ```

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use gen::{generate, render, GenConfig, GenModule};
pub use oracle::{check_module, check_source, Layer, OracleConfig, Verdict};
pub use shrink::shrink;

use rtlock_governor::CancelToken;

/// Configuration for a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; iteration `i` uses a stream derived from `(seed, i)`.
    pub seed: u64,
    /// Number of modules to generate and check.
    pub iters: u64,
    /// Generator shape limits.
    pub gen: GenConfig,
    /// Oracle settings (cycles, stimulus vectors, layer toggles).
    pub oracle: OracleConfig,
    /// Directory to persist shrunk divergences into (`None` = don't).
    pub corpus_dir: Option<std::path::PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            iters: 100,
            gen: GenConfig::default(),
            oracle: OracleConfig::default(),
            corpus_dir: None,
        }
    }
}

/// One divergence found during a campaign.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Seed of the iteration that produced the module.
    pub seed: u64,
    /// Layer that disagreed with the RTL reference.
    pub layer: Layer,
    /// Human-readable detail from the oracle.
    pub detail: String,
    /// Shrunk module source.
    pub shrunk_source: String,
    /// Line count of the shrunk source.
    pub shrunk_lines: usize,
    /// Path the reproducer was persisted to, if a corpus dir was set.
    pub persisted: Option<std::path::PathBuf>,
}

/// Summary of a fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Iterations actually executed (may be short of the request when
    /// cancelled by budget).
    pub executed: u64,
    /// Iterations skipped because the oracle could not complete a layer
    /// (e.g. SAT budget exhausted) — counted, never silently dropped.
    pub incomplete: u64,
    /// Divergences found (post-shrink).
    pub divergences: Vec<Divergence>,
    /// Whether the campaign stopped early on cancellation.
    pub cancelled: bool,
}

/// Runs a fuzzing campaign. Checks `cancel` between iterations so a
/// governor wall-clock budget bounds the campaign.
pub fn run_fuzz(cfg: &FuzzConfig, cancel: &CancelToken) -> FuzzReport {
    run_range(cfg, 0..cfg.iters, cancel)
}

/// Runs the iterations in `range` of the campaign described by `cfg`.
/// Campaign state is per-iteration, so disjoint ranges compose: their
/// reports merge (in range order) into exactly the single-range report.
fn run_range(cfg: &FuzzConfig, range: std::ops::Range<u64>, cancel: &CancelToken) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in range {
        if cancel.should_stop().is_some() {
            report.cancelled = true;
            break;
        }
        let iter_seed = cfg.seed.wrapping_mul(0x1000_0000_0000_0001).wrapping_add(i);
        let module = gen::generate(iter_seed, &cfg.gen);
        match oracle::check_module(&module, iter_seed, &cfg.oracle) {
            Verdict::Pass => {}
            Verdict::Incomplete(_) => report.incomplete += 1,
            Verdict::Diverged { layer, detail } => {
                let shrunk = shrink::shrink(&module, iter_seed, &cfg.oracle, cancel);
                let shrunk_source = gen::render(&shrunk);
                let shrunk_lines = shrunk_source.lines().count();
                let persisted = cfg.corpus_dir.as_ref().and_then(|dir| {
                    corpus::persist(dir, iter_seed, layer, &shrunk_source).ok()
                });
                report.divergences.push(Divergence {
                    seed: iter_seed,
                    layer,
                    detail,
                    shrunk_source,
                    shrunk_lines,
                    persisted,
                });
            }
        }
        report.executed += 1;
    }
    report
}

/// Iterations per parallel work unit. Fixed (not derived from the thread
/// count) so the chunk boundaries — and therefore the merged report — are
/// a function of the campaign alone.
const CHUNK_ITERS: u64 = 8;

/// Runs a fuzzing campaign across `executor`'s workers.
///
/// The iteration space is cut into fixed-size contiguous chunks, each
/// chunk runs independently (iteration `i` derives its own seed stream, so
/// chunks share no state), and the per-chunk reports are merged in chunk
/// order. An uncancelled parallel campaign therefore produces a report —
/// and, via the post-merge persistence pass, a corpus directory —
/// identical to [`run_fuzz`]'s at any thread count. Under cancellation the
/// chunks stop independently, so only the *set* of completed iterations
/// may differ from a sequential run.
///
/// Corpus persistence happens after the merge, in iteration order; the
/// file contents depend only on `(layer, seed, shrunk source)`, so the
/// directory is byte-identical to a sequential campaign's.
pub fn run_fuzz_parallel(
    cfg: &FuzzConfig,
    executor: &rtlock_exec::Executor,
    cancel: &CancelToken,
) -> FuzzReport {
    // Workers fuzz without persisting; the merge pass below writes the
    // corpus in iteration order on the calling thread.
    let worker_cfg = FuzzConfig { corpus_dir: None, ..cfg.clone() };
    let chunks: Vec<std::ops::Range<u64>> = (0..cfg.iters)
        .step_by(CHUNK_ITERS.max(1) as usize)
        .map(|lo| lo..(lo + CHUNK_ITERS).min(cfg.iters))
        .collect();
    let results = executor.map(cancel, chunks, |_, range, token| {
        run_range(&worker_cfg, range, token)
    });

    let mut report = FuzzReport::default();
    for res in results {
        match res {
            Ok(chunk) => {
                report.executed += chunk.executed;
                report.incomplete += chunk.incomplete;
                report.divergences.extend(chunk.divergences);
                report.cancelled |= chunk.cancelled;
            }
            Err(rtlock_exec::TaskError::Cancelled(_)) => report.cancelled = true,
            // The pool already drained cleanly; surface the worker's panic
            // to the caller just as a sequential run would have.
            Err(rtlock_exec::TaskError::Panicked(msg)) => {
                panic!("fuzz worker panicked: {msg}")
            }
        }
    }
    if let Some(dir) = &cfg.corpus_dir {
        for d in &mut report.divergences {
            d.persisted = corpus::persist(dir, d.seed, d.layer, &d.shrunk_source).ok();
        }
    }
    report
}

/// Event kind marking a chunk's divergences durable (one per divergence,
/// appended *before* the chunk's completion marker).
pub const KIND_FUZZ_DIV: &str = "fuzz_div";
/// Event kind marking a chunk complete; only chunks with this marker are
/// replayed on resume.
pub const KIND_FUZZ_CHUNK: &str = "fuzz_chunk";

/// [`run_fuzz_parallel`] with checkpoint/resume through a campaign
/// journal: chunks whose completion marker was recovered are **replayed**
/// from the journal (verbatim divergence text, no re-execution), the rest
/// run normally and journal themselves as they finish. A campaign killed
/// mid-run therefore loses at most its in-flight chunks, and
/// `interrupt → resume` yields a report — and corpus directory — byte-
/// identical to an uninterrupted run at any job count.
///
/// Chunks that stopped on cancellation are *not* journaled (they are not
/// final); journal append errors are reported to stderr and the run
/// continues unjournaled, exactly like the catalog runner.
pub fn run_fuzz_resumable(
    cfg: &FuzzConfig,
    executor: &rtlock_exec::Executor,
    cancel: &CancelToken,
    journal: &mut rtlock::journal::CampaignJournal,
    recovered: &[rtlock_store::Event],
) -> FuzzReport {
    let chunks: Vec<std::ops::Range<u64>> = (0..cfg.iters)
        .step_by(CHUNK_ITERS.max(1) as usize)
        .map(|lo| lo..(lo + CHUNK_ITERS).min(cfg.iters))
        .collect();
    let prior = replayed_chunks(cfg, recovered, chunks.len());

    let worker_cfg = FuzzConfig { corpus_dir: None, ..cfg.clone() };
    let todo: Vec<(usize, std::ops::Range<u64>)> = chunks
        .iter()
        .cloned()
        .enumerate()
        .filter(|(i, _)| prior[*i].is_none())
        .collect();
    let sink = std::sync::Mutex::new(journal);
    let results = executor.map(cancel, todo, |_, (chunk_index, range), token| {
        let chunk = run_range(&worker_cfg, range.clone(), token);
        if !chunk.cancelled && token.should_stop().is_none() {
            let mut journal = sink.lock().expect("journal lock");
            let append = |j: &mut rtlock::journal::CampaignJournal,
                          e: &rtlock_store::Event| {
                if let Err(err) = j.append(e) {
                    eprintln!("fuzz journal: append failed ({err}); continuing unjournaled");
                }
            };
            for d in &chunk.divergences {
                let event = rtlock_store::Event::new(KIND_FUZZ_DIV)
                    .field("chunk", chunk_index.to_string())
                    .field("seed", d.seed.to_string())
                    .field("layer", d.layer.name())
                    .field("detail", &d.detail)
                    .field("source", &d.shrunk_source);
                append(&mut journal, &event);
            }
            let event = rtlock_store::Event::new(KIND_FUZZ_CHUNK)
                .field("index", chunk_index.to_string())
                .field("executed", chunk.executed.to_string())
                .field("incomplete", chunk.incomplete.to_string());
            append(&mut journal, &event);
        }
        (chunk_index, chunk)
    });

    let mut fresh: std::collections::HashMap<usize, FuzzReport> = std::collections::HashMap::new();
    let mut cancelled = false;
    let mut worker_panic: Option<String> = None;
    for res in results {
        match res {
            Ok((chunk_index, chunk)) => {
                fresh.insert(chunk_index, chunk);
            }
            Err(rtlock_exec::TaskError::Cancelled(_)) => cancelled = true,
            Err(rtlock_exec::TaskError::Panicked(msg)) => worker_panic = Some(msg),
        }
    }
    if let Some(msg) = worker_panic {
        panic!("fuzz worker panicked: {msg}");
    }

    let mut report = FuzzReport { cancelled, ..FuzzReport::default() };
    for (i, _) in chunks.iter().enumerate() {
        let chunk = match &prior[i] {
            Some(replay) => replay,
            None => match fresh.get(&i) {
                Some(chunk) => chunk,
                None => continue, // cancelled before this chunk ran
            },
        };
        report.executed += chunk.executed;
        report.incomplete += chunk.incomplete;
        report.divergences.extend(chunk.divergences.iter().cloned());
        report.cancelled |= chunk.cancelled;
    }
    if let Some(dir) = &cfg.corpus_dir {
        for d in &mut report.divergences {
            d.persisted = corpus::persist(dir, d.seed, d.layer, &d.shrunk_source).ok();
        }
    }
    report
}

/// Decodes recovered journal events into per-chunk replay slots. Only
/// chunks whose `fuzz_chunk` marker landed are replayed; their
/// divergences are keyed by seed (at-least-once replay may duplicate
/// them — re-runs are deterministic, so the last record wins) and
/// ordered by iteration number.
fn replayed_chunks(
    cfg: &FuzzConfig,
    events: &[rtlock_store::Event],
    chunk_count: usize,
) -> Vec<Option<FuzzReport>> {
    use std::collections::HashMap;
    let mut divs: HashMap<usize, HashMap<u64, Divergence>> = HashMap::new();
    let mut done: Vec<Option<(u64, u64)>> = vec![None; chunk_count];
    for event in events {
        if event.kind == KIND_FUZZ_DIV {
            let (Some(chunk), Some(seed), Some(layer), Some(detail), Some(source)) = (
                event.get_parsed::<usize>("chunk"),
                event.get_parsed::<u64>("seed"),
                event.get("layer").and_then(Layer::from_name),
                event.get("detail"),
                event.get("source"),
            ) else {
                continue;
            };
            if chunk >= chunk_count {
                continue;
            }
            divs.entry(chunk).or_default().insert(
                seed,
                Divergence {
                    seed,
                    layer,
                    detail: detail.to_owned(),
                    shrunk_source: source.to_owned(),
                    shrunk_lines: source.lines().count(),
                    persisted: None,
                },
            );
        } else if event.kind == KIND_FUZZ_CHUNK {
            let (Some(index), Some(executed), Some(incomplete)) = (
                event.get_parsed::<usize>("index"),
                event.get_parsed::<u64>("executed"),
                event.get_parsed::<u64>("incomplete"),
            ) else {
                continue;
            };
            if index < chunk_count {
                done[index] = Some((executed, incomplete));
            }
        }
    }
    done.into_iter()
        .enumerate()
        .map(|(i, marker)| {
            let (executed, incomplete) = marker?;
            let mut divergences: Vec<Divergence> =
                divs.remove(&i).map(|m| m.into_values().collect()).unwrap_or_default();
            // Iteration order within the chunk: iteration `n` has seed
            // `base * M + n` (wrapping), so recovering `n` sorts exactly
            // as the original run emitted.
            let base = cfg.seed.wrapping_mul(0x1000_0000_0000_0001);
            divergences.sort_by_key(|d| d.seed.wrapping_sub(base));
            Some(FuzzReport { executed, incomplete, divergences, cancelled: false })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_campaign_reports_no_divergences() {
        let cfg = FuzzConfig { iters: 25, ..FuzzConfig::default() };
        let report = run_fuzz(&cfg, &CancelToken::unlimited());
        assert_eq!(report.executed, 25);
        assert!(
            report.divergences.is_empty(),
            "unexpected divergences: {:?}",
            report.divergences.iter().map(|d| (d.seed, d.layer)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_campaign_matches_sequential() {
        let cfg = FuzzConfig { iters: 20, ..FuzzConfig::default() };
        let reference = run_fuzz(&cfg, &CancelToken::unlimited());
        let digest = |r: &FuzzReport| {
            (
                r.executed,
                r.incomplete,
                r.cancelled,
                r.divergences
                    .iter()
                    .map(|d| (d.seed, d.layer, d.detail.clone(), d.shrunk_source.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        for threads in [1, 2, 4] {
            let par = run_fuzz_parallel(
                &cfg,
                &rtlock_exec::Executor::new(threads),
                &CancelToken::unlimited(),
            );
            assert_eq!(digest(&par), digest(&reference), "threads={threads}");
        }
    }

    #[test]
    fn cancelled_campaign_stops_early() {
        let cfg = FuzzConfig { iters: 1000, ..FuzzConfig::default() };
        let cancel = CancelToken::unlimited();
        cancel.cancel();
        let report = run_fuzz(&cfg, &cancel);
        assert!(report.cancelled);
        assert_eq!(report.executed, 0);
    }
}
