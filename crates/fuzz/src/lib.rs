//! Cross-layer differential fuzzing and formal equivalence harness.
//!
//! See DESIGN.md §9 for the architecture. In short: a seed-driven
//! generator ([`gen`]) produces random RTL modules biased toward
//! optimizer-rewritten constructs; a five-layer oracle ([`oracle`]) runs
//! each module through RTL simulation, elaborated-netlist simulation,
//! optimized-netlist simulation, scan-view sequential emulation, and a
//! locked-with-correct-key cosimulation on shared random stimulus, plus a
//! SAT miter between the pre- and post-optimization netlists; a greedy
//! minimizer ([`shrink`]) reduces divergent modules; and [`corpus`]
//! persists shrunk divergences as regression inputs.
//!
//! ```
//! use rtlock_fuzz::{run_fuzz, FuzzConfig};
//! use rtlock_governor::CancelToken;
//!
//! let cfg = FuzzConfig { seed: 7, iters: 3, ..FuzzConfig::default() };
//! let report = run_fuzz(&cfg, &CancelToken::unlimited());
//! assert_eq!(report.executed, 3);
//! assert!(report.divergences.is_empty());
//! ```

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use gen::{generate, render, GenConfig, GenModule};
pub use oracle::{check_module, check_source, Layer, OracleConfig, Verdict};
pub use shrink::shrink;

use rtlock_governor::CancelToken;

/// Configuration for a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; iteration `i` uses a stream derived from `(seed, i)`.
    pub seed: u64,
    /// Number of modules to generate and check.
    pub iters: u64,
    /// Generator shape limits.
    pub gen: GenConfig,
    /// Oracle settings (cycles, stimulus vectors, layer toggles).
    pub oracle: OracleConfig,
    /// Directory to persist shrunk divergences into (`None` = don't).
    pub corpus_dir: Option<std::path::PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            iters: 100,
            gen: GenConfig::default(),
            oracle: OracleConfig::default(),
            corpus_dir: None,
        }
    }
}

/// One divergence found during a campaign.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Seed of the iteration that produced the module.
    pub seed: u64,
    /// Layer that disagreed with the RTL reference.
    pub layer: Layer,
    /// Human-readable detail from the oracle.
    pub detail: String,
    /// Shrunk module source.
    pub shrunk_source: String,
    /// Line count of the shrunk source.
    pub shrunk_lines: usize,
    /// Path the reproducer was persisted to, if a corpus dir was set.
    pub persisted: Option<std::path::PathBuf>,
}

/// Summary of a fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Iterations actually executed (may be short of the request when
    /// cancelled by budget).
    pub executed: u64,
    /// Iterations skipped because the oracle could not complete a layer
    /// (e.g. SAT budget exhausted) — counted, never silently dropped.
    pub incomplete: u64,
    /// Divergences found (post-shrink).
    pub divergences: Vec<Divergence>,
    /// Whether the campaign stopped early on cancellation.
    pub cancelled: bool,
}

/// Runs a fuzzing campaign. Checks `cancel` between iterations so a
/// governor wall-clock budget bounds the campaign.
pub fn run_fuzz(cfg: &FuzzConfig, cancel: &CancelToken) -> FuzzReport {
    run_range(cfg, 0..cfg.iters, cancel)
}

/// Runs the iterations in `range` of the campaign described by `cfg`.
/// Campaign state is per-iteration, so disjoint ranges compose: their
/// reports merge (in range order) into exactly the single-range report.
fn run_range(cfg: &FuzzConfig, range: std::ops::Range<u64>, cancel: &CancelToken) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in range {
        if cancel.should_stop().is_some() {
            report.cancelled = true;
            break;
        }
        let iter_seed = cfg.seed.wrapping_mul(0x1000_0000_0000_0001).wrapping_add(i);
        let module = gen::generate(iter_seed, &cfg.gen);
        match oracle::check_module(&module, iter_seed, &cfg.oracle) {
            Verdict::Pass => {}
            Verdict::Incomplete(_) => report.incomplete += 1,
            Verdict::Diverged { layer, detail } => {
                let shrunk = shrink::shrink(&module, iter_seed, &cfg.oracle, cancel);
                let shrunk_source = gen::render(&shrunk);
                let shrunk_lines = shrunk_source.lines().count();
                let persisted = cfg.corpus_dir.as_ref().and_then(|dir| {
                    corpus::persist(dir, iter_seed, layer, &shrunk_source).ok()
                });
                report.divergences.push(Divergence {
                    seed: iter_seed,
                    layer,
                    detail,
                    shrunk_source,
                    shrunk_lines,
                    persisted,
                });
            }
        }
        report.executed += 1;
    }
    report
}

/// Iterations per parallel work unit. Fixed (not derived from the thread
/// count) so the chunk boundaries — and therefore the merged report — are
/// a function of the campaign alone.
const CHUNK_ITERS: u64 = 8;

/// Runs a fuzzing campaign across `executor`'s workers.
///
/// The iteration space is cut into fixed-size contiguous chunks, each
/// chunk runs independently (iteration `i` derives its own seed stream, so
/// chunks share no state), and the per-chunk reports are merged in chunk
/// order. An uncancelled parallel campaign therefore produces a report —
/// and, via the post-merge persistence pass, a corpus directory —
/// identical to [`run_fuzz`]'s at any thread count. Under cancellation the
/// chunks stop independently, so only the *set* of completed iterations
/// may differ from a sequential run.
///
/// Corpus persistence happens after the merge, in iteration order; the
/// file contents depend only on `(layer, seed, shrunk source)`, so the
/// directory is byte-identical to a sequential campaign's.
pub fn run_fuzz_parallel(
    cfg: &FuzzConfig,
    executor: &rtlock_exec::Executor,
    cancel: &CancelToken,
) -> FuzzReport {
    // Workers fuzz without persisting; the merge pass below writes the
    // corpus in iteration order on the calling thread.
    let worker_cfg = FuzzConfig { corpus_dir: None, ..cfg.clone() };
    let chunks: Vec<std::ops::Range<u64>> = (0..cfg.iters)
        .step_by(CHUNK_ITERS.max(1) as usize)
        .map(|lo| lo..(lo + CHUNK_ITERS).min(cfg.iters))
        .collect();
    let results = executor.map(cancel, chunks, |_, range, token| {
        run_range(&worker_cfg, range, token)
    });

    let mut report = FuzzReport::default();
    for res in results {
        match res {
            Ok(chunk) => {
                report.executed += chunk.executed;
                report.incomplete += chunk.incomplete;
                report.divergences.extend(chunk.divergences);
                report.cancelled |= chunk.cancelled;
            }
            Err(rtlock_exec::TaskError::Cancelled(_)) => report.cancelled = true,
            // The pool already drained cleanly; surface the worker's panic
            // to the caller just as a sequential run would have.
            Err(rtlock_exec::TaskError::Panicked(msg)) => {
                panic!("fuzz worker panicked: {msg}")
            }
        }
    }
    if let Some(dir) = &cfg.corpus_dir {
        for d in &mut report.divergences {
            d.persisted = corpus::persist(dir, d.seed, d.layer, &d.shrunk_source).ok();
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_campaign_reports_no_divergences() {
        let cfg = FuzzConfig { iters: 25, ..FuzzConfig::default() };
        let report = run_fuzz(&cfg, &CancelToken::unlimited());
        assert_eq!(report.executed, 25);
        assert!(
            report.divergences.is_empty(),
            "unexpected divergences: {:?}",
            report.divergences.iter().map(|d| (d.seed, d.layer)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_campaign_matches_sequential() {
        let cfg = FuzzConfig { iters: 20, ..FuzzConfig::default() };
        let reference = run_fuzz(&cfg, &CancelToken::unlimited());
        let digest = |r: &FuzzReport| {
            (
                r.executed,
                r.incomplete,
                r.cancelled,
                r.divergences
                    .iter()
                    .map(|d| (d.seed, d.layer, d.detail.clone(), d.shrunk_source.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        for threads in [1, 2, 4] {
            let par = run_fuzz_parallel(
                &cfg,
                &rtlock_exec::Executor::new(threads),
                &CancelToken::unlimited(),
            );
            assert_eq!(digest(&par), digest(&reference), "threads={threads}");
        }
    }

    #[test]
    fn cancelled_campaign_stops_early() {
        let cfg = FuzzConfig { iters: 1000, ..FuzzConfig::default() };
        let cancel = CancelToken::unlimited();
        cancel.cancel();
        let report = run_fuzz(&cfg, &cancel);
        assert!(report.cancelled);
        assert_eq!(report.executed, 0);
    }
}
