//! `rtlock-fuzz` — cross-layer differential fuzzing campaign driver.
//!
//! Generates seed-driven random RTL, runs each module through the
//! five-layer differential oracle, shrinks any divergence, and optionally
//! persists reproducers into a corpus directory. The campaign runs under
//! the governor's wall-clock budget: `--time-budget` bounds the whole run
//! and the loop stops at the next iteration boundary once it fires.
//!
//! Exit codes: 0 = no divergences, 1 = divergences found, 2 = usage error.

use rtlock::RunBudget;
use rtlock_fuzz::{FuzzConfig, Verdict};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: rtlock-fuzz [options]

options:
  --seed <n>          base seed for the campaign (default 1)
  --iters <n>         modules to generate and check (default 500)
  --jobs <n>          worker threads (default 1; 0 = one per core);
                      the report and corpus are identical at any job count
  --time-budget <s>   wall-clock budget in seconds (default unbounded)
  --cycles <n>        simulation cycles per module (default 12)
  --corpus-dir <dir>  where to persist shrunk reproducers
                      (default fuzz/corpus when --write-corpus is given)
  --write-corpus      persist shrunk reproducers
  --journal <file>    checkpoint chunk completions into a crash-safe
                      journal; rerunning with the same journal resumes
                      (completed chunks replay, the report is identical)
  --crash-after-events <n>
                      abort() after the n-th journal append (crash-
                      recovery self-test; requires --journal)
  --inject-opt-bug    arm the deliberate optimizer miscompile (self-test)
  --no-lock-layer     skip the locking layer (enumerate + correct-key cosim)
  --no-formal         skip the pre-/post-optimization SAT miter
  --no-analysis       skip the dataflow-analysis layer (fixpoint cross-check)
  --help              print this help
";

struct Args {
    cfg: FuzzConfig,
    time_budget: Option<Duration>,
    inject_opt_bug: bool,
    jobs: usize,
    journal: Option<std::path::PathBuf>,
    crash_after: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = FuzzConfig { iters: 500, ..FuzzConfig::default() };
    let mut time_budget = None;
    let mut inject_opt_bug = false;
    let mut jobs = 1usize;
    let mut write_corpus = false;
    let mut corpus_dir: Option<std::path::PathBuf> = None;
    let mut journal: Option<std::path::PathBuf> = None;
    let mut crash_after: Option<u64> = None;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--seed" => {
                cfg.seed = value(&mut i, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--iters" => {
                cfg.iters = value(&mut i, "--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--jobs" => {
                jobs = value(&mut i, "--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--time-budget" => {
                let secs: u64 = value(&mut i, "--time-budget")?
                    .parse()
                    .map_err(|e| format!("--time-budget: {e}"))?;
                time_budget = Some(Duration::from_secs(secs));
            }
            "--cycles" => {
                cfg.oracle.cycles = value(&mut i, "--cycles")?
                    .parse()
                    .map_err(|e| format!("--cycles: {e}"))?;
            }
            "--corpus-dir" => {
                corpus_dir = Some(value(&mut i, "--corpus-dir")?.into());
                write_corpus = true;
            }
            "--journal" => journal = Some(value(&mut i, "--journal")?.into()),
            "--crash-after-events" => {
                crash_after = Some(
                    value(&mut i, "--crash-after-events")?
                        .parse()
                        .map_err(|e| format!("--crash-after-events: {e}"))?,
                );
            }
            "--write-corpus" => write_corpus = true,
            "--inject-opt-bug" => inject_opt_bug = true,
            "--no-lock-layer" => cfg.oracle.check_locked = false,
            "--no-formal" => cfg.oracle.check_formal = false,
            "--no-analysis" => cfg.oracle.check_analysis = false,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    if write_corpus {
        cfg.corpus_dir = Some(corpus_dir.unwrap_or_else(|| "fuzz/corpus".into()));
    }
    if crash_after.is_some() && journal.is_none() {
        return Err("--crash-after-events requires --journal".into());
    }
    Ok(Args { cfg, time_budget, inject_opt_bug, jobs, journal, crash_after })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("rtlock-fuzz: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.inject_opt_bug {
        eprintln!("rtlock-fuzz: optimizer miscompile ARMED (--inject-opt-bug)");
        rtlock_synth::opt::inject::set_opt_mux_bug(true);
    }

    let budget = match args.time_budget {
        Some(d) => RunBudget::with_wall_clock(d),
        None => RunBudget::default(),
    };
    let governor = rtlock::governor::Governor::start(budget);
    let started = std::time::Instant::now();
    let report = if let Some(path) = &args.journal {
        let (mut journal, recovery) = match rtlock::journal::CampaignJournal::open(path) {
            Ok(opened) => opened,
            Err(e) => {
                eprintln!("rtlock-fuzz: cannot open journal {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        if !recovery.events.is_empty() {
            eprintln!(
                "rtlock-fuzz: resuming from {} ({} events recovered{})",
                path.display(),
                recovery.events.len(),
                if recovery.torn_tail { ", torn tail healed" } else { "" },
            );
        }
        if let Some(n) = args.crash_after {
            journal.set_crash_after(n);
        }
        let executor = if args.jobs == 0 {
            rtlock_exec::Executor::machine_sized()
        } else {
            rtlock_exec::Executor::new(args.jobs.max(1))
        };
        rtlock_fuzz::run_fuzz_resumable(
            &args.cfg,
            &executor,
            governor.run_token(),
            &mut journal,
            &recovery.events,
        )
    } else if args.jobs == 1 {
        rtlock_fuzz::run_fuzz(&args.cfg, governor.run_token())
    } else {
        let executor = if args.jobs == 0 {
            rtlock_exec::Executor::machine_sized()
        } else {
            rtlock_exec::Executor::new(args.jobs)
        };
        rtlock_fuzz::run_fuzz_parallel(&args.cfg, &executor, governor.run_token())
    };
    let elapsed = started.elapsed();

    // Smoke-check the oracle itself on one known-good module so a campaign
    // that silently skipped every layer cannot report success.
    let sanity = rtlock_fuzz::check_source(
        "module sanity(input [3:0] a, output [3:0] y); assign y = a ^ 4'd3; endmodule",
        args.cfg.seed,
        &args.cfg.oracle,
    );
    if args.inject_opt_bug {
        rtlock_synth::opt::inject::set_opt_mux_bug(false);
    }
    if !matches!(sanity, Verdict::Pass) && !args.inject_opt_bug {
        eprintln!("rtlock-fuzz: oracle sanity check failed: {sanity:?}");
        return ExitCode::from(2);
    }

    println!(
        "rtlock-fuzz: seed={} iters={} executed={} incomplete={} divergences={} time={:.1}s{}",
        args.cfg.seed,
        args.cfg.iters,
        report.executed,
        report.incomplete,
        report.divergences.len(),
        elapsed.as_secs_f64(),
        if report.cancelled { " (budget hit, stopped early)" } else { "" },
    );
    for d in &report.divergences {
        println!("--- divergence: layer={} seed={} ({} shrunk lines)", d.layer, d.seed, d.shrunk_lines);
        println!("    {}", d.detail);
        match &d.persisted {
            Some(p) => println!("    persisted: {}", p.display()),
            None => {
                for line in d.shrunk_source.lines() {
                    println!("    | {line}");
                }
            }
        }
    }

    if report.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
