//! Corpus persistence and replay.
//!
//! Shrunk divergences land in a flat directory of `.v` files whose names
//! encode the seed and failing layer (`div_<layer>_seed<seed>.v`), plus a
//! header comment with the oracle detail — enough for triage without
//! rerunning the campaign. The repository's `fuzz/corpus/` directory holds
//! hand-written regression modules replayed by the root test suite; this
//! module provides both the writer used by the campaign and the reader
//! used by the replay tests.

use crate::oracle::Layer;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Writes a shrunk reproducer into `dir`, creating it if needed. Returns
/// the file path. The write is atomic (temp + fsync + rename): a crashed
/// campaign never leaves a half-written reproducer for the replay suite
/// to choke on.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable directory, disk full).
pub fn persist(dir: &Path, seed: u64, layer: Layer, source: &str) -> io::Result<PathBuf> {
    let path = dir.join(format!("div_{layer}_seed{seed}.v"));
    let body = format!("// rtlock-fuzz reproducer: layer={layer} seed={seed}\n{source}");
    rtlock_store::atomic_write(&path, body)?;
    Ok(path)
}

/// Loads every `.v` file in `dir`, sorted by file name for deterministic
/// replay order. Returns `(file name, source)` pairs.
///
/// # Errors
///
/// Propagates filesystem errors; a missing directory is an error (an empty
/// corpus directory should exist explicitly, not be silently skipped).
pub fn load(dir: &Path) -> io::Result<Vec<(String, String)>> {
    let mut entries = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "v") {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            entries.push((name, fs::read_to_string(&path)?));
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_then_load_roundtrips() {
        let dir = std::env::temp_dir().join(format!("rtlock_fuzz_corpus_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let src = "module t(input a, output y); assign y = a; endmodule\n";
        let path = persist(&dir, 42, Layer::OptSim, src).expect("persist");
        assert!(path.ends_with("div_opt-sim_seed42.v"));
        let loaded = load(&dir).expect("load");
        assert_eq!(loaded.len(), 1);
        assert!(loaded[0].1.contains("assign y = a;"));
        assert!(loaded[0].1.starts_with("// rtlock-fuzz reproducer"));
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn load_missing_directory_errors() {
        assert!(load(Path::new("/nonexistent/rtlock-fuzz-corpus")).is_err());
    }
}
