//! Greedy structural minimization of divergent modules.
//!
//! The shrinker works on the generator's [`GenModule`] IR, not on text:
//! each candidate reduction is a structural edit (drop an output, remove a
//! register, inline a constant over a wire, replace a subexpression with
//! one of its children), applied only if the reduced module still
//! diverges. Passes repeat to a fixpoint, so the result is 1-minimal with
//! respect to the edit set — every remaining element is load-bearing for
//! the reproduction.

use crate::gen::{FsmDef, GExpr, GenModule, RegDef, WireDef};
use crate::oracle::{check_module, OracleConfig, Verdict};
use rtlock_governor::CancelToken;

/// Returns `true` when the module still reproduces a divergence (at any
/// layer — a shrink step is allowed to move the failure between layers, as
/// long as one remains).
fn still_diverges(m: &GenModule, seed: u64, cfg: &OracleConfig) -> bool {
    matches!(check_module(m, seed, cfg), Verdict::Diverged { .. })
}

/// Candidate replacements for an expression node: its same-width children
/// first (the biggest cut), then a zero constant.
fn replacements(m: &GenModule, e: &GExpr) -> Vec<GExpr> {
    let w = m.expr_width(e);
    let mut out = Vec::new();
    let mut push_child = |c: &GExpr| {
        if m.expr_width(c) == w {
            out.push(c.clone());
        }
    };
    match e {
        GExpr::Unary { a, .. } => push_child(a),
        GExpr::Binary { a, b, .. } => {
            push_child(a);
            push_child(b);
        }
        GExpr::Mux { t, e: els, .. } => {
            push_child(t);
            push_child(els);
        }
        GExpr::Const { .. } | GExpr::Ref(_) | GExpr::Slice { .. } | GExpr::IndexDyn { .. } => {}
    }
    if !matches!(e, GExpr::Const { .. }) {
        out.push(GExpr::Const { width: w, value: 0 });
    }
    out
}

/// All mutable expression slots of a module, addressed by index.
fn expr_slot_count(m: &GenModule) -> usize {
    m.wires.len() + m.regs.len() + m.fsm.as_ref().map_or(0, |f| f.arms.len())
}

fn expr_slot(m: &mut GenModule, idx: usize) -> &mut GExpr {
    if idx < m.wires.len() {
        return &mut m.wires[idx].expr;
    }
    let idx = idx - m.wires.len();
    if idx < m.regs.len() {
        return &mut m.regs[idx].next;
    }
    let idx = idx - m.regs.len();
    &mut m.fsm.as_mut().expect("fsm slot index").arms[idx].1
}

/// Walks `e` and tries `edit` at every node position, returning the first
/// variant that keeps the divergence alive.
fn shrink_expr_at(
    m: &GenModule,
    slot: usize,
    seed: u64,
    cfg: &OracleConfig,
    cancel: &CancelToken,
) -> Option<GenModule> {
    // Enumerate node paths depth-first; for each, try its replacements.
    fn paths(e: &GExpr, prefix: Vec<usize>, out: &mut Vec<Vec<usize>>) {
        out.push(prefix.clone());
        let children: Vec<&GExpr> = match e {
            GExpr::Unary { a, .. } => vec![a],
            GExpr::Binary { a, b, .. } => vec![a, b],
            GExpr::Mux { cond, t, e } => vec![cond, t, e],
            GExpr::IndexDyn { index, .. } => vec![index],
            _ => Vec::new(),
        };
        for (i, c) in children.into_iter().enumerate() {
            let mut p = prefix.clone();
            p.push(i);
            paths(c, p, out);
        }
    }
    fn node_at<'a>(e: &'a GExpr, path: &[usize]) -> &'a GExpr {
        let Some((&head, rest)) = path.split_first() else { return e };
        let child: &GExpr = match e {
            GExpr::Unary { a, .. } => a,
            GExpr::Binary { a, b, .. } => {
                if head == 0 {
                    a
                } else {
                    b
                }
            }
            GExpr::Mux { cond, t, e } => match head {
                0 => cond,
                1 => t,
                _ => e,
            },
            GExpr::IndexDyn { index, .. } => index,
            _ => unreachable!("path into leaf"),
        };
        node_at(child, rest)
    }
    fn replace_at(e: &mut GExpr, path: &[usize], with: GExpr) {
        let Some((&head, rest)) = path.split_first() else {
            *e = with;
            return;
        };
        let child: &mut GExpr = match e {
            GExpr::Unary { a, .. } => a,
            GExpr::Binary { a, b, .. } => {
                if head == 0 {
                    a
                } else {
                    b
                }
            }
            GExpr::Mux { cond, t, e } => match head {
                0 => cond,
                1 => t,
                _ => e,
            },
            GExpr::IndexDyn { index, .. } => index,
            _ => unreachable!("path into leaf"),
        };
        replace_at(child, rest, with);
    }

    let mut all_paths = Vec::new();
    {
        let mut probe = m.clone();
        paths(expr_slot(&mut probe, slot), Vec::new(), &mut all_paths);
    }
    for path in all_paths {
        if cancel.should_stop().is_some() {
            return None;
        }
        let mut probe = m.clone();
        let node = node_at(expr_slot(&mut probe, slot), &path).clone();
        for r in replacements(m, &node) {
            if r == node {
                continue;
            }
            let mut cand = m.clone();
            replace_at(expr_slot(&mut cand, slot), &path, r);
            if still_diverges(&cand, seed, cfg) {
                return Some(cand);
            }
        }
    }
    None
}

/// Every signal some expression or output still references.
fn referenced_signals(m: &GenModule) -> std::collections::HashSet<usize> {
    fn walk(e: &GExpr, out: &mut std::collections::HashSet<usize>) {
        match e {
            GExpr::Ref(s) | GExpr::Slice { sig: s, .. } => {
                out.insert(*s);
            }
            GExpr::IndexDyn { sig, index } => {
                out.insert(*sig);
                walk(index, out);
            }
            GExpr::Unary { a, .. } => walk(a, out),
            GExpr::Binary { a, b, .. } => {
                walk(a, out);
                walk(b, out);
            }
            GExpr::Mux { cond, t, e } => {
                walk(cond, out);
                walk(t, out);
                walk(e, out);
            }
            GExpr::Const { .. } => {}
        }
    }
    let mut refs = std::collections::HashSet::new();
    for d in &m.wires {
        walk(&d.expr, &mut refs);
    }
    for r in &m.regs {
        walk(&r.next, &mut refs);
    }
    if let Some(f) = &m.fsm {
        for (_, e) in &f.arms {
            walk(e, &mut refs);
        }
    }
    for &(_, s) in &m.outputs {
        refs.insert(s);
    }
    refs
}

/// Structural deletions: outputs, FSM, registers, wires, unused inputs. A
/// deleted wire or register is replaced by a constant everywhere it is
/// referenced, which keeps the module well-formed without renumbering the
/// signal table; registers and the FSM state are also tried as *demotions*
/// to free input ports — that keeps a non-constant signal alive while
/// deleting the sequential machinery around it.
fn structural_candidates(m: &GenModule) -> Vec<GenModule> {
    let mut out = Vec::new();

    if m.outputs.len() > 1 {
        for i in 0..m.outputs.len() {
            let mut c = m.clone();
            c.outputs.remove(i);
            out.push(c);
        }
    }

    if m.fsm.is_some() {
        // Demote `state` to a free input (biggest cut: both processes go).
        let mut c = m.clone();
        let state = c.fsm.take().expect("checked").state;
        c.extra_inputs.push(state);
        out.push(c);
        // Or constant-fold it away entirely.
        let mut c = m.clone();
        let FsmDef { state, .. } = c.fsm.take().expect("checked");
        let w = c.signals[state].width;
        subst_signal(&mut c, state, GExpr::Const { width: w, value: 0 });
        c.outputs.retain(|&(_, s)| s != state);
        if !c.outputs.is_empty() {
            out.push(c);
        }
    }

    if let Some(f) = &m.fsm {
        for i in 0..f.arms.len() {
            let mut c = m.clone();
            c.fsm.as_mut().expect("checked").arms.remove(i);
            out.push(c);
        }
    }

    for i in 0..m.regs.len() {
        // Demote the register to a free input.
        let mut c = m.clone();
        let sig = c.regs.remove(i).sig;
        c.extra_inputs.push(sig);
        out.push(c);
        // Or replace it with its reset constant.
        let mut c = m.clone();
        let RegDef { sig, init, .. } = c.regs.remove(i);
        let w = c.signals[sig].width;
        subst_signal(&mut c, sig, GExpr::Const { width: w, value: init });
        c.outputs.retain(|&(_, s)| s != sig);
        if !c.outputs.is_empty() {
            out.push(c);
        }
    }

    for i in 0..m.wires.len() {
        let mut c = m.clone();
        let WireDef { sig, .. } = c.wires.remove(i);
        let w = c.signals[sig].width;
        subst_signal(&mut c, sig, GExpr::Const { width: w, value: 0 });
        c.outputs.retain(|&(_, s)| s != sig);
        if !c.outputs.is_empty() {
            out.push(c);
        }
    }

    // Drop inputs nothing references any more.
    let refs = referenced_signals(m);
    for i in 0..m.n_inputs {
        if !refs.contains(&i) && !m.dropped_inputs.contains(&i) {
            let mut c = m.clone();
            c.dropped_inputs.push(i);
            out.push(c);
        }
    }
    for (k, &sig) in m.extra_inputs.iter().enumerate() {
        if !refs.contains(&sig) {
            let mut c = m.clone();
            c.extra_inputs.remove(k);
            out.push(c);
        }
    }

    out
}

/// Replaces every reference to `sig` (whole, sliced, or indexed) with a
/// constant expression of the right width.
fn subst_signal(m: &mut GenModule, sig: usize, with: GExpr) {
    fn subst(e: &mut GExpr, sig: usize, with: &GExpr, full_width: usize) {
        match e {
            GExpr::Ref(s) if *s == sig => *e = with.clone(),
            GExpr::Slice { sig: s, hi, lo } if *s == sig => {
                // A slice of a constant is a narrower constant.
                let value = match with {
                    GExpr::Const { value, .. } => {
                        let w = *hi - *lo + 1;
                        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                        (value >> *lo) & mask
                    }
                    _ => 0,
                };
                *e = GExpr::Const { width: *hi - *lo + 1, value };
            }
            GExpr::IndexDyn { sig: s, .. } if *s == sig => {
                let _ = full_width;
                *e = GExpr::Const { width: 1, value: 0 };
            }
            GExpr::Unary { a, .. } => subst(a, sig, with, full_width),
            GExpr::Binary { a, b, .. } => {
                subst(a, sig, with, full_width);
                subst(b, sig, with, full_width);
            }
            GExpr::Mux { cond, t, e: els } => {
                subst(cond, sig, with, full_width);
                subst(t, sig, with, full_width);
                subst(els, sig, with, full_width);
            }
            GExpr::IndexDyn { index, .. } => subst(index, sig, with, full_width),
            _ => {}
        }
    }
    let w = m.signals[sig].width;
    for d in &mut m.wires {
        subst(&mut d.expr, sig, &with, w);
    }
    for r in &mut m.regs {
        subst(&mut r.next, sig, &with, w);
    }
    if let Some(f) = &mut m.fsm {
        for (_, e) in &mut f.arms {
            subst(e, sig, &with, w);
        }
    }
}

/// Shrinks a divergent module to a (locally) minimal reproducer.
///
/// Alternates structural deletions with expression-level replacements
/// until neither makes progress or `cancel` fires. The input is returned
/// unchanged if it does not actually diverge (defensive: the caller
/// decides divergence, but budgets can make verdicts flaky).
pub fn shrink(
    module: &GenModule,
    seed: u64,
    cfg: &OracleConfig,
    cancel: &CancelToken,
) -> GenModule {
    if !still_diverges(module, seed, cfg) {
        return module.clone();
    }
    let mut cur = module.clone();
    loop {
        if cancel.should_stop().is_some() {
            return cur;
        }
        let mut progressed = false;

        // Structural pass: take the first deletion that keeps the bug.
        'structural: loop {
            if cancel.should_stop().is_some() {
                return cur;
            }
            for cand in structural_candidates(&cur) {
                if still_diverges(&cand, seed, cfg) {
                    cur = cand;
                    progressed = true;
                    continue 'structural;
                }
            }
            break;
        }

        // Expression pass: shrink each definition's tree greedily.
        for slot in 0..expr_slot_count(&cur) {
            while let Some(next) = shrink_expr_at(&cur, slot, seed, cfg, cancel) {
                cur = next;
                progressed = true;
                if cancel.should_stop().is_some() {
                    return cur;
                }
            }
            // Deleting definitions above may shift slot indices; bail out
            // of the pass if the module shrank under us.
            if slot >= expr_slot_count(&cur) {
                break;
            }
        }

        if !progressed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, Signal};

    /// A module whose only real content is an inverted-select mux; with
    /// the optimizer bug armed it diverges, and shrinking must strip the
    /// decoys without losing the divergence.
    fn mux_module_with_decoys() -> GenModule {
        let signals = vec![
            Signal { name: "i0".into(), width: 1 },
            Signal { name: "i1".into(), width: 4 },
            Signal { name: "i2".into(), width: 4 },
            Signal { name: "w0".into(), width: 4 },
            Signal { name: "w1".into(), width: 4 },
            Signal { name: "w2".into(), width: 4 },
        ];
        let mux = GExpr::Mux {
            cond: Box::new(GExpr::Unary {
                op: crate::gen::GUnOp::Not,
                a: Box::new(GExpr::Ref(0)),
            }),
            t: Box::new(GExpr::Ref(1)),
            e: Box::new(GExpr::Ref(2)),
        };
        GenModule {
            name: "shrinkme".into(),
            signals,
            n_inputs: 3,
            wires: vec![
                WireDef { sig: 3, expr: mux },
                WireDef {
                    sig: 4,
                    expr: GExpr::Binary {
                        op: crate::gen::GBinOp::Add,
                        a: Box::new(GExpr::Ref(1)),
                        b: Box::new(GExpr::Ref(2)),
                    },
                },
                WireDef {
                    sig: 5,
                    expr: GExpr::Binary {
                        op: crate::gen::GBinOp::Xor,
                        a: Box::new(GExpr::Ref(3)),
                        b: Box::new(GExpr::Const { width: 4, value: 0 }),
                    },
                },
            ],
            regs: Vec::new(),
            fsm: None,
            outputs: vec![("o0".into(), 5), ("o1".into(), 4)],
            extra_inputs: Vec::new(),
            dropped_inputs: Vec::new(),
        }
    }

    #[test]
    fn shrinks_decoys_away_under_injected_bug() {
        let m = mux_module_with_decoys();
        let cfg = OracleConfig { check_locked: false, ..OracleConfig::default() };
        rtlock_synth::opt::inject::set_opt_mux_bug(true);
        let diverges = still_diverges(&m, 11, &cfg);
        let shrunk = shrink(&m, 11, &cfg, &CancelToken::unlimited());
        let still = still_diverges(&shrunk, 11, &cfg);
        rtlock_synth::opt::inject::set_opt_mux_bug(false);
        assert!(diverges, "armed bug must make the seed module diverge");
        assert!(still, "shrunk module must still diverge");
        assert!(shrunk.outputs.len() == 1, "decoy output dropped: {:?}", shrunk.outputs);
        assert!(shrunk.wires.len() <= 2, "decoy wires dropped: {}", shrunk.wires.len());
        let lines = crate::gen::render(&shrunk).lines().count();
        assert!(lines <= 20, "shrunk module must be small, got {lines} lines");
    }

    #[test]
    fn non_divergent_module_is_returned_unchanged() {
        let m = crate::gen::generate(3, &GenConfig::default());
        let cfg = OracleConfig { check_locked: false, ..OracleConfig::default() };
        let out = shrink(&m, 3, &cfg, &CancelToken::unlimited());
        assert_eq!(out, m);
    }
}
