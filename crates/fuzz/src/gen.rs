//! Seed-driven random RTL generation.
//!
//! The generator emits well-formed modules in the Verilog-2001 subset the
//! RTLock front end supports: continuous assignments over a signal DAG,
//! optional clocked registers with asynchronous reset, and an optional
//! case-based FSM idiom. Expression generation is deliberately biased
//! toward the constructs the synthesis optimizer rewrites — XOR chains,
//! constant operands, muxes with (often inverted) selects, and shared
//! subexpressions via wire reuse — because those rewrite rules are where
//! miscompiles hide.
//!
//! Modules are produced as a structured [`GenModule`] (not raw text) so
//! the shrinker can mutate them, and rendered to Verilog by [`render`].
//! Rendering is a pure function of the structure: same seed, same bytes.

use crate::rng::FuzzRng;

/// Tunable size/shape limits for generation.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum data inputs (at least 2 are always generated).
    pub max_inputs: usize,
    /// Maximum intermediate wires.
    pub max_wires: usize,
    /// Maximum registers (clk/rst appear only when registers do).
    pub max_regs: usize,
    /// Maximum output ports (at least 1).
    pub max_outputs: usize,
    /// Maximum expression tree depth.
    pub max_depth: usize,
    /// Percent chance the module is sequential.
    pub seq_chance: u64,
    /// Percent chance a sequential module also gets a case-based FSM.
    pub fsm_chance: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_inputs: 5,
            max_wires: 10,
            max_regs: 3,
            max_outputs: 4,
            max_depth: 4,
            seq_chance: 60,
            fsm_chance: 40,
        }
    }
}

/// A named signal with a width (an input, wire, or register).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signal {
    /// Verilog identifier.
    pub name: String,
    /// Width in bits.
    pub width: usize,
}

/// Generated expression tree. Signal references are indices into
/// [`GenModule::signals`]; every node has an exact width by construction,
/// so rendered assignments never rely on implicit resizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GExpr {
    /// Sized constant `width'd value`.
    Const {
        /// Width in bits (≤ 63).
        width: usize,
        /// Value, already masked to `width` bits.
        value: u64,
    },
    /// Whole-signal reference.
    Ref(usize),
    /// Constant part-select `sig[hi:lo]`.
    Slice {
        /// Referenced signal.
        sig: usize,
        /// High bit (inclusive).
        hi: usize,
        /// Low bit (inclusive).
        lo: usize,
    },
    /// Dynamic bit-select `sig[index]` (1-bit result).
    IndexDyn {
        /// Indexed signal.
        sig: usize,
        /// Index expression.
        index: Box<GExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator token (`~`, `!`, `-`, `&`, `|`, `^`).
        op: GUnOp,
        /// Operand.
        a: Box<GExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: GBinOp,
        /// Left operand.
        a: Box<GExpr>,
        /// Right operand.
        b: Box<GExpr>,
    },
    /// Conditional `cond ? t : e`.
    Mux {
        /// 1-bit condition.
        cond: Box<GExpr>,
        /// Then-leg.
        t: Box<GExpr>,
        /// Else-leg.
        e: Box<GExpr>,
    },
}

/// Unary operators the generator emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GUnOp {
    /// Bitwise NOT, width-preserving.
    Not,
    /// Logical NOT, 1-bit.
    LogicNot,
    /// Arithmetic negate, width-preserving.
    Neg,
    /// AND-reduction, 1-bit.
    RedAnd,
    /// OR-reduction, 1-bit.
    RedOr,
    /// XOR-reduction, 1-bit.
    RedXor,
}

/// Binary operators the generator emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GBinOp {
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `~^`
    Xnor,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==` (1-bit)
    Eq,
    /// `!=` (1-bit)
    Ne,
    /// `<` (1-bit)
    Lt,
    /// `>` (1-bit)
    Gt,
    /// `&&` (1-bit)
    LogicAnd,
    /// `||` (1-bit)
    LogicOr,
}

impl GBinOp {
    fn token(self) -> &'static str {
        match self {
            GBinOp::And => "&",
            GBinOp::Or => "|",
            GBinOp::Xor => "^",
            GBinOp::Xnor => "~^",
            GBinOp::Add => "+",
            GBinOp::Sub => "-",
            GBinOp::Mul => "*",
            GBinOp::Shl => "<<",
            GBinOp::Shr => ">>",
            GBinOp::Eq => "==",
            GBinOp::Ne => "!=",
            GBinOp::Lt => "<",
            GBinOp::Gt => ">",
            GBinOp::LogicAnd => "&&",
            GBinOp::LogicOr => "||",
        }
    }

    /// `true` for operators whose result is always 1 bit.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            GBinOp::Eq | GBinOp::Ne | GBinOp::Lt | GBinOp::Gt | GBinOp::LogicAnd | GBinOp::LogicOr
        )
    }
}

/// A wire definition: `assign signals[sig] = expr;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDef {
    /// Defined signal index.
    pub sig: usize,
    /// Driving expression (same width as the signal).
    pub expr: GExpr,
}

/// A register definition inside the single clocked process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegDef {
    /// Defined signal index.
    pub sig: usize,
    /// Reset value.
    pub init: u64,
    /// Next-state expression (same width as the signal).
    pub next: GExpr,
}

/// The case-based FSM idiom: a 2-bit `state` register plus a
/// combinational process computing `state_n` through a `case`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsmDef {
    /// Signal index of the `state` register (width 2).
    pub state: usize,
    /// Signal index of the `state_n` combinational reg (width 2).
    pub state_n: usize,
    /// Case arms: `(label, next-state expression)`.
    pub arms: Vec<(u64, GExpr)>,
}

/// A generated module: structured enough to shrink, renderable to Verilog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenModule {
    /// Module name.
    pub name: String,
    /// Signal table; the first [`GenModule::n_inputs`] entries are inputs.
    pub signals: Vec<Signal>,
    /// Number of data-input signals (clk/rst are not in the table).
    pub n_inputs: usize,
    /// Wire definitions in dependency order.
    pub wires: Vec<WireDef>,
    /// Register definitions.
    pub regs: Vec<RegDef>,
    /// Optional FSM idiom.
    pub fsm: Option<FsmDef>,
    /// Output ports: `(port name, driven signal index)`.
    pub outputs: Vec<(String, usize)>,
    /// Signals promoted to input ports by the shrinker (registers or FSM
    /// state demoted to free inputs — keeps a non-constant signal while
    /// deleting the sequential machinery that produced it).
    pub extra_inputs: Vec<usize>,
    /// Indices (`< n_inputs`) of original inputs the shrinker suppressed
    /// because nothing references them.
    pub dropped_inputs: Vec<usize>,
}

impl GenModule {
    /// `true` when the module needs clk/rst ports.
    pub fn is_sequential(&self) -> bool {
        !self.regs.is_empty() || self.fsm.is_some()
    }

    /// Exact width of an expression under this module's signal table.
    pub fn expr_width(&self, e: &GExpr) -> usize {
        match e {
            GExpr::Const { width, .. } => *width,
            GExpr::Ref(s) => self.signals[*s].width,
            GExpr::Slice { hi, lo, .. } => hi - lo + 1,
            GExpr::IndexDyn { .. } => 1,
            GExpr::Unary { op, a } => match op {
                GUnOp::Not | GUnOp::Neg => self.expr_width(a),
                GUnOp::LogicNot | GUnOp::RedAnd | GUnOp::RedOr | GUnOp::RedXor => 1,
            },
            GExpr::Binary { op, a, b } => {
                if op.is_predicate() {
                    1
                } else {
                    self.expr_width(a).max(self.expr_width(b))
                }
            }
            GExpr::Mux { t, e, .. } => self.expr_width(t).max(self.expr_width(e)),
        }
    }
}

const WIDTHS: &[usize] = &[1, 1, 2, 4, 8];

struct Gen<'a> {
    rng: FuzzRng,
    cfg: &'a GenConfig,
    module: GenModule,
}

impl Gen<'_> {
    /// A biased constant value for `width` bits: corner values (all-zeros,
    /// all-ones, one) show up often because they are what the optimizer's
    /// folding rules key on.
    fn const_value(&mut self, width: usize) -> u64 {
        let mask = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
        match self.rng.below(10) {
            0 | 1 => 0,
            2 | 3 => mask,
            4 => 1 & mask,
            _ => self.rng.next_u64() & mask,
        }
    }

    /// Signals in `scope` whose width is exactly `w`.
    fn refs_of_width(&self, scope: &[usize], w: usize) -> Vec<usize> {
        scope.iter().copied().filter(|&s| self.module.signals[s].width == w).collect()
    }

    /// A leaf expression of exact width `w` over `scope`.
    fn gen_leaf(&mut self, w: usize, scope: &[usize]) -> GExpr {
        let exact = self.refs_of_width(scope, w);
        let wider: Vec<usize> =
            scope.iter().copied().filter(|&s| self.module.signals[s].width > w).collect();
        let roll = self.rng.below(10);
        if roll < 5 && !exact.is_empty() {
            GExpr::Ref(*self.rng.pick(&exact))
        } else if roll < 7 && !wider.is_empty() {
            let sig = *self.rng.pick(&wider);
            let max_lo = self.module.signals[sig].width - w;
            let lo = self.rng.below(max_lo as u64 + 1) as usize;
            GExpr::Slice { sig, hi: lo + w - 1, lo }
        } else {
            GExpr::Const { width: w, value: self.const_value(w) }
        }
    }

    /// A 1-bit condition expression; biased toward negations so the
    /// optimizer's inverted-mux-select rewrite gets exercised constantly.
    fn gen_cond(&mut self, depth: usize, scope: &[usize]) -> GExpr {
        let inner = self.gen_expr(1, depth, scope);
        if self.rng.chance(45) {
            let op = if self.rng.chance(50) { GUnOp::Not } else { GUnOp::LogicNot };
            GExpr::Unary { op, a: Box::new(inner) }
        } else {
            inner
        }
    }

    /// An expression of exact width `w`, at most `depth` levels deep.
    fn gen_expr(&mut self, w: usize, depth: usize, scope: &[usize]) -> GExpr {
        if depth == 0 || self.rng.chance(18) {
            return self.gen_leaf(w, scope);
        }
        // Weighted construct menu. XOR chains, constant operands and muxes
        // dominate on purpose (see module docs).
        let roll = self.rng.below(100);
        if roll < 22 {
            // XOR/XNOR, with a constant operand 40% of the time.
            let op = if self.rng.chance(75) { GBinOp::Xor } else { GBinOp::Xnor };
            let a = self.gen_expr(w, depth - 1, scope);
            let b = if self.rng.chance(40) {
                GExpr::Const { width: w, value: self.const_value(w) }
            } else {
                self.gen_expr(w, depth - 1, scope)
            };
            GExpr::Binary { op, a: Box::new(a), b: Box::new(b) }
        } else if roll < 40 {
            // Mux with a (frequently inverted) 1-bit select.
            let cond = self.gen_cond(depth - 1, scope);
            let t = self.gen_expr(w, depth - 1, scope);
            let e = self.gen_expr(w, depth - 1, scope);
            GExpr::Mux { cond: Box::new(cond), t: Box::new(t), e: Box::new(e) }
        } else if roll < 54 {
            let op = *self.rng.pick(&[GBinOp::And, GBinOp::Or]);
            let a = self.gen_expr(w, depth - 1, scope);
            let b = if self.rng.chance(30) {
                GExpr::Const { width: w, value: self.const_value(w) }
            } else {
                self.gen_expr(w, depth - 1, scope)
            };
            GExpr::Binary { op, a: Box::new(a), b: Box::new(b) }
        } else if roll < 68 {
            let op = *self.rng.pick(&[GBinOp::Add, GBinOp::Add, GBinOp::Sub, GBinOp::Mul]);
            let a = self.gen_expr(w, depth - 1, scope);
            let b = self.gen_expr(w, depth - 1, scope);
            GExpr::Binary { op, a: Box::new(a), b: Box::new(b) }
        } else if roll < 76 {
            // Shift by a small constant amount (amount width ≤ w keeps the
            // result width at w).
            let op = if self.rng.chance(50) { GBinOp::Shl } else { GBinOp::Shr };
            let aw = w.min(3);
            let amount = GExpr::Const { width: aw, value: self.rng.below(1 << aw as u64) };
            let a = self.gen_expr(w, depth - 1, scope);
            GExpr::Binary { op, a: Box::new(a), b: Box::new(amount) }
        } else if roll < 84 {
            let op = if self.rng.chance(70) { GUnOp::Not } else { GUnOp::Neg };
            GExpr::Unary { op, a: Box::new(self.gen_expr(w, depth - 1, scope)) }
        } else if w == 1 {
            // 1-bit-only constructs: predicates, reductions, dynamic index.
            let roll1 = self.rng.below(10);
            if roll1 < 4 {
                let op = *self.rng.pick(&[
                    GBinOp::Eq,
                    GBinOp::Ne,
                    GBinOp::Lt,
                    GBinOp::Gt,
                    GBinOp::LogicAnd,
                    GBinOp::LogicOr,
                ]);
                let wa = *self.rng.pick(WIDTHS);
                let wb = if op == GBinOp::LogicAnd || op == GBinOp::LogicOr || self.rng.chance(70) {
                    wa
                } else {
                    *self.rng.pick(WIDTHS)
                };
                let a = self.gen_expr(wa, depth - 1, scope);
                let b = self.gen_expr(wb, depth - 1, scope);
                GExpr::Binary { op, a: Box::new(a), b: Box::new(b) }
            } else if roll1 < 7 {
                let op = *self.rng.pick(&[GUnOp::RedAnd, GUnOp::RedOr, GUnOp::RedXor]);
                let wa = *self.rng.pick(&[2usize, 4, 8]);
                GExpr::Unary { op, a: Box::new(self.gen_expr(wa, depth - 1, scope)) }
            } else {
                let wide: Vec<usize> =
                    scope.iter().copied().filter(|&s| self.module.signals[s].width > 1).collect();
                if let Some(&sig) = wide.first() {
                    // Index width sized so every representable index is in
                    // range (signal widths are powers of two).
                    let iw = (self.module.signals[sig].width - 1).max(1).ilog2() as usize + 1;
                    let index = self.gen_expr(iw, 1, scope);
                    GExpr::IndexDyn { sig, index: Box::new(index) }
                } else {
                    self.gen_leaf(1, scope)
                }
            }
        } else {
            self.gen_leaf(w, scope)
        }
    }
}

/// Generates a module from a seed. Deterministic: the same
/// `(seed, config)` yields a structurally equal module.
pub fn generate(seed: u64, cfg: &GenConfig) -> GenModule {
    let mut g = Gen {
        rng: FuzzRng::derive(seed, 0x67656e),
        cfg,
        module: GenModule {
            name: format!("fz{seed:x}"),
            signals: Vec::new(),
            n_inputs: 0,
            wires: Vec::new(),
            regs: Vec::new(),
            fsm: None,
            outputs: Vec::new(),
            extra_inputs: Vec::new(),
            dropped_inputs: Vec::new(),
        },
    };

    // Inputs.
    let n_inputs = 2 + g.rng.below(cfg.max_inputs.saturating_sub(1) as u64) as usize;
    for i in 0..n_inputs {
        let width = *g.rng.pick(WIDTHS);
        g.module.signals.push(Signal { name: format!("i{i}"), width });
    }
    g.module.n_inputs = n_inputs;

    let sequential = g.rng.chance(cfg.seq_chance) && cfg.max_regs > 0;
    let with_fsm = sequential && g.rng.chance(cfg.fsm_chance);

    // Declare registers (and the FSM state pair) before wires so wire
    // expressions can reference them: registers are state, so this cannot
    // create combinational cycles.
    let n_regs = if sequential { 1 + g.rng.below(g.cfg.max_regs as u64) as usize } else { 0 };
    let mut reg_sigs = Vec::new();
    for i in 0..n_regs {
        let width = *g.rng.pick(WIDTHS);
        let sig = g.module.signals.len();
        g.module.signals.push(Signal { name: format!("r{i}"), width });
        reg_sigs.push(sig);
    }
    let fsm_sigs = if with_fsm {
        let state = g.module.signals.len();
        g.module.signals.push(Signal { name: "state".into(), width: 2 });
        let state_n = g.module.signals.len();
        g.module.signals.push(Signal { name: "state_n".into(), width: 2 });
        Some((state, state_n))
    } else {
        None
    };

    // Wires: each may reference inputs, registers, the FSM state, and
    // earlier wires (a DAG by construction).
    let mut scope: Vec<usize> = (0..n_inputs).collect();
    scope.extend(&reg_sigs);
    if let Some((state, _)) = fsm_sigs {
        scope.push(state);
    }
    let n_wires = 2 + g.rng.below(cfg.max_wires.saturating_sub(1) as u64) as usize;
    let wire_base = g.module.signals.len();
    for i in 0..n_wires {
        let width = *g.rng.pick(WIDTHS);
        let sig = g.module.signals.len();
        g.module.signals.push(Signal { name: format!("w{i}"), width });
        let expr = g.gen_expr(width, cfg.max_depth, &scope);
        g.module.wires.push(WireDef { sig, expr });
        scope.push(sig);
    }

    // Register next-state expressions may reference everything except
    // `state_n` (kept private to the FSM update to rule out cycles).
    for &sig in &reg_sigs {
        let width = g.module.signals[sig].width;
        let init = g.const_value(width);
        let next = g.gen_expr(width, cfg.max_depth, &scope);
        g.module.regs.push(RegDef { sig, init, next });
    }

    // FSM arms.
    if let Some((state, state_n)) = fsm_sigs {
        let n_states = 3 + g.rng.below(2); // 3 or 4
        let mut arms = Vec::new();
        for label in 0..n_states {
            if g.rng.chance(85) {
                let expr = if g.rng.chance(45) {
                    GExpr::Const { width: 2, value: g.rng.below(n_states) }
                } else {
                    let cond = g.gen_cond(2, &scope);
                    let t = GExpr::Const { width: 2, value: g.rng.below(n_states) };
                    let e = GExpr::Const { width: 2, value: g.rng.below(n_states) };
                    GExpr::Mux { cond: Box::new(cond), t: Box::new(t), e: Box::new(e) }
                };
                arms.push((label, expr));
            }
        }
        g.module.fsm = Some(FsmDef { state, state_n, arms });
    }

    // Outputs: prefer late wires (deep cones) and registers, one signal
    // each; at least one output always exists.
    let n_outputs = 1 + g.rng.below(cfg.max_outputs as u64) as usize;
    let mut candidates: Vec<usize> = (wire_base..g.module.signals.len()).rev().collect();
    candidates.extend(reg_sigs.iter().rev());
    if let Some((state, _)) = fsm_sigs {
        candidates.push(state);
    }
    for (k, &sig) in candidates.iter().take(n_outputs).enumerate() {
        g.module.outputs.push((format!("o{k}"), sig));
    }

    g.module
}

fn range_str(width: usize) -> String {
    if width == 1 {
        String::new()
    } else {
        format!(" [{}:0]", width - 1)
    }
}

fn expr_str(m: &GenModule, e: &GExpr) -> String {
    match e {
        GExpr::Const { width, value } => format!("{width}'d{value}"),
        GExpr::Ref(s) => m.signals[*s].name.clone(),
        GExpr::Slice { sig, hi, lo } => format!("{}[{hi}:{lo}]", m.signals[*sig].name),
        GExpr::IndexDyn { sig, index } => {
            format!("{}[{}]", m.signals[*sig].name, expr_str(m, index))
        }
        GExpr::Unary { op, a } => {
            let t = match op {
                GUnOp::Not => "~",
                GUnOp::LogicNot => "!",
                GUnOp::Neg => "-",
                GUnOp::RedAnd => "&",
                GUnOp::RedOr => "|",
                GUnOp::RedXor => "^",
            };
            format!("{t}({})", expr_str(m, a))
        }
        GExpr::Binary { op, a, b } => {
            format!("({} {} {})", expr_str(m, a), op.token(), expr_str(m, b))
        }
        GExpr::Mux { cond, t, e } => {
            format!("(({}) ? ({}) : ({}))", expr_str(m, cond), expr_str(m, t), expr_str(m, e))
        }
    }
}

/// Renders a [`GenModule`] to Verilog text. Pure: equal modules render to
/// identical bytes.
pub fn render(m: &GenModule) -> String {
    let mut out = String::new();
    let mut ports: Vec<String> = Vec::new();
    if m.is_sequential() {
        ports.push("input clk".into());
        ports.push("input rst".into());
    }
    for (i, s) in m.signals[..m.n_inputs].iter().enumerate() {
        if m.dropped_inputs.contains(&i) {
            continue;
        }
        ports.push(format!("input{} {}", range_str(s.width), s.name));
    }
    for &sig in &m.extra_inputs {
        let s = &m.signals[sig];
        ports.push(format!("input{} {}", range_str(s.width), s.name));
    }
    for (name, sig) in &m.outputs {
        ports.push(format!("output{} {}", range_str(m.signals[*sig].width), name));
    }
    out.push_str(&format!("module {}(\n  {}\n);\n", m.name, ports.join(",\n  ")));

    for d in &m.wires {
        let s = &m.signals[d.sig];
        out.push_str(&format!("  wire{} {};\n", range_str(s.width), s.name));
    }
    for r in &m.regs {
        let s = &m.signals[r.sig];
        out.push_str(&format!("  reg{} {};\n", range_str(s.width), s.name));
    }
    if let Some(f) = &m.fsm {
        out.push_str("  reg [1:0] state;\n  reg [1:0] state_n;\n");
        let _ = f;
    }

    for d in &m.wires {
        out.push_str(&format!("  assign {} = {};\n", m.signals[d.sig].name, expr_str(m, &d.expr)));
    }
    for (name, sig) in &m.outputs {
        out.push_str(&format!("  assign {} = {};\n", name, m.signals[*sig].name));
    }

    if let Some(f) = &m.fsm {
        out.push_str("  always @(*) begin\n    state_n = state;\n    case (state)\n");
        for (label, expr) in &f.arms {
            out.push_str(&format!("      2'd{label}: state_n = {};\n", expr_str(m, expr)));
        }
        out.push_str("      default: state_n = 2'd0;\n    endcase\n  end\n");
    }

    if m.is_sequential() {
        out.push_str("  always @(posedge clk or posedge rst) begin\n    if (rst) begin\n");
        for r in &m.regs {
            let s = &m.signals[r.sig];
            out.push_str(&format!("      {} <= {}'d{};\n", s.name, s.width, r.init));
        }
        if m.fsm.is_some() {
            out.push_str("      state <= 2'd0;\n");
        }
        out.push_str("    end else begin\n");
        for r in &m.regs {
            out.push_str(&format!(
                "      {} <= {};\n",
                m.signals[r.sig].name,
                expr_str(m, &r.next)
            ));
        }
        if m.fsm.is_some() {
            out.push_str("      state <= state_n;\n");
        }
        out.push_str("    end\n  end\n");
    }

    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let a = generate(seed, &cfg);
            let b = generate(seed, &cfg);
            assert_eq!(a, b);
            assert_eq!(render(&a), render(&b));
        }
    }

    #[test]
    fn generated_modules_parse() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let m = generate(seed, &cfg);
            let src = render(&m);
            if let Err(e) = rtlock_rtl::parse(&src) {
                panic!("seed {seed} failed to parse: {e}\n{src}");
            }
        }
    }

    #[test]
    fn generated_modules_elaborate() {
        let cfg = GenConfig::default();
        for seed in 0..100 {
            let m = generate(seed, &cfg);
            let src = render(&m);
            let parsed = rtlock_rtl::parse(&src).expect("parses");
            if let Err(e) = rtlock_synth::elaborate(&parsed) {
                panic!("seed {seed} failed to elaborate: {e}\n{src}");
            }
        }
    }

    #[test]
    fn seeds_produce_distinct_modules() {
        let cfg = GenConfig::default();
        let a = render(&generate(1, &cfg));
        let b = render(&generate(2, &cfg));
        assert_ne!(a, b);
    }
}
