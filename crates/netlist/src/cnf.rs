//! Tseitin encoding of netlists into CNF.
//!
//! The encoder is deliberately low-level: callers supply the variables used
//! for primary inputs and for flip-flop outputs, which makes it equally
//! usable for combinational miters (SAT attack), time-frame expansion (BMC
//! attack), and equivalence checking. Literals use the DIMACS convention:
//! positive `i32` for a variable, negative for its complement.

use crate::gate::GateKind;
use crate::netlist::Netlist;

/// A CNF formula under construction.
///
/// # Examples
///
/// Encode a single AND gate and check satisfying structure:
///
/// ```
/// use rtlock_netlist::{Netlist, GateKind, CnfBuilder};
///
/// let mut n = Netlist::new("t");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let y = n.add_gate(GateKind::And, vec![a, b]);
/// n.add_output("y", y);
///
/// let mut cnf = CnfBuilder::new();
/// let va = cnf.fresh_var();
/// let vb = cnf.fresh_var();
/// let vars = cnf.encode_comb(&n, &[va, vb], &[]);
/// cnf.assert_lit(vars[y.index()]);   // force y = 1
/// assert!(cnf.clauses().len() >= 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CnfBuilder {
    clauses: Vec<Vec<i32>>,
    next_var: i32,
}

impl CnfBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CnfBuilder { clauses: Vec::new(), next_var: 0 }
    }

    /// Allocates a fresh variable and returns its positive literal.
    pub fn fresh_var(&mut self) -> i32 {
        self.next_var += 1;
        self.next_var
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.next_var as usize
    }

    /// The clauses accumulated so far.
    pub fn clauses(&self) -> &[Vec<i32>] {
        &self.clauses
    }

    /// Consumes the builder, returning `(num_vars, clauses)`.
    pub fn into_parts(self) -> (usize, Vec<Vec<i32>>) {
        (self.next_var as usize, self.clauses)
    }

    /// Adds a raw clause.
    ///
    /// # Panics
    ///
    /// Panics if the clause is empty or mentions an unallocated variable.
    pub fn add_clause(&mut self, lits: &[i32]) {
        assert!(!lits.is_empty(), "empty clause");
        for &l in lits {
            assert!(l != 0 && l.unsigned_abs() as i32 <= self.next_var, "literal {l} out of range");
        }
        self.clauses.push(lits.to_vec());
    }

    /// Asserts a single literal.
    pub fn assert_lit(&mut self, lit: i32) {
        self.add_clause(&[lit]);
    }

    /// Constrains `a == b`.
    pub fn assert_equal(&mut self, a: i32, b: i32) {
        self.add_clause(&[-a, b]);
        self.add_clause(&[a, -b]);
    }

    /// Returns a literal `o` constrained to `a XOR b`.
    pub fn xor_lit(&mut self, a: i32, b: i32) -> i32 {
        let o = self.fresh_var();
        self.add_clause(&[-o, a, b]);
        self.add_clause(&[-o, -a, -b]);
        self.add_clause(&[o, -a, b]);
        self.add_clause(&[o, a, -b]);
        o
    }

    /// Returns a literal `o` constrained to `OR(lits)`.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty.
    pub fn or_lit(&mut self, lits: &[i32]) -> i32 {
        assert!(!lits.is_empty(), "or over empty set");
        let o = self.fresh_var();
        let mut big = vec![-o];
        big.extend_from_slice(lits);
        self.clauses.push(big);
        for &l in lits {
            self.add_clause(&[o, -l]);
        }
        o
    }

    /// Encodes the combinational function of `netlist`.
    ///
    /// `in_vars[i]` is the literal for the i-th primary input (in
    /// [`Netlist::inputs`] order); `state_vars[j]` is the literal for the
    /// j-th flip-flop's *output* (in [`Netlist::dffs`] order) — flip-flops
    /// are cut, so the returned map gives the variable of every gate output,
    /// from which callers can also read each D-pin variable
    /// (`vars[dff.fanin[0]]`) to build the next-state relation.
    ///
    /// Returns a per-gate map `vars` with `vars[g.index()]` the literal of
    /// gate `g`'s output.
    ///
    /// # Panics
    ///
    /// Panics if `in_vars`/`state_vars` lengths do not match the netlist, or
    /// if the netlist has a combinational cycle.
    pub fn encode_comb(&mut self, netlist: &Netlist, in_vars: &[i32], state_vars: &[i32]) -> Vec<i32> {
        let inputs = netlist.inputs();
        let dffs = netlist.dffs();
        assert_eq!(in_vars.len(), inputs.len(), "wrong number of input vars");
        assert_eq!(state_vars.len(), dffs.len(), "wrong number of state vars");
        let mut vars = vec![0i32; netlist.len()];
        for (&g, &v) in inputs.iter().zip(in_vars) {
            vars[g.index()] = v;
        }
        for (&g, &v) in dffs.iter().zip(state_vars) {
            vars[g.index()] = v;
        }
        let order = netlist.topo_order().expect("combinational cycle in CNF encoding");
        for id in order {
            let g = netlist.gate(id);
            if !g.kind.is_logic() {
                if vars[id.index()] == 0 {
                    // Constants.
                    let v = self.fresh_var();
                    match g.kind {
                        GateKind::Const0 => self.assert_lit(-v),
                        GateKind::Const1 => self.assert_lit(v),
                        _ => unreachable!("inputs and dffs pre-assigned"),
                    }
                    vars[id.index()] = v;
                }
                continue;
            }
            let pin = |i: usize| vars[g.fanin[i].index()];
            let o = self.fresh_var();
            match g.kind {
                GateKind::Buf => {
                    let a = pin(0);
                    self.assert_equal(o, a);
                }
                GateKind::Not => {
                    let a = pin(0);
                    self.assert_equal(o, -a);
                }
                GateKind::And | GateKind::Nand => {
                    let (a, b) = (pin(0), pin(1));
                    let t = if g.kind == GateKind::And { o } else { -o };
                    self.add_clause(&[-t, a]);
                    self.add_clause(&[-t, b]);
                    self.add_clause(&[t, -a, -b]);
                }
                GateKind::Or | GateKind::Nor => {
                    let (a, b) = (pin(0), pin(1));
                    let t = if g.kind == GateKind::Or { o } else { -o };
                    self.add_clause(&[t, -a]);
                    self.add_clause(&[t, -b]);
                    self.add_clause(&[-t, a, b]);
                }
                GateKind::Xor | GateKind::Xnor => {
                    let (a, b) = (pin(0), pin(1));
                    let t = if g.kind == GateKind::Xor { o } else { -o };
                    self.add_clause(&[-t, a, b]);
                    self.add_clause(&[-t, -a, -b]);
                    self.add_clause(&[t, -a, b]);
                    self.add_clause(&[t, a, -b]);
                }
                GateKind::Mux => {
                    let (s, a, b) = (pin(0), pin(1), pin(2));
                    // s=0 -> o=a ; s=1 -> o=b
                    self.add_clause(&[s, -a, o]);
                    self.add_clause(&[s, a, -o]);
                    self.add_clause(&[-s, -b, o]);
                    self.add_clause(&[-s, b, -o]);
                }
                GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff { .. } => {
                    unreachable!("handled above")
                }
            }
            vars[id.index()] = o;
        }
        vars
    }

    /// Convenience: allocates fresh vars for all inputs and flip-flops of
    /// `netlist`, encodes it, and returns `(input_vars, state_vars,
    /// gate_vars)`.
    pub fn encode_fresh(&mut self, netlist: &Netlist) -> (Vec<i32>, Vec<i32>, Vec<i32>) {
        let in_vars: Vec<i32> = netlist.inputs().iter().map(|_| self.fresh_var()).collect();
        let state_vars: Vec<i32> = netlist.dffs().iter().map(|_| self.fresh_var()).collect();
        let gate_vars = self.encode_comb(netlist, &in_vars, &state_vars);
        (in_vars, state_vars, gate_vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    /// Brute-force checks that the CNF agrees with simulation for all input
    /// combinations, by unit-asserting each input pattern and the expected
    /// output value, then checking satisfiability by exhaustive assignment.
    fn cnf_matches_gate(kind: GateKind) {
        let arity = kind.arity();
        let mut n = Netlist::new("t");
        let ins: Vec<_> = (0..arity).map(|i| n.add_input(format!("i{i}"))).collect();
        let g = n.add_gate(kind, ins.clone());
        n.add_output("y", g);

        for pattern in 0..1u32 << arity {
            let bools: Vec<bool> = (0..arity).map(|i| pattern >> i & 1 == 1).collect();
            let expect = kind.eval(&bools);
            let mut cnf = CnfBuilder::new();
            let in_vars: Vec<i32> = ins.iter().map(|_| cnf.fresh_var()).collect();
            let vars = cnf.encode_comb(&n, &in_vars, &[]);
            for (v, &b) in in_vars.iter().zip(&bools) {
                cnf.assert_lit(if b { *v } else { -*v });
            }
            cnf.assert_lit(if expect { vars[g.index()] } else { -vars[g.index()] });
            assert!(brute_sat(&cnf), "{kind:?} pattern {pattern:b} should be SAT");
            // And the opposite output value must be UNSAT.
            let mut cnf2 = CnfBuilder::new();
            let in_vars: Vec<i32> = ins.iter().map(|_| cnf2.fresh_var()).collect();
            let vars = cnf2.encode_comb(&n, &in_vars, &[]);
            for (v, &b) in in_vars.iter().zip(&bools) {
                cnf2.assert_lit(if b { *v } else { -*v });
            }
            cnf2.assert_lit(if expect { -vars[g.index()] } else { vars[g.index()] });
            assert!(!brute_sat(&cnf2), "{kind:?} pattern {pattern:b} negated should be UNSAT");
        }
    }

    fn brute_sat(cnf: &CnfBuilder) -> bool {
        let nv = cnf.num_vars();
        assert!(nv <= 20, "brute force limit");
        'outer: for assignment in 0..1u64 << nv {
            for clause in cnf.clauses() {
                let ok = clause.iter().any(|&l| {
                    let v = l.unsigned_abs() as usize - 1;
                    let val = assignment >> v & 1 == 1;
                    (l > 0) == val
                });
                if !ok {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    #[test]
    fn all_gate_kinds_encode_correctly() {
        use GateKind::*;
        for kind in [Buf, Not, And, Nand, Or, Nor, Xor, Xnor, Mux] {
            cnf_matches_gate(kind);
        }
    }

    #[test]
    fn constants_encode() {
        let mut n = Netlist::new("t");
        let c = n.add_gate(GateKind::Const1, vec![]);
        n.add_output("y", c);
        let mut cnf = CnfBuilder::new();
        let vars = cnf.encode_comb(&n, &[], &[]);
        cnf.assert_lit(-vars[c.index()]);
        assert!(!brute_sat(&cnf), "const1 cannot be 0");
    }

    #[test]
    fn state_vars_cut_flip_flops() {
        let mut n = Netlist::new("t");
        let d = n.add_input("d");
        let q = n.add_gate(GateKind::Dff { init: false }, vec![d]);
        let y = n.add_gate(GateKind::Not, vec![q]);
        n.add_output("y", y);
        let mut cnf = CnfBuilder::new();
        let (in_vars, state_vars, gate_vars) = cnf.encode_fresh(&n);
        // q is free: asserting q=1 with d=0 must stay satisfiable.
        cnf.assert_lit(-in_vars[0]);
        cnf.assert_lit(state_vars[0]);
        cnf.assert_lit(gate_vars[y.index()]);
        assert!(!brute_sat(&cnf), "y must be 0 when q=1");
    }

    #[test]
    fn xor_lit_and_or_lit_helpers() {
        let mut cnf = CnfBuilder::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        let x = cnf.xor_lit(a, b);
        cnf.assert_lit(a);
        cnf.assert_lit(b);
        cnf.assert_lit(x);
        assert!(!brute_sat(&cnf), "1 xor 1 = 0");

        let mut cnf = CnfBuilder::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        let o = cnf.or_lit(&[a, b]);
        cnf.assert_lit(-a);
        cnf.assert_lit(-b);
        cnf.assert_lit(o);
        assert!(!brute_sat(&cnf), "0 or 0 = 0");
    }

    #[test]
    #[should_panic(expected = "wrong number of input vars")]
    fn input_var_count_checked() {
        let mut n = Netlist::new("t");
        let _a = n.add_input("a");
        let mut cnf = CnfBuilder::new();
        cnf.encode_comb(&n, &[], &[]);
    }
}
