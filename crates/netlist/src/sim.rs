//! Bit-parallel gate-level simulation.
//!
//! Evaluates 64 input patterns per pass (one per bit of a `u64` word),
//! which is the workhorse behind fault simulation, switching-activity
//! estimation for the power model, and output-corruption measurements.

use crate::gate::{GateId, GateKind};
use crate::netlist::{CycleError, Netlist};

/// Bit-parallel simulator over a netlist.
///
/// Flip-flops hold their state inside the simulator; call [`NetSim::reset`]
/// to load reset values and [`NetSim::step`] to advance one clock cycle.
/// For pure combinational evaluation use [`NetSim::eval_comb`].
///
/// # Examples
///
/// ```
/// use rtlock_netlist::{Netlist, GateKind, NetSim};
///
/// let mut n = Netlist::new("t");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let y = n.add_gate(GateKind::And, vec![a, b]);
/// n.add_output("y", y);
///
/// let mut sim = NetSim::new(&n)?;
/// sim.set_input(a, 0b1100);
/// sim.set_input(b, 0b1010);
/// sim.eval_comb();
/// assert_eq!(sim.value(y) & 0xF, 0b1000);
/// # Ok::<(), rtlock_netlist::CycleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetSim<'n> {
    netlist: &'n Netlist,
    order: Vec<GateId>,
    values: Vec<u64>,
}

impl<'n> NetSim<'n> {
    /// Creates a simulator (computes a topological order once).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if combinational gates form a cycle.
    pub fn new(netlist: &'n Netlist) -> Result<Self, CycleError> {
        let order = netlist.topo_order()?;
        let mut values = vec![0; netlist.len()];
        for id in netlist.ids() {
            if netlist.gate(id).kind == GateKind::Const1 {
                values[id.index()] = u64::MAX;
            }
        }
        Ok(NetSim { netlist, order, values })
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Sets the 64 parallel values of a primary input.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not an input gate.
    pub fn set_input(&mut self, input: GateId, patterns: u64) {
        assert_eq!(self.netlist.gate(input).kind, GateKind::Input, "{input} is not an input");
        self.values[input.index()] = patterns;
    }

    /// Applies one boolean vector across all inputs (in input order),
    /// replicated over all 64 lanes.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the number of inputs.
    pub fn set_inputs_bool(&mut self, bits: &[bool]) {
        let inputs = self.netlist.inputs();
        assert_eq!(bits.len(), inputs.len(), "input vector length mismatch");
        for (&g, &b) in inputs.iter().zip(bits) {
            self.values[g.index()] = if b { u64::MAX } else { 0 };
        }
    }

    /// Current 64-lane value of a net.
    pub fn value(&self, gate: GateId) -> u64 {
        self.values[gate.index()]
    }

    /// Directly overrides a flip-flop's state (used to load scan values).
    ///
    /// # Panics
    ///
    /// Panics if `dff` is not a flip-flop.
    pub fn set_state(&mut self, dff: GateId, patterns: u64) {
        assert!(self.netlist.gate(dff).kind.is_dff(), "{dff} is not a flip-flop");
        self.values[dff.index()] = patterns;
    }

    /// Loads every flip-flop's reset value (across all lanes).
    pub fn reset(&mut self) {
        for id in self.netlist.ids() {
            if let GateKind::Dff { init } = self.netlist.gate(id).kind {
                self.values[id.index()] = if init { u64::MAX } else { 0 };
            }
        }
    }

    /// Recomputes all combinational gates with current inputs and state.
    pub fn eval_comb(&mut self) {
        for &id in &self.order {
            let g = self.netlist.gate(id);
            if !g.kind.is_logic() {
                continue;
            }
            let v = match g.kind {
                GateKind::Buf => self.values[g.fanin[0].index()],
                GateKind::Not => !self.values[g.fanin[0].index()],
                GateKind::And => self.values[g.fanin[0].index()] & self.values[g.fanin[1].index()],
                GateKind::Nand => !(self.values[g.fanin[0].index()] & self.values[g.fanin[1].index()]),
                GateKind::Or => self.values[g.fanin[0].index()] | self.values[g.fanin[1].index()],
                GateKind::Nor => !(self.values[g.fanin[0].index()] | self.values[g.fanin[1].index()]),
                GateKind::Xor => self.values[g.fanin[0].index()] ^ self.values[g.fanin[1].index()],
                GateKind::Xnor => !(self.values[g.fanin[0].index()] ^ self.values[g.fanin[1].index()]),
                GateKind::Mux => {
                    let s = self.values[g.fanin[0].index()];
                    (!s & self.values[g.fanin[1].index()]) | (s & self.values[g.fanin[2].index()])
                }
                GateKind::Const0 => 0,
                GateKind::Const1 => u64::MAX,
                GateKind::Input | GateKind::Dff { .. } => unreachable!("filtered above"),
            };
            self.values[id.index()] = v;
        }
    }

    /// One clock cycle: evaluate combinational logic, clock all flip-flops
    /// simultaneously, then re-evaluate so that outputs reflect the
    /// post-edge state (matching the RTL simulator's `step`).
    pub fn step(&mut self) {
        self.eval_comb();
        let dffs = self.netlist.dffs();
        let next: Vec<u64> = dffs.iter().map(|&d| self.values[self.netlist.gate(d).fanin[0].index()]).collect();
        for (&d, v) in dffs.iter().zip(next) {
            self.values[d.index()] = v;
        }
        self.eval_comb();
    }

    /// Reads output values in output order.
    pub fn outputs(&self) -> Vec<u64> {
        self.netlist.outputs().iter().map(|&(_, g)| self.values[g.index()]).collect()
    }

    /// Loads one 64-pattern sweep: every `(input, word)` pair drives 64
    /// independent patterns, one per bit lane; inputs not listed keep
    /// their current value.
    ///
    /// # Panics
    ///
    /// Panics if a listed gate is not an input.
    pub fn load_sweep(&mut self, assigns: &[(GateId, u64)]) {
        for &(g, w) in assigns {
            self.set_input(g, w);
        }
    }

    /// Extracts one lane (0..64) of a net as a boolean.
    pub fn lane(&self, gate: GateId, lane: usize) -> bool {
        debug_assert!(lane < 64);
        self.values[gate.index()] >> lane & 1 == 1
    }

    /// Estimates per-gate switching activity: the fraction of lanes in
    /// which each gate toggled between two random evaluation rounds,
    /// averaged over `rounds` rounds. Deterministic for a given `seed`.
    pub fn toggle_activity(&mut self, rounds: usize, seed: u64) -> Vec<f64> {
        let mut rng = seed | 1;
        let mut next_rand = move || {
            // xorshift64*
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let mut toggles = vec![0u64; self.netlist.len()];
        self.reset();
        // Key inputs are tamper-proof-memory constants in operation, and
        // scan controls (inputs named `scan_*`) are held low in mission
        // mode; random toggling there would wildly overestimate dynamic
        // power.
        let inputs: Vec<GateId> = self
            .netlist
            .inputs()
            .iter()
            .copied()
            .filter(|g| !self.netlist.key_inputs.contains(g))
            .filter(|&g| !self.netlist.gate_name(g).is_some_and(|n| n.starts_with("scan_")))
            .collect();
        let mut prev: Option<Vec<u64>> = None;
        for _ in 0..rounds.max(2) {
            for &i in &inputs {
                let r = next_rand();
                self.values[i.index()] = r;
            }
            self.step();
            if let Some(p) = &prev {
                for (idx, t) in toggles.iter_mut().enumerate() {
                    *t += (p[idx] ^ self.values[idx]).count_ones() as u64;
                }
            }
            prev = Some(self.values.clone());
        }
        let denom = (rounds.max(2) as f64 - 1.0) * 64.0;
        toggles.into_iter().map(|t| t as f64 / denom).collect()
    }
}

/// Deterministic 64-lane pattern generator for simulation sweeps
/// (xorshift64* over a SplitMix64-hashed seed). Every word is 64
/// independent input patterns; [`SweepRng::biased_word`] skews the
/// per-lane bit probability for SCOAP-guided pattern generation.
#[derive(Debug, Clone)]
pub struct SweepRng(u64);

impl SweepRng {
    /// Seeds the stream (any seed, including 0, is valid).
    pub fn new(seed: u64) -> SweepRng {
        // SplitMix64 scrambles low-entropy seeds before xorshift.
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SweepRng((x ^ (x >> 31)) | 1)
    }

    /// Next uniform 64-pattern word (each lane bit is fair).
    pub fn word(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next biased word: `bias > 0` ORs `bias` uniform words (lane bits
    /// lean toward 1 with probability `1 - 2^-(bias+1)`), `bias < 0` ANDs
    /// them (lean toward 0), `bias == 0` is uniform.
    pub fn biased_word(&mut self, bias: i8) -> u64 {
        let mut w = self.word();
        for _ in 0..bias.unsigned_abs() {
            if bias > 0 {
                w |= self.word();
            } else {
                w &= self.word();
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn full_adder() -> (Netlist, GateId, GateId, GateId) {
        let mut n = Netlist::new("fa");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let cin = n.add_input("cin");
        let axb = n.add_gate(GateKind::Xor, vec![a, b]);
        let s = n.add_gate(GateKind::Xor, vec![axb, cin]);
        let ab = n.add_gate(GateKind::And, vec![a, b]);
        let cx = n.add_gate(GateKind::And, vec![axb, cin]);
        let cout = n.add_gate(GateKind::Or, vec![ab, cx]);
        n.add_output("s", s);
        n.add_output("cout", cout);
        (n, a, b, cin)
    }

    #[test]
    fn full_adder_truth_table() {
        let (n, a, b, cin) = full_adder();
        let mut sim = NetSim::new(&n).unwrap();
        // 8 patterns in the low lanes.
        sim.set_input(a, 0b10101010);
        sim.set_input(b, 0b11001100);
        sim.set_input(cin, 0b11110000);
        sim.eval_comb();
        let outs = sim.outputs();
        assert_eq!(outs[0] & 0xFF, 0b10010110, "sum");
        assert_eq!(outs[1] & 0xFF, 0b11101000, "carry");
    }

    #[test]
    fn dff_state_advances_on_step() {
        let mut n = Netlist::new("tff");
        let en = n.add_input("en");
        let q = n.add_gate(GateKind::Dff { init: false }, vec![en]);
        let nq = n.add_gate(GateKind::Xor, vec![q, en]);
        n.gate_mut(q).fanin[0] = nq;
        n.add_output("q", q);
        let mut sim = NetSim::new(&n).unwrap();
        sim.reset();
        sim.set_input(en, u64::MAX);
        sim.step();
        assert_eq!(sim.outputs()[0], u64::MAX, "toggled once");
        sim.step();
        assert_eq!(sim.outputs()[0], 0, "toggled back");
    }

    #[test]
    fn reset_loads_init_values() {
        let mut n = Netlist::new("r");
        let d = n.add_input("d");
        let q0 = n.add_gate(GateKind::Dff { init: false }, vec![d]);
        let q1 = n.add_gate(GateKind::Dff { init: true }, vec![d]);
        n.add_output("q0", q0);
        n.add_output("q1", q1);
        let mut sim = NetSim::new(&n).unwrap();
        sim.reset();
        assert_eq!(sim.value(q0), 0);
        assert_eq!(sim.value(q1), u64::MAX);
    }

    #[test]
    fn set_inputs_bool_replicates_lanes() {
        let (n, ..) = full_adder();
        let mut sim = NetSim::new(&n).unwrap();
        sim.set_inputs_bool(&[true, true, false]);
        sim.eval_comb();
        assert_eq!(sim.outputs()[0], 0, "sum 1+1+0 = 0 carry 1");
        assert_eq!(sim.outputs()[1], u64::MAX);
    }

    #[test]
    fn toggle_activity_nonzero_for_active_logic() {
        let (n, ..) = full_adder();
        let mut sim = NetSim::new(&n).unwrap();
        let act = sim.toggle_activity(32, 42);
        let s_gate = n.outputs()[0].1;
        assert!(act[s_gate.index()] > 0.2, "xor output toggles often, got {}", act[s_gate.index()]);
        // Deterministic for same seed.
        let act2 = NetSim::new(&n).unwrap().toggle_activity(32, 42);
        assert_eq!(act, act2);
    }
}
