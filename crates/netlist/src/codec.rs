//! Exact byte codec for [`Netlist`].
//!
//! The content-addressed artifact cache (`rtlock-artifacts`) stores
//! elaborated and optimized netlists on disk and must get back *exactly*
//! the structure it put in — including details the public construction API
//! cannot reproduce, such as the primary-input order after
//! [`Netlist::cut_dff`] (which appends old flip-flop nets to the input
//! list) and flip-flop fanins that point forward in the gate array
//! (rejected by [`Netlist::add_gate`], which only accepts backward
//! references). The codec therefore lives inside `rtlock-netlist`, where
//! it can rebuild the private fields directly, and round-trips every field
//! bit-for-bit: [`decode`]`(`[`encode`]`(n)) == n` for any well-formed
//! netlist.
//!
//! The encoding is deterministic (no `HashMap` iteration anywhere), so
//! equal netlists always produce equal bytes — the cache uses the encoded
//! form as the exact identity of an entry, making collisions of the
//! structural hash harmless.
//!
//! Decoding is hardened against corruption: every read is bounds-checked
//! and every structural invariant (fanin arity, id ranges, UTF-8 names) is
//! re-validated, so a torn or bit-flipped cache entry yields a
//! [`CodecError`], never a panic or an invalid netlist.

use crate::gate::{Gate, GateId, GateKind};
use crate::netlist::{Netlist, Port};
use std::fmt;

/// Format magic, bumped on any layout change.
const MAGIC: &[u8; 4] = b"RNC1";

/// Error raised when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "netlist codec: {}", self.reason)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(reason: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError { reason: reason.into() })
}

fn kind_tag(kind: GateKind) -> u8 {
    match kind {
        GateKind::Input => 0,
        GateKind::Const0 => 1,
        GateKind::Const1 => 2,
        GateKind::Buf => 3,
        GateKind::Not => 4,
        GateKind::And => 5,
        GateKind::Nand => 6,
        GateKind::Or => 7,
        GateKind::Nor => 8,
        GateKind::Xor => 9,
        GateKind::Xnor => 10,
        GateKind::Mux => 11,
        GateKind::Dff { init: false } => 12,
        GateKind::Dff { init: true } => 13,
    }
}

fn tag_kind(tag: u8) -> Result<GateKind, CodecError> {
    Ok(match tag {
        0 => GateKind::Input,
        1 => GateKind::Const0,
        2 => GateKind::Const1,
        3 => GateKind::Buf,
        4 => GateKind::Not,
        5 => GateKind::And,
        6 => GateKind::Nand,
        7 => GateKind::Or,
        8 => GateKind::Nor,
        9 => GateKind::Xor,
        10 => GateKind::Xnor,
        11 => GateKind::Mux,
        12 => GateKind::Dff { init: false },
        13 => GateKind::Dff { init: true },
        other => return err(format!("unknown gate kind tag {other}")),
    })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_ids(out: &mut Vec<u8>, ids: &[GateId]) {
    put_u32(out, ids.len() as u32);
    for &id in ids {
        put_u32(out, id.0);
    }
}

/// Encodes a netlist into a self-contained deterministic byte string.
pub fn encode(n: &Netlist) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + n.len() * 8);
    out.extend_from_slice(MAGIC);
    put_str(&mut out, &n.name);
    put_u32(&mut out, n.len() as u32);
    for id in n.ids() {
        let g = n.gate(id);
        out.push(kind_tag(g.kind));
        for &f in &g.fanin {
            put_u32(&mut out, f.0);
        }
        match n.gate_name(id) {
            Some(name) => {
                out.push(1);
                put_str(&mut out, name);
            }
            None => out.push(0),
        }
    }
    put_ids(&mut out, n.inputs());
    put_u32(&mut out, n.outputs().len() as u32);
    for (name, driver) in n.outputs() {
        put_str(&mut out, name);
        put_u32(&mut out, driver.0);
    }
    for ports in [&n.input_ports, &n.output_ports] {
        put_u32(&mut out, ports.len() as u32);
        for p in ports {
            put_str(&mut out, &p.name);
            put_ids(&mut out, &p.bits);
        }
    }
    put_ids(&mut out, &n.key_inputs);
    put_ids(&mut out, &n.scan_chain);
    out
}

/// Bounds-checked cursor over the encoded bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => err("truncated"),
        }
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a count that will be used to allocate `elem_bytes`-sized
    /// elements; rejected if the remaining input is too short to possibly
    /// hold them (caps allocations on corrupt input).
    fn count(&mut self, elem_bytes: usize) -> Result<usize, CodecError> {
        let c = self.u32()? as usize;
        if c.saturating_mul(elem_bytes) > self.bytes.len() - self.pos {
            return err("count exceeds remaining input");
        }
        Ok(c)
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let len = self.count(1)?;
        match std::str::from_utf8(self.take(len)?) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => err("invalid UTF-8 in name"),
        }
    }

    fn id(&mut self, max: usize) -> Result<GateId, CodecError> {
        let raw = self.u32()?;
        if (raw as usize) < max {
            Ok(GateId(raw))
        } else {
            err(format!("gate id {raw} out of range (< {max})"))
        }
    }

    fn ids(&mut self, max: usize) -> Result<Vec<GateId>, CodecError> {
        let c = self.count(4)?;
        (0..c).map(|_| self.id(max)).collect()
    }
}

/// Decodes bytes produced by [`encode`], re-validating every invariant.
pub fn decode(bytes: &[u8]) -> Result<Netlist, CodecError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return err("bad magic");
    }
    let name = r.string()?;
    let gate_count = r.count(2)?;
    let mut gates = Vec::with_capacity(gate_count);
    let mut gate_names = Vec::with_capacity(gate_count);
    for _ in 0..gate_count {
        let kind = tag_kind(r.u8()?)?;
        let fanin: Vec<GateId> =
            (0..kind.arity()).map(|_| r.id(gate_count)).collect::<Result<_, _>>()?;
        gates.push(Gate::new(kind, fanin));
        gate_names.push(match r.u8()? {
            0 => None,
            1 => Some(r.string()?),
            other => return err(format!("bad name flag {other}")),
        });
    }
    let inputs = r.ids(gate_count)?;
    for &g in &inputs {
        if gates[g.index()].kind != GateKind::Input {
            return err(format!("input list entry {g} is not an Input gate"));
        }
    }
    let out_count = r.count(8)?;
    let mut outputs = Vec::with_capacity(out_count);
    for _ in 0..out_count {
        let oname = r.string()?;
        let driver = r.id(gate_count)?;
        outputs.push((oname, driver));
    }
    let mut port_groups = Vec::new();
    for _ in 0..2 {
        let c = r.count(8)?;
        let mut ports = Vec::with_capacity(c);
        for _ in 0..c {
            let pname = r.string()?;
            let bits = r.ids(gate_count)?;
            ports.push(Port { name: pname, bits });
        }
        port_groups.push(ports);
    }
    let output_ports = port_groups.pop().expect("two groups");
    let input_ports = port_groups.pop().expect("two groups");
    let key_inputs = r.ids(gate_count)?;
    for &g in &key_inputs {
        if gates[g.index()].kind != GateKind::Input {
            return err(format!("key input {g} is not an Input gate"));
        }
    }
    let scan_chain = r.ids(gate_count)?;
    for &g in &scan_chain {
        if !gates[g.index()].kind.is_dff() {
            return err(format!("scan chain entry {g} is not a flip-flop"));
        }
    }
    if r.pos != bytes.len() {
        return err("trailing bytes");
    }
    Ok(Netlist::from_raw_parts(
        name,
        gates,
        gate_names,
        inputs,
        outputs,
        input_ports,
        output_ports,
        key_inputs,
        scan_chain,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Netlist {
        let mut n = Netlist::new("sample");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(GateKind::Xor, vec![a, b]);
        let q = n.add_named_gate(GateKind::Dff { init: true }, vec![x], "state_q");
        // Feedback through the flip-flop: patch the D pin forward.
        let fb = n.add_gate(GateKind::Nand, vec![q, a]);
        n.gate_mut(q).fanin[0] = fb;
        n.add_output("y", fb);
        n.mark_key_input(b);
        n.input_ports.push(Port { name: "ab".into(), bits: vec![a, b] });
        n.output_ports.push(Port { name: "y".into(), bits: vec![fb] });
        n.scan_chain.push(q);
        n
    }

    #[test]
    fn roundtrip_exact() {
        let n = sample();
        let bytes = encode(&n);
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, n);
        // Determinism: encoding the decoded netlist is byte-identical.
        assert_eq!(encode(&back), bytes);
    }

    #[test]
    fn roundtrip_preserves_cut_dff_input_order() {
        let mut n = sample();
        let dffs = n.dffs();
        n.cut_dff(dffs[0], "cut_q");
        let back = decode(&encode(&n)).expect("decode");
        assert_eq!(back, n);
        assert_eq!(back.inputs(), n.inputs());
    }

    #[test]
    fn corruption_is_an_error_never_a_panic() {
        let n = sample();
        let bytes = encode(&n);
        // Truncations at every length.
        for len in 0..bytes.len() {
            let _ = decode(&bytes[..len]);
        }
        // Single-byte flips at every position must error or decode to a
        // well-formed netlist (flipping a name byte is still valid data).
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0x41;
            let _ = decode(&m);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&sample());
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }
}
