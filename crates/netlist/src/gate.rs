//! Gate primitives of the technology library.

use std::fmt;

/// Identifier of a gate inside a [`Netlist`](crate::Netlist).
///
/// A gate's output net is identified with the gate itself (single-output
/// library), so `GateId` doubles as a net id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub u32);

impl GateId {
    /// Position in the netlist's gate array.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Kinds of gates in the library.
///
/// `Mux` selects `fanin[1]` when the select (`fanin[0]`) is 0 and
/// `fanin[2]` when it is 1. `Dff` samples `fanin[0]` on the (implicit
/// global) clock edge and resets to `init`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input (no fanin).
    Input,
    /// Constant 0.
    Const0,
    /// Constant 1.
    Const1,
    /// Buffer.
    Buf,
    /// Inverter.
    Not,
    /// 2-input AND.
    And,
    /// 2-input NAND.
    Nand,
    /// 2-input OR.
    Or,
    /// 2-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// 2:1 multiplexer, fanin `[sel, a, b]` → `sel ? b : a`.
    Mux,
    /// D flip-flop, fanin `[d]`.
    Dff {
        /// Reset/initial value.
        init: bool,
    },
}

impl GateKind {
    /// Number of fanin pins this kind requires.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Buf | GateKind::Not | GateKind::Dff { .. } => 1,
            GateKind::Mux => 3,
            _ => 2,
        }
    }

    /// `true` for combinational logic gates (excludes inputs, constants and
    /// flip-flops).
    pub fn is_logic(self) -> bool {
        !matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff { .. })
    }

    /// `true` for flip-flops.
    pub fn is_dff(self) -> bool {
        matches!(self, GateKind::Dff { .. })
    }

    /// Evaluates the gate function over boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `ins.len() != self.arity()` or when called on
    /// `Input`/`Dff` (which have no combinational function).
    pub fn eval(self, ins: &[bool]) -> bool {
        assert_eq!(ins.len(), self.arity(), "wrong fanin count for {self:?}");
        match self {
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => ins[0],
            GateKind::Not => !ins[0],
            GateKind::And => ins[0] & ins[1],
            GateKind::Nand => !(ins[0] & ins[1]),
            GateKind::Or => ins[0] | ins[1],
            GateKind::Nor => !(ins[0] | ins[1]),
            GateKind::Xor => ins[0] ^ ins[1],
            GateKind::Xnor => !(ins[0] ^ ins[1]),
            GateKind::Mux => {
                if ins[0] {
                    ins[2]
                } else {
                    ins[1]
                }
            }
            GateKind::Input | GateKind::Dff { .. } => {
                panic!("{self:?} has no combinational function")
            }
        }
    }

    /// Evaluates the gate over 64 patterns at once (bit-parallel).
    ///
    /// # Panics
    ///
    /// Same conditions as [`GateKind::eval`].
    pub fn eval64(self, ins: &[u64]) -> u64 {
        assert_eq!(ins.len(), self.arity(), "wrong fanin count for {self:?}");
        match self {
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
            GateKind::Buf => ins[0],
            GateKind::Not => !ins[0],
            GateKind::And => ins[0] & ins[1],
            GateKind::Nand => !(ins[0] & ins[1]),
            GateKind::Or => ins[0] | ins[1],
            GateKind::Nor => !(ins[0] | ins[1]),
            GateKind::Xor => ins[0] ^ ins[1],
            GateKind::Xnor => !(ins[0] ^ ins[1]),
            GateKind::Mux => (!ins[0] & ins[1]) | (ins[0] & ins[2]),
            GateKind::Input | GateKind::Dff { .. } => {
                panic!("{self:?} has no combinational function")
            }
        }
    }

    /// Library cell name (for netlist emission and reports).
    pub fn cell_name(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Const0 => "TIE0",
            GateKind::Const1 => "TIE1",
            GateKind::Buf => "BUF_X1",
            GateKind::Not => "INV_X1",
            GateKind::And => "AND2_X1",
            GateKind::Nand => "NAND2_X1",
            GateKind::Or => "OR2_X1",
            GateKind::Nor => "NOR2_X1",
            GateKind::Xor => "XOR2_X1",
            GateKind::Xnor => "XNOR2_X1",
            GateKind::Mux => "MUX2_X1",
            GateKind::Dff { .. } => "DFF_X1",
        }
    }
}

/// A gate instance: a kind plus its fanin nets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Gate function.
    pub kind: GateKind,
    /// Driver gates of each input pin.
    pub fanin: Vec<GateId>,
}

impl Gate {
    /// Creates a gate, checking arity.
    ///
    /// # Panics
    ///
    /// Panics if `fanin.len() != kind.arity()`.
    pub fn new(kind: GateKind, fanin: Vec<GateId>) -> Gate {
        assert_eq!(fanin.len(), kind.arity(), "wrong fanin count for {kind:?}");
        Gate { kind, fanin }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        use GateKind::*;
        assert!(And.eval(&[true, true]));
        assert!(!And.eval(&[true, false]));
        assert!(Nand.eval(&[true, false]));
        assert!(Or.eval(&[false, true]));
        assert!(!Nor.eval(&[false, true]));
        assert!(Xor.eval(&[true, false]));
        assert!(Xnor.eval(&[true, true]));
        assert!(!Not.eval(&[true]));
        assert!(Buf.eval(&[true]));
        assert!(Const1.eval(&[]));
        assert!(!Const0.eval(&[]));
    }

    #[test]
    fn mux_selects() {
        // sel=0 -> a, sel=1 -> b
        assert!(!GateKind::Mux.eval(&[false, false, true]));
        assert!(GateKind::Mux.eval(&[true, false, true]));
    }

    #[test]
    fn eval64_matches_eval() {
        use GateKind::*;
        for kind in [Buf, Not, And, Nand, Or, Nor, Xor, Xnor, Mux] {
            let arity = kind.arity();
            for pattern in 0..1u32 << arity {
                let bools: Vec<bool> = (0..arity).map(|i| pattern >> i & 1 == 1).collect();
                let words: Vec<u64> = bools.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
                let expect = if kind.eval(&bools) { u64::MAX } else { 0 };
                assert_eq!(kind.eval64(&words), expect, "{kind:?} pattern {pattern:b}");
            }
        }
    }

    #[test]
    fn arity_checked() {
        let a = GateId(0);
        let g = Gate::new(GateKind::Not, vec![a]);
        assert_eq!(g.fanin.len(), 1);
    }

    #[test]
    #[should_panic(expected = "wrong fanin count")]
    fn bad_arity_panics() {
        Gate::new(GateKind::And, vec![GateId(0)]);
    }
}
