//! The gate-level netlist data structure.

use crate::gate::{Gate, GateId, GateKind};
use std::collections::HashMap;
use std::fmt;

/// Error raised when combinational gates form a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// A gate on the cycle.
    pub gate: GateId,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "combinational cycle through gate {}", self.gate)
    }
}

impl std::error::Error for CycleError {}

/// A multi-bit port: a named group of single-bit nets, LSB first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name (RTL net name).
    pub name: String,
    /// Bit nets, least significant first.
    pub bits: Vec<GateId>,
}

/// A flat single-output gate-level netlist.
///
/// Gates are stored in an append-only array; a gate's output net shares its
/// [`GateId`]. Primary inputs are gates of kind [`GateKind::Input`]; primary
/// outputs are named references to driver gates. Flip-flops use an implicit
/// global clock.
///
/// # Examples
///
/// ```
/// use rtlock_netlist::{Netlist, GateKind};
///
/// let mut n = Netlist::new("toy");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let g = n.add_gate(GateKind::Nand, vec![a, b]);
/// n.add_output("y", g);
/// assert_eq!(n.logic_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    gates: Vec<Gate>,
    gate_names: Vec<Option<String>>,
    /// Primary inputs in creation order.
    inputs: Vec<GateId>,
    /// Primary outputs: (name, driver).
    outputs: Vec<(String, GateId)>,
    /// Multi-bit input port groups (for interfacing with RTL-level values).
    pub input_ports: Vec<Port>,
    /// Multi-bit output port groups.
    pub output_ports: Vec<Port>,
    /// Inputs that are locking-key bits, in key order.
    pub key_inputs: Vec<GateId>,
    /// Scan-chain order over flip-flop gates (empty when no scan inserted).
    pub scan_chain: Vec<GateId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            gates: Vec::new(),
            gate_names: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            input_ports: Vec::new(),
            output_ports: Vec::new(),
            key_inputs: Vec::new(),
            scan_chain: Vec::new(),
        }
    }

    /// Adds a primary input and returns its net.
    pub fn add_input(&mut self, name: impl Into<String>) -> GateId {
        let id = self.push(Gate::new(GateKind::Input, Vec::new()), Some(name.into()));
        self.inputs.push(id);
        id
    }

    /// Adds a gate and returns its output net.
    ///
    /// # Panics
    ///
    /// Panics if the fanin count does not match the gate kind's arity or a
    /// fanin id is out of range.
    pub fn add_gate(&mut self, kind: GateKind, fanin: Vec<GateId>) -> GateId {
        for &f in &fanin {
            assert!(f.index() < self.gates.len(), "fanin {f} out of range");
        }
        self.push(Gate::new(kind, fanin), None)
    }

    /// Adds a named gate (flip-flops keep their RTL register names this way).
    pub fn add_named_gate(&mut self, kind: GateKind, fanin: Vec<GateId>, name: impl Into<String>) -> GateId {
        let id = self.add_gate(kind, fanin);
        self.gate_names[id.index()] = Some(name.into());
        id
    }

    fn push(&mut self, gate: Gate, name: Option<String>) -> GateId {
        let id = GateId(self.gates.len() as u32);
        self.gates.push(gate);
        self.gate_names.push(name);
        id
    }

    /// Declares a primary output driven by `driver`.
    pub fn add_output(&mut self, name: impl Into<String>, driver: GateId) {
        self.outputs.push((name.into(), driver));
    }

    /// Rebuilds a netlist from its raw fields (the exact byte codec's
    /// decoder, which must reproduce states — like the input order after
    /// [`Netlist::cut_dff`] — that the public construction API cannot).
    /// The caller ([`crate::codec::decode`]) validates all invariants.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        name: String,
        gates: Vec<Gate>,
        gate_names: Vec<Option<String>>,
        inputs: Vec<GateId>,
        outputs: Vec<(String, GateId)>,
        input_ports: Vec<Port>,
        output_ports: Vec<Port>,
        key_inputs: Vec<GateId>,
        scan_chain: Vec<GateId>,
    ) -> Netlist {
        Netlist {
            name,
            gates,
            gate_names,
            inputs,
            outputs,
            input_ports,
            output_ports,
            key_inputs,
            scan_chain,
        }
    }

    /// Marks an existing input as a key bit (appended to the key order).
    ///
    /// # Panics
    ///
    /// Panics if `input` is not an [`GateKind::Input`] gate.
    pub fn mark_key_input(&mut self, input: GateId) {
        assert_eq!(self.gates[input.index()].kind, GateKind::Input, "key bits must be primary inputs");
        self.key_inputs.push(input);
    }

    /// The gate record.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Mutable access to a gate (used by optimization and locking passes).
    pub fn gate_mut(&mut self, id: GateId) -> &mut Gate {
        &mut self.gates[id.index()]
    }

    /// Gate name if one was recorded.
    pub fn gate_name(&self, id: GateId) -> Option<&str> {
        self.gate_names[id.index()].as_deref()
    }

    /// Assigns a name to a gate.
    pub fn set_gate_name(&mut self, id: GateId, name: impl Into<String>) {
        self.gate_names[id.index()] = Some(name.into());
    }

    /// Total number of gates including inputs and constants.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` when the netlist has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// All gate ids in creation order.
    pub fn ids(&self) -> impl Iterator<Item = GateId> {
        (0..self.gates.len() as u32).map(GateId)
    }

    /// Primary inputs in creation order.
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Primary outputs as (name, driver) pairs.
    pub fn outputs(&self) -> &[(String, GateId)] {
        &self.outputs
    }

    /// Looks up an input by name.
    pub fn find_input(&self, name: &str) -> Option<GateId> {
        self.inputs.iter().copied().find(|&i| self.gate_name(i) == Some(name))
    }

    /// All flip-flop gates in creation order.
    pub fn dffs(&self) -> Vec<GateId> {
        self.ids().filter(|&id| self.gates[id.index()].kind.is_dff()).collect()
    }

    /// Number of combinational logic gates (the paper's `#Gate` column).
    pub fn logic_count(&self) -> usize {
        self.gates.iter().filter(|g| g.kind.is_logic()).count()
    }

    /// Histogram of gate kinds.
    pub fn kind_histogram(&self) -> HashMap<&'static str, usize> {
        let mut h = HashMap::new();
        for g in &self.gates {
            *h.entry(g.kind.cell_name()).or_insert(0) += 1;
        }
        h
    }

    /// Fanout lists: for each gate, which gates read it.
    pub fn fanouts(&self) -> Vec<Vec<GateId>> {
        let mut out = vec![Vec::new(); self.gates.len()];
        for id in self.ids() {
            for &f in &self.gates[id.index()].fanin {
                out[f.index()].push(id);
            }
        }
        out
    }

    /// Levelizes combinational logic: level 0 for inputs/constants/DFF
    /// outputs, `1 + max(fanin)` otherwise. Returns per-gate levels.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if combinational gates form a cycle.
    pub fn levelize(&self) -> Result<Vec<u32>, CycleError> {
        let mut level = vec![u32::MAX; self.gates.len()];
        // Iterative DFS to avoid stack overflow on deep netlists.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut mark = vec![Mark::White; self.gates.len()];
        for root in self.ids() {
            if mark[root.index()] == Mark::Black {
                continue;
            }
            let mut stack = vec![(root, 0usize)];
            while let Some(&mut (node, ref mut child)) = stack.last_mut() {
                let g = &self.gates[node.index()];
                let sequential_source = !g.kind.is_logic();
                if *child == 0 {
                    if mark[node.index()] == Mark::Black {
                        stack.pop();
                        continue;
                    }
                    mark[node.index()] = Mark::Grey;
                    if sequential_source {
                        level[node.index()] = 0;
                        mark[node.index()] = Mark::Black;
                        stack.pop();
                        continue;
                    }
                }
                if *child < g.fanin.len() {
                    let next = g.fanin[*child];
                    *child += 1;
                    match mark[next.index()] {
                        Mark::White => stack.push((next, 0)),
                        Mark::Grey => return Err(CycleError { gate: next }),
                        Mark::Black => {}
                    }
                } else {
                    let lv = g.fanin.iter().map(|f| level[f.index()]).max().unwrap_or(0) + 1;
                    level[node.index()] = lv;
                    mark[node.index()] = Mark::Black;
                    stack.pop();
                }
            }
        }
        Ok(level)
    }

    /// Topological order of all gates (sources first).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if combinational gates form a cycle.
    pub fn topo_order(&self) -> Result<Vec<GateId>, CycleError> {
        let levels = self.levelize()?;
        let mut order: Vec<GateId> = self.ids().collect();
        order.sort_by_key(|g| levels[g.index()]);
        Ok(order)
    }

    /// Logic depth (maximum combinational level).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if combinational gates form a cycle.
    pub fn depth(&self) -> Result<u32, CycleError> {
        Ok(self.levelize()?.into_iter().filter(|&l| l != u32::MAX).max().unwrap_or(0))
    }

    /// Gates reachable backwards from outputs and DFF data pins (the live
    /// set). Inputs are always considered live.
    pub fn live_set(&self) -> Vec<bool> {
        let mut live = vec![false; self.gates.len()];
        let mut stack: Vec<GateId> = self.outputs.iter().map(|&(_, g)| g).collect();
        // DFF next-state logic is live when the DFF itself is live; start
        // from output-reachable gates and iterate.
        for &i in &self.inputs {
            live[i.index()] = true;
        }
        loop {
            while let Some(g) = stack.pop() {
                if live[g.index()] {
                    continue;
                }
                live[g.index()] = true;
                for &f in &self.gates[g.index()].fanin {
                    if !live[f.index()] {
                        stack.push(f);
                    }
                }
            }
            // DFFs that became live pull in their fanin cones.
            let mut grew = false;
            for id in self.ids() {
                if live[id.index()] && self.gates[id.index()].kind.is_dff() {
                    for &f in &self.gates[id.index()].fanin {
                        if !live[f.index()] {
                            stack.push(f);
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }
        live
    }

    /// Removes gates not in the live set, remapping ids and preserving
    /// inputs, port groups, key order and scan order. Returns the number of
    /// gates removed.
    pub fn sweep_dead(&mut self) -> usize {
        let live = self.live_set();
        let removed = live.iter().filter(|&&l| !l).count();
        if removed == 0 {
            return 0;
        }
        let mut remap: Vec<Option<GateId>> = vec![None; self.gates.len()];
        let mut new_gates = Vec::with_capacity(self.gates.len() - removed);
        let mut new_names = Vec::with_capacity(self.gates.len() - removed);
        for id in self.ids() {
            if live[id.index()] {
                remap[id.index()] = Some(GateId(new_gates.len() as u32));
                new_gates.push(self.gates[id.index()].clone());
                new_names.push(self.gate_names[id.index()].clone());
            }
        }
        for g in &mut new_gates {
            for f in &mut g.fanin {
                *f = remap[f.index()].expect("live gate has live fanin");
            }
        }
        let map = |id: GateId| remap[id.index()].expect("mapped id was live");
        self.inputs = self.inputs.iter().map(|&i| map(i)).collect();
        self.outputs = self.outputs.iter().map(|(n, g)| (n.clone(), map(*g))).collect();
        self.key_inputs = self.key_inputs.iter().map(|&k| map(k)).collect();
        self.scan_chain = self.scan_chain.iter().filter(|s| live[s.index()]).map(|&s| map(s)).collect();
        for p in self.input_ports.iter_mut().chain(self.output_ports.iter_mut()) {
            for b in &mut p.bits {
                *b = map(*b);
            }
        }
        self.gates = new_gates;
        self.gate_names = new_names;
        removed
    }

    /// Converts a primary input into a constant (used by the SWEEP/SCOPE
    /// attacks to hardwire a key-bit hypothesis before re-optimizing).
    /// The gate id stays valid; the input is removed from the input list
    /// and from the key list.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not an input gate.
    pub fn convert_input_to_const(&mut self, input: GateId, value: bool) {
        assert_eq!(self.gates[input.index()].kind, GateKind::Input, "{input} is not an input");
        self.gates[input.index()].kind = if value { GateKind::Const1 } else { GateKind::Const0 };
        self.inputs.retain(|&i| i != input);
        self.key_inputs.retain(|&k| k != input);
        for p in &mut self.input_ports {
            p.bits.retain(|&b| b != input);
        }
        self.input_ports.retain(|p| !p.bits.is_empty());
    }

    /// Cuts a flip-flop for a scan view: the flop becomes a fresh primary
    /// input (pseudo-PI) and its former D driver is returned so the caller
    /// can expose it as a pseudo-PO.
    ///
    /// # Panics
    ///
    /// Panics if `dff` is not a flip-flop.
    pub fn cut_dff(&mut self, dff: GateId, name: impl Into<String>) -> GateId {
        assert!(self.gates[dff.index()].kind.is_dff(), "{dff} is not a flip-flop");
        let d = self.gates[dff.index()].fanin[0];
        self.gates[dff.index()] = Gate::new(GateKind::Input, Vec::new());
        self.gate_names[dff.index()] = Some(name.into());
        self.inputs.push(dff);
        self.scan_chain.retain(|&s| s != dff);
        d
    }

    /// Keeps only the primary outputs `keep` accepts (by name and
    /// driver), preserving relative order. Output *port groups* whose bits
    /// all disappear are dropped too. Used by the dataflow-pruned SAT
    /// attack to restrict a locked netlist to the outputs one key
    /// partition can influence.
    pub fn retain_outputs(&mut self, mut keep: impl FnMut(&str, GateId) -> bool) {
        self.outputs.retain(|(name, drv)| keep(name, *drv));
        let kept: std::collections::HashSet<GateId> =
            self.outputs.iter().map(|&(_, g)| g).collect();
        for p in &mut self.output_ports {
            p.bits.retain(|b| kept.contains(b));
        }
        self.output_ports.retain(|p| !p.bits.is_empty());
    }

    /// Replaces the driver of output `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn replace_output_driver(&mut self, index: usize, driver: GateId) {
        self.outputs[index].1 = driver;
    }

    /// Redirects every use of `old` (gate fanins and output drivers) to
    /// `new`, except inside the gates listed in `except`. This is the core
    /// primitive of key-gate insertion: create the key gate reading `old`,
    /// then splice it into all of `old`'s former fanout.
    ///
    /// Returns the number of pins rewired.
    pub fn replace_uses(&mut self, old: GateId, new: GateId, except: &[GateId]) -> usize {
        let mut count = 0;
        for id in 0..self.gates.len() {
            if except.contains(&GateId(id as u32)) || GateId(id as u32) == new {
                continue;
            }
            for f in &mut self.gates[id].fanin {
                if *f == old {
                    *f = new;
                    count += 1;
                }
            }
        }
        for (_, drv) in &mut self.outputs {
            if *drv == old {
                *drv = new;
                count += 1;
            }
        }
        for p in &mut self.output_ports {
            for b in &mut p.bits {
                if *b == old {
                    *b = new;
                }
            }
        }
        count
    }

    /// Emits the netlist as structural Verilog (for inspection/interop).
    pub fn to_structural_verilog(&self) -> String {
        let mut s = String::new();
        let net = |id: GateId| format!("n{}", id.0);
        let in_names: Vec<String> = self.inputs.iter().map(|&i| net(i)).collect();
        let out_names: Vec<String> = self.outputs.iter().map(|(n, _)| n.clone()).collect();
        s.push_str(&format!(
            "module {}(clk, {});\n  input clk;\n",
            self.name,
            in_names.iter().chain(out_names.iter()).cloned().collect::<Vec<_>>().join(", ")
        ));
        for n in &in_names {
            s.push_str(&format!("  input {n};\n"));
        }
        for n in &out_names {
            s.push_str(&format!("  output {n};\n"));
        }
        for id in self.ids() {
            let g = &self.gates[id.index()];
            if g.kind == GateKind::Input {
                continue;
            }
            s.push_str(&format!("  wire {};\n", net(id)));
        }
        for id in self.ids() {
            let g = &self.gates[id.index()];
            let pins: Vec<String> = g.fanin.iter().map(|&f| net(f)).collect();
            match g.kind {
                GateKind::Input => {}
                GateKind::Const0 => s.push_str(&format!("  assign {} = 1'b0;\n", net(id))),
                GateKind::Const1 => s.push_str(&format!("  assign {} = 1'b1;\n", net(id))),
                GateKind::Dff { .. } => s.push_str(&format!(
                    "  {} u{}(.CK(clk), .D({}), .Q({}));\n",
                    g.kind.cell_name(),
                    id.0,
                    pins[0],
                    net(id)
                )),
                _ => s.push_str(&format!(
                    "  {} u{}({}, {});\n",
                    g.kind.cell_name(),
                    id.0,
                    net(id),
                    pins.join(", ")
                )),
            }
        }
        for (name, drv) in &self.outputs {
            s.push_str(&format!("  assign {name} = {};\n", net(*drv)));
        }
        s.push_str("endmodule\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut n = Netlist::new("ha");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let s = n.add_gate(GateKind::Xor, vec![a, b]);
        let c = n.add_gate(GateKind::And, vec![a, b]);
        n.add_output("s", s);
        n.add_output("c", c);
        n
    }

    #[test]
    fn counts_and_histogram() {
        let n = half_adder();
        assert_eq!(n.len(), 4);
        assert_eq!(n.logic_count(), 2);
        assert_eq!(n.kind_histogram()["XOR2_X1"], 1);
    }

    #[test]
    fn levelize_orders_gates() {
        let mut n = half_adder();
        let s_drv = n.outputs()[0].1;
        let inv = n.add_gate(GateKind::Not, vec![s_drv]);
        n.add_output("ns", inv);
        let lv = n.levelize().unwrap();
        assert_eq!(lv[0], 0);
        assert_eq!(lv[s_drv.index()], 1);
        assert_eq!(lv[inv.index()], 2);
        assert_eq!(n.depth().unwrap(), 2);
    }

    #[test]
    fn cycle_detected() {
        let mut n = Netlist::new("cyc");
        let a = n.add_input("a");
        // Build g1 = AND(a, g2); g2 = NOT(g1) by patching fanin.
        let g1 = n.add_gate(GateKind::And, vec![a, a]);
        let g2 = n.add_gate(GateKind::Not, vec![g1]);
        n.gate_mut(g1).fanin[1] = g2;
        n.add_output("y", g2);
        assert!(n.levelize().is_err());
    }

    #[test]
    fn dff_breaks_cycles() {
        let mut n = Netlist::new("seq");
        let d = n.add_input("d");
        let q = n.add_gate(GateKind::Dff { init: false }, vec![d]);
        let x = n.add_gate(GateKind::Xor, vec![q, d]);
        // Feed DFF from its own output's logic: q' = xor(q, d).
        n.gate_mut(q).fanin[0] = x;
        n.add_output("y", q);
        assert!(n.levelize().is_ok(), "DFF must break the loop");
        assert_eq!(n.dffs(), vec![q]);
    }

    #[test]
    fn sweep_removes_dead_logic() {
        let mut n = half_adder();
        let a = n.inputs()[0];
        let dead = n.add_gate(GateKind::Not, vec![a]);
        let _dead2 = n.add_gate(GateKind::Not, vec![dead]);
        assert_eq!(n.len(), 6);
        let removed = n.sweep_dead();
        assert_eq!(removed, 2);
        assert_eq!(n.len(), 4);
        assert_eq!(n.outputs().len(), 2);
        // Ids stay valid after remap.
        assert_eq!(n.gate(n.outputs()[0].1).kind, GateKind::Xor);
    }

    #[test]
    fn sweep_keeps_dff_cones() {
        let mut n = Netlist::new("seq");
        let a = n.add_input("a");
        let inv = n.add_gate(GateKind::Not, vec![a]);
        let ff = n.add_gate(GateKind::Dff { init: true }, vec![inv]);
        n.add_output("q", ff);
        assert_eq!(n.sweep_dead(), 0, "everything is live through the DFF");
    }

    #[test]
    fn key_inputs_preserved_by_sweep() {
        let mut n = half_adder();
        let k = n.add_input("keyinput0");
        n.mark_key_input(k);
        let s = n.outputs()[0].1;
        let locked = n.add_gate(GateKind::Xor, vec![s, k]);
        n.replace_output_driver(0, locked);
        let _dead = n.add_gate(GateKind::Not, vec![k]);
        n.sweep_dead();
        assert_eq!(n.key_inputs.len(), 1);
        assert_eq!(n.gate_name(n.key_inputs[0]), Some("keyinput0"));
    }

    #[test]
    fn structural_verilog_mentions_cells() {
        let n = half_adder();
        let v = n.to_structural_verilog();
        assert!(v.contains("XOR2_X1"));
        assert!(v.contains("module ha"));
    }

    #[test]
    fn find_input_by_name() {
        let n = half_adder();
        assert_eq!(n.find_input("b"), Some(GateId(1)));
        assert_eq!(n.find_input("zz"), None);
    }
}
