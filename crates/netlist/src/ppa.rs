//! Power/performance/area model.
//!
//! A stand-in for post-layout analysis with a commercial flow on the
//! NanGate 15 nm library (what the paper uses for Table VI). Per-cell area,
//! intrinsic delay and switching energy constants approximate that library's
//! X1 drive cells; absolute numbers are indicative, but *relative* overheads
//! (locked vs original) — which is what Table VI reports — are meaningful.

use crate::gate::GateKind;
use crate::netlist::Netlist;
use crate::sim::NetSim;

/// Per-cell characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Intrinsic delay in ns.
    pub delay_ns: f64,
    /// Dynamic energy per output toggle in fJ.
    pub energy_fj: f64,
    /// Leakage power in nW.
    pub leakage_nw: f64,
}

/// Returns the library entry for a gate kind.
pub fn cell_spec(kind: GateKind) -> CellSpec {
    // Loosely calibrated to NanGate 15 nm OCL X1 cells.
    match kind {
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
            CellSpec { area_um2: 0.0, delay_ns: 0.0, energy_fj: 0.0, leakage_nw: 0.0 }
        }
        GateKind::Buf => CellSpec { area_um2: 0.196, delay_ns: 0.011, energy_fj: 0.35, leakage_nw: 1.3 },
        GateKind::Not => CellSpec { area_um2: 0.147, delay_ns: 0.007, energy_fj: 0.25, leakage_nw: 1.0 },
        GateKind::And => CellSpec { area_um2: 0.294, delay_ns: 0.016, energy_fj: 0.55, leakage_nw: 1.9 },
        GateKind::Nand => CellSpec { area_um2: 0.245, delay_ns: 0.012, energy_fj: 0.45, leakage_nw: 1.6 },
        GateKind::Or => CellSpec { area_um2: 0.294, delay_ns: 0.017, energy_fj: 0.55, leakage_nw: 1.9 },
        GateKind::Nor => CellSpec { area_um2: 0.245, delay_ns: 0.013, energy_fj: 0.45, leakage_nw: 1.6 },
        GateKind::Xor => CellSpec { area_um2: 0.441, delay_ns: 0.022, energy_fj: 0.85, leakage_nw: 2.8 },
        GateKind::Xnor => CellSpec { area_um2: 0.441, delay_ns: 0.022, energy_fj: 0.85, leakage_nw: 2.8 },
        GateKind::Mux => CellSpec { area_um2: 0.539, delay_ns: 0.024, energy_fj: 0.95, leakage_nw: 3.2 },
        GateKind::Dff { .. } => CellSpec { area_um2: 1.176, delay_ns: 0.045, energy_fj: 2.6, leakage_nw: 7.5 },
    }
}

/// Extra area of a scan flip-flop over a plain one (the built-in scan mux).
pub const SCAN_DFF_AREA_PREMIUM_UM2: f64 = 0.35;
/// Extra intrinsic delay a scan mux adds in front of a scanned flop.
pub const SCAN_DFF_DELAY_PREMIUM_NS: f64 = 0.006;

/// A post-"layout" PPA report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpaReport {
    /// Total cell area in µm².
    pub area_um2: f64,
    /// Critical-path delay in ns.
    pub delay_ns: f64,
    /// Total power (dynamic + leakage) in mW at the given clock.
    pub power_mw: f64,
}

impl PpaReport {
    /// Percentage overhead of `self` relative to `base`, per metric:
    /// `(area %, delay %, power %)`.
    pub fn overhead_vs(&self, base: &PpaReport) -> (f64, f64, f64) {
        let pct = |a: f64, b: f64| if b == 0.0 { 0.0 } else { (a - b) / b * 100.0 };
        (
            pct(self.area_um2, base.area_um2),
            pct(self.delay_ns, base.delay_ns),
            pct(self.power_mw, base.power_mw),
        )
    }
}

/// Analysis configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpaConfig {
    /// Clock frequency in MHz for dynamic power.
    pub clock_mhz: f64,
    /// Simulation rounds for activity estimation.
    pub activity_rounds: usize,
    /// PRNG seed for activity estimation.
    pub seed: u64,
}

impl Default for PpaConfig {
    fn default() -> Self {
        PpaConfig { clock_mhz: 500.0, activity_rounds: 64, seed: 0xC0FFEE }
    }
}

/// Computes the PPA report for a netlist.
///
/// Area sums cell areas (scanned flops get the scan-mux premium); delay is
/// the worst combinational path through per-cell intrinsic delays plus a
/// flop premium when its start/end points are scanned; power combines
/// activity-weighted dynamic energy at `clock_mhz` with cell leakage.
pub fn analyze(netlist: &Netlist, config: &PpaConfig) -> PpaReport {
    let mut area = 0.0;
    for id in netlist.ids() {
        area += cell_spec(netlist.gate(id).kind).area_um2;
    }
    area += netlist.scan_chain.len() as f64 * SCAN_DFF_AREA_PREMIUM_UM2;

    // Critical path via DP over topological order.
    let mut arrival = vec![0.0f64; netlist.len()];
    let order = netlist.topo_order().unwrap_or_else(|_| netlist.ids().collect());
    let scan_premium = |id| {
        if netlist.scan_chain.contains(&id) {
            SCAN_DFF_DELAY_PREMIUM_NS
        } else {
            0.0
        }
    };
    for &id in &order {
        let g = netlist.gate(id);
        let spec = cell_spec(g.kind);
        let at = if g.kind.is_logic() {
            g.fanin.iter().map(|f| arrival[f.index()]).fold(0.0, f64::max) + spec.delay_ns
        } else if g.kind.is_dff() {
            spec.delay_ns + scan_premium(id)
        } else {
            0.0
        };
        arrival[id.index()] = at;
    }
    // Paths end at DFF D pins and primary outputs; collect after all
    // arrivals are final (DFFs are level-0 sources and would otherwise be
    // visited before their fanin cones).
    let mut worst: f64 = 0.0;
    for &id in &order {
        let g = netlist.gate(id);
        if g.kind.is_dff() {
            let d_arr = arrival[g.fanin[0].index()];
            worst = worst.max(d_arr + cell_spec(g.kind).delay_ns + scan_premium(id));
        }
    }
    for &(_, drv) in netlist.outputs() {
        worst = worst.max(arrival[drv.index()]);
    }

    // Power.
    let mut power_mw = 0.0;
    match NetSim::new(netlist) {
        Ok(mut sim) => {
            let act = sim.toggle_activity(config.activity_rounds, config.seed);
            for id in netlist.ids() {
                let spec = cell_spec(netlist.gate(id).kind);
                // energy_fj * toggles/cycle * cycles/sec = fJ/s = 1e-12 mW
                power_mw += spec.energy_fj * act[id.index()] * config.clock_mhz * 1e6 * 1e-12;
                power_mw += spec.leakage_nw * 1e-6;
            }
        }
        Err(_) => {
            for id in netlist.ids() {
                let spec = cell_spec(netlist.gate(id).kind);
                power_mw += spec.energy_fj * 0.1 * config.clock_mhz * 1e6 * 1e-12 + spec.leakage_nw * 1e-6;
            }
        }
    }

    PpaReport { area_um2: area, delay_ns: worst, power_mw }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::netlist::Netlist;

    fn chain(len: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let mut cur = a;
        for _ in 0..len {
            cur = n.add_gate(GateKind::Nand, vec![cur, b]);
        }
        n.add_output("y", cur);
        n
    }

    #[test]
    fn area_scales_with_gate_count() {
        let small = analyze(&chain(4), &PpaConfig::default());
        let large = analyze(&chain(40), &PpaConfig::default());
        assert!(large.area_um2 > small.area_um2 * 5.0);
    }

    #[test]
    fn delay_scales_with_depth() {
        let shallow = analyze(&chain(4), &PpaConfig::default());
        let deep = analyze(&chain(40), &PpaConfig::default());
        assert!((deep.delay_ns / shallow.delay_ns) > 5.0);
    }

    #[test]
    fn scan_premium_adds_area() {
        let mut n = Netlist::new("t");
        let d = n.add_input("d");
        let q = n.add_gate(GateKind::Dff { init: false }, vec![d]);
        n.add_output("q", q);
        let plain = analyze(&n, &PpaConfig::default());
        let mut scanned = n.clone();
        scanned.scan_chain = vec![q];
        let scan = analyze(&scanned, &PpaConfig::default());
        assert!(scan.area_um2 > plain.area_um2);
    }

    #[test]
    fn overhead_is_relative() {
        let base = PpaReport { area_um2: 100.0, delay_ns: 1.0, power_mw: 2.0 };
        let bigger = PpaReport { area_um2: 115.0, delay_ns: 1.1, power_mw: 2.0 };
        let (a, d, p) = bigger.overhead_vs(&base);
        assert!((a - 15.0).abs() < 1e-9);
        assert!((d - 10.0).abs() < 1e-6);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn power_positive_for_active_circuit() {
        let r = analyze(&chain(10), &PpaConfig::default());
        assert!(r.power_mw > 0.0);
    }

    #[test]
    fn sequential_paths_counted() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let mut cur = a;
        for _ in 0..8 {
            cur = n.add_gate(GateKind::Xor, vec![cur, a]);
        }
        let ff = n.add_gate(GateKind::Dff { init: false }, vec![cur]);
        n.add_output("q", ff);
        let r = analyze(&n, &PpaConfig::default());
        assert!(r.delay_ns > 8.0 * 0.02, "path into the flop dominates");
    }
}
