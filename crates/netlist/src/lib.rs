//! Gate-level netlist substrate for the RTLock reproduction.
//!
//! Provides the post-synthesis representation everything downstream works
//! on: the gate library and netlist graph ([`Netlist`]), bit-parallel
//! simulation ([`NetSim`]), SCOAP testability measures ([`scoap`]),
//! a NanGate-15nm-like PPA model ([`ppa`]), and Tseitin CNF encoding
//! ([`CnfBuilder`]) consumed by the SAT/BMC attacks.
//!
//! # Examples
//!
//! ```
//! use rtlock_netlist::{Netlist, GateKind, NetSim, scoap, ppa};
//!
//! let mut n = Netlist::new("demo");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let y = n.add_gate(GateKind::Xor, vec![a, b]);
//! n.add_output("y", y);
//!
//! let mut sim = NetSim::new(&n)?;
//! sim.set_inputs_bool(&[true, false]);
//! sim.eval_comb();
//! assert_eq!(sim.outputs()[0], u64::MAX);
//!
//! let testability = scoap::analyze(&n);
//! assert!(testability.cc1[y.index()] >= 2);
//!
//! let report = ppa::analyze(&n, &ppa::PpaConfig::default());
//! assert!(report.area_um2 > 0.0);
//! # Ok::<(), rtlock_netlist::CycleError>(())
//! ```

#![warn(missing_docs)]

pub mod bench_format;
pub mod cnf;
pub mod codec;
pub mod gate;
pub mod netlist;
pub mod ppa;
pub mod scoap;
pub mod sim;

pub use bench_format::{from_bench, to_bench};
pub use cnf::CnfBuilder;
pub use gate::{Gate, GateId, GateKind};
pub use netlist::{CycleError, Netlist, Port};
pub use ppa::{PpaConfig, PpaReport};
pub use scoap::Scoap;
pub use sim::{NetSim, SweepRng};
