//! SCOAP testability analysis (Goldstein & Thigpen, DAC 1980 — \[34\] in the
//! paper).
//!
//! Computes combinational 0/1-controllability (`CC0`, `CC1`) and
//! observability (`CO`) for every net. RTLock's step 7 uses these measures
//! to choose *partial scan* candidates: registers with low observability
//! near key inputs hide key effects from oracle-guided attacks, so scanning
//! (and scan-locking) exactly those registers maximizes protection per
//! flip-flop.
//!
//! Sequential elements are handled with the usual +1-per-stage
//! simplification, iterated to a fixpoint to handle feedback.

use crate::gate::{GateId, GateKind};
use crate::netlist::Netlist;

/// Saturating "infinite" cost for uncontrollable nets.
pub const SCOAP_INF: u32 = u32::MAX / 4;

/// Per-net SCOAP measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scoap {
    /// Cost of setting each net to 0.
    pub cc0: Vec<u32>,
    /// Cost of setting each net to 1.
    pub cc1: Vec<u32>,
    /// Cost of observing each net at an output.
    pub co: Vec<u32>,
}

impl Scoap {
    /// Combined difficulty of controlling *and* observing a net; RTLock's
    /// scan-candidate ranking sorts by this descending.
    pub fn opacity(&self, g: GateId) -> u64 {
        let c = self.cc0[g.index()].min(self.cc1[g.index()]) as u64;
        c + self.co[g.index()] as u64
    }
}

/// Number of [`analyze`] executions in this process.
///
/// The artifact cache's regression tests assert "one SCOAP computation per
/// distinct netlist hash"; a process-wide counter is the only way to
/// observe recomputation through the `OnceCell`/cache layers above.
static ANALYSES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total number of [`analyze`] calls executed by this process so far.
///
/// Tests take a snapshot before a flow run and compare the delta against
/// the number of distinct netlists processed (serialize such tests — the
/// counter is process-global).
pub fn analysis_count() -> u64 {
    ANALYSES.load(std::sync::atomic::Ordering::Relaxed)
}

/// Computes SCOAP measures for a netlist.
///
/// Feedback through flip-flops is resolved by iterating controllability and
/// observability passes to a fixpoint (bounded by the number of flip-flops
/// plus two rounds).
pub fn analyze(netlist: &Netlist) -> Scoap {
    ANALYSES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let n = netlist.len();
    let mut cc0 = vec![SCOAP_INF; n];
    let mut cc1 = vec![SCOAP_INF; n];
    let order = netlist.topo_order().unwrap_or_else(|_| netlist.ids().collect());

    let rounds = netlist.dffs().len() + 2;
    for _ in 0..rounds {
        let mut changed = false;
        for &id in &order {
            let g = netlist.gate(id);
            let f = |i: usize| (cc0[g.fanin[i].index()], cc1[g.fanin[i].index()]);
            let (n0, n1) = match g.kind {
                GateKind::Input => (1, 1),
                GateKind::Const0 => (0, SCOAP_INF),
                GateKind::Const1 => (SCOAP_INF, 0),
                GateKind::Buf => {
                    let (a0, a1) = f(0);
                    (a0.saturating_add(1), a1.saturating_add(1))
                }
                GateKind::Not => {
                    let (a0, a1) = f(0);
                    (a1.saturating_add(1), a0.saturating_add(1))
                }
                GateKind::And => {
                    let (a0, a1) = f(0);
                    let (b0, b1) = f(1);
                    (a0.min(b0).saturating_add(1), a1.saturating_add(b1).saturating_add(1))
                }
                GateKind::Nand => {
                    let (a0, a1) = f(0);
                    let (b0, b1) = f(1);
                    (a1.saturating_add(b1).saturating_add(1), a0.min(b0).saturating_add(1))
                }
                GateKind::Or => {
                    let (a0, a1) = f(0);
                    let (b0, b1) = f(1);
                    (a0.saturating_add(b0).saturating_add(1), a1.min(b1).saturating_add(1))
                }
                GateKind::Nor => {
                    let (a0, a1) = f(0);
                    let (b0, b1) = f(1);
                    (a1.min(b1).saturating_add(1), a0.saturating_add(b0).saturating_add(1))
                }
                GateKind::Xor | GateKind::Xnor => {
                    let (a0, a1) = f(0);
                    let (b0, b1) = f(1);
                    let same = a0.saturating_add(b0).min(a1.saturating_add(b1)).saturating_add(1);
                    let diff = a0.saturating_add(b1).min(a1.saturating_add(b0)).saturating_add(1);
                    if g.kind == GateKind::Xor {
                        (same, diff)
                    } else {
                        (diff, same)
                    }
                }
                GateKind::Mux => {
                    let (s0, s1) = f(0);
                    let (a0, a1) = f(1);
                    let (b0, b1) = f(2);
                    (
                        s0.saturating_add(a0).min(s1.saturating_add(b0)).saturating_add(1),
                        s0.saturating_add(a1).min(s1.saturating_add(b1)).saturating_add(1),
                    )
                }
                GateKind::Dff { init } => {
                    // Reset makes the init value unit-controllable.
                    let (d0, d1) = f(0);
                    let mut c0 = d0.saturating_add(1);
                    let mut c1 = d1.saturating_add(1);
                    if init {
                        c1 = c1.min(1);
                    } else {
                        c0 = c0.min(1);
                    }
                    (c0, c1)
                }
            };
            if n0 != cc0[id.index()] || n1 != cc1[id.index()] {
                cc0[id.index()] = n0;
                cc1[id.index()] = n1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Observability: backward pass from outputs, iterated for feedback.
    let mut co = vec![SCOAP_INF; n];
    for &(_, drv) in netlist.outputs() {
        co[drv.index()] = 0;
    }
    for _ in 0..rounds {
        let mut changed = false;
        for &id in order.iter().rev() {
            let g = netlist.gate(id);
            let my = co[id.index()];
            if my >= SCOAP_INF {
                continue;
            }
            let mut relax = |pin: GateId, extra: u32| {
                let cand = my.saturating_add(extra).saturating_add(1);
                if cand < co[pin.index()] {
                    co[pin.index()] = cand;
                    changed = true;
                }
            };
            match g.kind {
                GateKind::Input | GateKind::Const0 | GateKind::Const1 => {}
                GateKind::Buf | GateKind::Not | GateKind::Dff { .. } => relax(g.fanin[0], 0),
                GateKind::And | GateKind::Nand => {
                    let other1 = cc1[g.fanin[1].index()];
                    let other0 = cc1[g.fanin[0].index()];
                    relax(g.fanin[0], other1);
                    relax(g.fanin[1], other0);
                }
                GateKind::Or | GateKind::Nor => {
                    let other1 = cc0[g.fanin[1].index()];
                    let other0 = cc0[g.fanin[0].index()];
                    relax(g.fanin[0], other1);
                    relax(g.fanin[1], other0);
                }
                GateKind::Xor | GateKind::Xnor => {
                    let ob = cc0[g.fanin[1].index()].min(cc1[g.fanin[1].index()]);
                    let oa = cc0[g.fanin[0].index()].min(cc1[g.fanin[0].index()]);
                    relax(g.fanin[0], ob);
                    relax(g.fanin[1], oa);
                }
                GateKind::Mux => {
                    let (s, a, b) = (g.fanin[0], g.fanin[1], g.fanin[2]);
                    // Observe select: the two data inputs must differ.
                    let differ = cc0[a.index()]
                        .saturating_add(cc1[b.index()])
                        .min(cc1[a.index()].saturating_add(cc0[b.index()]));
                    relax(s, differ);
                    relax(a, cc0[s.index()]);
                    relax(b, cc1[s.index()]);
                }
            }
        }
        if !changed {
            break;
        }
    }

    Scoap { cc0, cc1, co }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    fn inputs_are_unit_controllable() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        n.add_output("y", a);
        let s = analyze(&n);
        assert_eq!(s.cc0[a.index()], 1);
        assert_eq!(s.cc1[a.index()], 1);
        assert_eq!(s.co[a.index()], 0);
    }

    #[test]
    fn and_gate_controllability() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, vec![a, b]);
        n.add_output("y", g);
        let s = analyze(&n);
        assert_eq!(s.cc1[g.index()], 3, "both inputs to 1");
        assert_eq!(s.cc0[g.index()], 2, "either input to 0");
        // Observing `a` through the AND needs b=1.
        assert_eq!(s.co[a.index()], 2);
    }

    #[test]
    fn deep_chain_raises_costs() {
        let mut n = Netlist::new("t");
        let mut cur = n.add_input("a");
        let one = n.add_input("b");
        for _ in 0..10 {
            cur = n.add_gate(GateKind::And, vec![cur, one]);
        }
        n.add_output("y", cur);
        let s = analyze(&n);
        assert!(s.cc1[cur.index()] > 10);
        let a = n.inputs()[0];
        assert!(s.co[a.index()] >= 10, "deep input hard to observe");
    }

    #[test]
    fn constants_are_one_sided() {
        let mut n = Netlist::new("t");
        let c1 = n.add_gate(GateKind::Const1, vec![]);
        n.add_output("y", c1);
        let s = analyze(&n);
        assert_eq!(s.cc1[c1.index()], 0);
        assert!(s.cc0[c1.index()] >= SCOAP_INF);
    }

    #[test]
    fn dff_adds_sequential_cost() {
        let mut n = Netlist::new("t");
        let d = n.add_input("d");
        let q = n.add_gate(GateKind::Dff { init: false }, vec![d]);
        n.add_output("y", q);
        let s = analyze(&n);
        assert_eq!(s.cc0[q.index()], 1, "reset controls the 0 side");
        assert_eq!(s.cc1[q.index()], 2, "the 1 side goes through D");
        assert_eq!(s.co[d.index()], 1);
    }

    #[test]
    fn feedback_loop_converges() {
        // q' = xor(q, en): controllability must converge, not loop forever.
        let mut n = Netlist::new("t");
        let en = n.add_input("en");
        let q = n.add_gate(GateKind::Dff { init: false }, vec![en]);
        let x = n.add_gate(GateKind::Xor, vec![q, en]);
        n.gate_mut(q).fanin[0] = x;
        n.add_output("y", q);
        let s = analyze(&n);
        assert!(s.cc0[q.index()] < SCOAP_INF);
        assert!(s.cc1[q.index()] < SCOAP_INF);
    }

    #[test]
    fn opacity_ranks_hidden_nets_higher() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let shallow = n.add_gate(GateKind::And, vec![a, b]);
        let mut deep = shallow;
        for _ in 0..6 {
            deep = n.add_gate(GateKind::And, vec![deep, b]);
        }
        n.add_output("y", deep);
        let s = analyze(&n);
        assert!(s.opacity(a) > s.opacity(deep), "inputs of deep cones are more opaque than the cone tip");
    }
}
