//! DIMACS micro-corpus for the CDCL solver, in the style of the embedded
//! test sets small solvers ship (screwsat/batsat): each instance is a
//! `p cnf` text with a known SAT/UNSAT verdict, loaded through a strict
//! little parser. On top of the verdict checks the suite covers the
//! solver's incremental API — assumptions, clause addition between solve
//! calls, model blocking — and budget exhaustion returning
//! [`SolveResult::Unknown`] for every budget axis (conflicts,
//! propagations, wall-clock deadline, cancel token).

use rtlock_governor::{CancelToken, Deadline};
use rtlock_sat::{Budget, Lit, SolveResult, Solver, Var};
use std::time::Duration;

// ---- tiny DIMACS reader ------------------------------------------------

/// Parses a DIMACS CNF text into clauses, validating the `p cnf` header
/// counts (the corpus must stay self-consistent).
fn parse_dimacs(text: &str) -> Vec<Vec<i32>> {
    let mut declared: Option<(usize, usize)> = None;
    let mut clauses: Vec<Vec<i32>> = Vec::new();
    let mut current: Vec<i32> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p cnf") {
            let mut it = rest.split_whitespace();
            let vars = it.next().and_then(|t| t.parse().ok()).expect("header var count");
            let cls = it.next().and_then(|t| t.parse().ok()).expect("header clause count");
            declared = Some((vars, cls));
            continue;
        }
        for tok in line.split_whitespace() {
            let lit: i32 = tok.parse().expect("integer literal");
            if lit == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                current.push(lit);
            }
        }
    }
    assert!(current.is_empty(), "unterminated clause in corpus instance");
    let (vars, cls) = declared.expect("missing p cnf header");
    assert_eq!(clauses.len(), cls, "header clause count mismatch");
    let max_var = clauses.iter().flatten().map(|l| l.unsigned_abs() as usize).max().unwrap_or(0);
    assert!(max_var <= vars, "literal exceeds declared variable count");
    clauses
}

fn load(text: &str) -> Solver {
    let mut s = Solver::new();
    for clause in parse_dimacs(text) {
        s.add_dimacs_clause(&clause);
    }
    s
}

// ---- the corpus --------------------------------------------------------

/// R-3-SAT satisfiable: hand-checked model 1=T 2=F 3=T 4=T.
const SAT_R3: &str = "c satisfiable random 3-SAT
p cnf 4 6
1 2 3 0
-1 -2 4 0
-3 2 4 0
1 -4 3 0
-2 3 -4 0
2 -3 4 0
";

/// Implication chain 1 -> 2 -> ... -> 6 with forced head: unique model,
/// all true.
const SAT_CHAIN: &str = "c unit-implication chain
p cnf 6 6
1 0
-1 2 0
-2 3 0
-3 4 0
-4 5 0
-5 6 0
";

/// Triangle graph, 3 colors (one-hot vars per node): satisfiable.
const SAT_TRIANGLE_3COLOR: &str = "c K3 is 3-colorable; vars 3*(node-1)+color
p cnf 9 21
1 2 3 0
4 5 6 0
7 8 9 0
-1 -2 0
-1 -3 0
-2 -3 0
-4 -5 0
-4 -6 0
-5 -6 0
-7 -8 0
-7 -9 0
-8 -9 0
-1 -4 0
-2 -5 0
-3 -6 0
-1 -7 0
-2 -8 0
-3 -9 0
-4 -7 0
-5 -8 0
-6 -9 0
";

/// All four sign combinations over two variables: unsatisfiable.
const UNSAT_FULL2: &str = "c complete 2-variable enumeration
p cnf 2 4
1 2 0
1 -2 0
-1 2 0
-1 -2 0
";

/// Triangle graph, 2 colors: odd cycle, unsatisfiable. Var 2*(node-1)+c.
const UNSAT_TRIANGLE_2COLOR: &str = "c K3 is not 2-colorable
p cnf 6 15
1 2 0
3 4 0
5 6 0
-1 -2 0
-3 -4 0
-5 -6 0
-1 -3 0
-2 -4 0
-1 -5 0
-2 -6 0
-3 -5 0
-4 -6 0
1 3 0
1 5 0
3 5 0
";

/// XOR chain with odd parity contradiction: x1^x2, x2^x3, x3^x1 all true
/// is impossible (sum of three XORs over a cycle is 0).
const UNSAT_XOR_CYCLE: &str = "c contradictory XOR cycle
p cnf 3 12
1 2 0
-1 -2 0
2 3 0
-2 -3 0
3 1 0
-3 -1 0
1 -2 -3 0
-1 2 -3 0
-1 -2 3 0
1 2 3 0
-1 2 3 0
1 -2 3 0
";

/// Pigeonhole: `holes+1` pigeons into `holes` holes, pairwise-exclusive —
/// classically hard UNSAT for resolution; the budget tests lean on it.
fn pigeonhole(holes: i32) -> Vec<Vec<i32>> {
    let p = |i: i32, j: i32| holes * i + j + 1;
    let mut clauses = Vec::new();
    for i in 0..=holes {
        clauses.push((0..holes).map(|j| p(i, j)).collect());
    }
    for j in 0..holes {
        for i1 in 0..=holes {
            for i2 in (i1 + 1)..=holes {
                clauses.push(vec![-p(i1, j), -p(i2, j)]);
            }
        }
    }
    clauses
}

fn check_model(clauses: &[Vec<i32>], s: &Solver) {
    for clause in clauses {
        let sat = clause.iter().any(|&l| {
            let v = s.value(Var(l.unsigned_abs() - 1)).expect("model covers clause vars");
            v == (l > 0)
        });
        assert!(sat, "model violates clause {clause:?}");
    }
}

// ---- verdict checks ----------------------------------------------------

#[test]
fn sat_instances_solve_with_verifiable_models() {
    for (name, text) in [("r3", SAT_R3), ("chain", SAT_CHAIN), ("triangle3", SAT_TRIANGLE_3COLOR)] {
        let clauses = parse_dimacs(text);
        let mut s = load(text);
        assert_eq!(s.solve(&[]), SolveResult::Sat, "{name} must be SAT");
        check_model(&clauses, &s);
    }
}

#[test]
fn unsat_instances_are_refuted() {
    for (name, text) in [
        ("full2", UNSAT_FULL2),
        ("triangle2", UNSAT_TRIANGLE_2COLOR),
        ("xor-cycle", UNSAT_XOR_CYCLE),
    ] {
        let mut s = load(text);
        assert_eq!(s.solve(&[]), SolveResult::Unsat, "{name} must be UNSAT");
    }
}

#[test]
fn pigeonhole_small_is_unsat() {
    for holes in [2, 3, 4] {
        let mut s = Solver::new();
        for c in pigeonhole(holes) {
            s.add_dimacs_clause(&c);
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat, "php({holes})");
    }
}

#[test]
fn chain_has_the_unique_all_true_model() {
    let mut s = load(SAT_CHAIN);
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    for v in 0..6 {
        assert_eq!(s.value(Var(v)), Some(true), "x{v}");
    }
}

// ---- assumptions -------------------------------------------------------

#[test]
fn assumptions_restrict_without_committing() {
    let mut s = load(SAT_R3);
    // Assume x1 false and x2 false: clause (1 2 3) forces x3, clause
    // (-3 2 4) then forces x4; still satisfiable.
    let a1 = Lit::from_dimacs(-1);
    let a2 = Lit::from_dimacs(-2);
    assert_eq!(s.solve(&[a1, a2]), SolveResult::Sat);
    assert_eq!(s.value(Var(2)), Some(true));
    assert_eq!(s.value(Var(3)), Some(true));
    // Contradictory assumptions are UNSAT *under assumptions* only…
    assert_eq!(s.solve(&[a1, Lit::from_dimacs(1)]), SolveResult::Unsat);
    // …and the solver is reusable afterwards with no residue.
    assert_eq!(s.solve(&[]), SolveResult::Sat);
}

#[test]
fn assumptions_pin_model_values() {
    let mut s = load(SAT_TRIANGLE_3COLOR);
    // Pin node 1 to color 2 (var 2 in DIMACS): the model must honor it.
    assert_eq!(s.solve(&[Lit::from_dimacs(2)]), SolveResult::Sat);
    assert_eq!(s.value(Var(1)), Some(true));
    assert_eq!(s.value(Var(0)), Some(false), "one-hot excludes color 1");
    check_model(&parse_dimacs(SAT_TRIANGLE_3COLOR), &s);
}

// ---- incremental re-solve ----------------------------------------------

#[test]
fn incremental_clause_addition_flips_sat_to_unsat() {
    let mut s = load(SAT_CHAIN);
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    // The chain forces all-true; asserting !x6 contradicts it.
    s.add_dimacs_clause(&[-6]);
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
}

#[test]
fn model_enumeration_by_blocking_terminates_with_the_exact_count() {
    // (x1 | x2 | x3) with one-hot exclusivity: exactly three models.
    let mut s = Solver::new();
    s.add_dimacs_clause(&[1, 2, 3]);
    s.add_dimacs_clause(&[-1, -2]);
    s.add_dimacs_clause(&[-1, -3]);
    s.add_dimacs_clause(&[-2, -3]);
    let mut models = 0;
    while s.solve(&[]) == SolveResult::Sat {
        models += 1;
        assert!(models <= 3, "more models than the formula has");
        // Block the current model.
        let blocking: Vec<i32> = (0..3)
            .map(|v| {
                let val = s.value(Var(v)).expect("assigned");
                let d = v as i32 + 1;
                if val {
                    -d
                } else {
                    d
                }
            })
            .collect();
        s.add_dimacs_clause(&blocking);
    }
    assert_eq!(models, 3);
}

// ---- budget exhaustion -------------------------------------------------

fn hard_instance() -> Solver {
    let mut s = Solver::new();
    for c in pigeonhole(8) {
        s.add_dimacs_clause(&c);
    }
    s
}

#[test]
fn conflict_budget_exhaustion_returns_unknown_then_recovers() {
    let mut s = hard_instance();
    s.set_budget(Budget::conflicts(5));
    assert_eq!(s.solve(&[]), SolveResult::Unknown, "php(8) needs more than 5 conflicts");
    // Lifting the budget lets the same solver finish the proof.
    s.set_budget(Budget::unlimited());
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
}

#[test]
fn propagation_budget_exhaustion_returns_unknown() {
    let mut s = hard_instance();
    s.set_budget(Budget { max_propagations: Some(1), ..Budget::unlimited() });
    assert_eq!(s.solve(&[]), SolveResult::Unknown);
}

#[test]
fn expired_deadline_returns_unknown() {
    let mut s = hard_instance();
    s.set_budget(Budget::until(Deadline::after(Duration::ZERO)));
    assert_eq!(s.solve(&[]), SolveResult::Unknown);
}

#[test]
fn cancelled_token_returns_unknown_and_easy_instances_still_finish() {
    let token = CancelToken::unlimited();
    token.cancel();
    let mut s = hard_instance();
    s.set_budget(Budget::cancellable(&token));
    assert_eq!(s.solve(&[]), SolveResult::Unknown);

    // An un-fired token does not perturb results on the whole corpus.
    let live = CancelToken::unlimited();
    for (text, expect) in
        [(SAT_R3, SolveResult::Sat), (UNSAT_TRIANGLE_2COLOR, SolveResult::Unsat)]
    {
        let mut s = load(text);
        s.set_budget(Budget::cancellable(&live));
        assert_eq!(s.solve(&[]), expect);
    }
}

// ---- file-based corpus (crates/sat/tests/dimacs/) ----------------------

/// The on-disk corpus with its expected-verdict table. Generated families:
/// pigeonhole (UNSAT by the pigeonhole principle), parity chains (XOR
/// cycle with consistent/contradictory closing constraint), and seeded
/// random 3-SAT whose verdicts were brute-force verified at generation
/// time.
const FILE_CORPUS: &[(&str, &str, SolveResult)] = &[
    ("php4.cnf", include_str!("dimacs/php4.cnf"), SolveResult::Unsat),
    ("php5.cnf", include_str!("dimacs/php5.cnf"), SolveResult::Unsat),
    ("php6.cnf", include_str!("dimacs/php6.cnf"), SolveResult::Unsat),
    ("php7.cnf", include_str!("dimacs/php7.cnf"), SolveResult::Unsat),
    ("parity_chain_sat.cnf", include_str!("dimacs/parity_chain_sat.cnf"), SolveResult::Sat),
    ("parity_chain_unsat.cnf", include_str!("dimacs/parity_chain_unsat.cnf"), SolveResult::Unsat),
    ("rand3_s1.cnf", include_str!("dimacs/rand3_s1.cnf"), SolveResult::Sat),
    ("rand3_s2.cnf", include_str!("dimacs/rand3_s2.cnf"), SolveResult::Unsat),
    ("rand3_s3.cnf", include_str!("dimacs/rand3_s3.cnf"), SolveResult::Unsat),
];

#[test]
fn file_corpus_verdicts_match_the_expected_table() {
    for &(name, text, expect) in FILE_CORPUS {
        let clauses = parse_dimacs(text);
        let mut s = load(text);
        assert_eq!(s.solve(&[]), expect, "{name}");
        if expect == SolveResult::Sat {
            check_model(&clauses, &s);
        }
    }
}

#[test]
fn file_corpus_round_trips_through_the_parser() {
    // Re-serialize the parsed clauses and parse again: the clause list must
    // be identical (the corpus files stay canonical).
    for &(name, text, _) in FILE_CORPUS {
        let clauses = parse_dimacs(text);
        let nv = clauses.iter().flatten().map(|l| l.unsigned_abs()).max().unwrap_or(0);
        let mut out = format!("p cnf {nv} {}\n", clauses.len());
        for c in &clauses {
            for l in c {
                out.push_str(&format!("{l} "));
            }
            out.push_str("0\n");
        }
        assert_eq!(parse_dimacs(&out), clauses, "{name} round-trip");
    }
}

#[test]
fn file_corpus_verdicts_identical_to_the_pre_arena_baseline() {
    // The acceptance criterion for the arena swap: same SAT/UNSAT verdict
    // per corpus file as the frozen pre-arena solver, and identical models
    // where the instance forces them (UNSAT disagreement would be a
    // soundness bug in one of the two).
    for &(name, text, expect) in FILE_CORPUS {
        let mut new = load(text);
        let mut old = rtlock_sat::baseline::Solver::new();
        for clause in parse_dimacs(text) {
            old.add_dimacs_clause(&clause);
        }
        let nv = new.solve(&[]);
        let ov = old.solve(&[]);
        assert_eq!(nv, expect, "{name}: arena solver");
        assert_eq!(ov, expect, "{name}: baseline solver");
    }
}

#[test]
fn child_token_cancellation_reaches_a_running_budget() {
    // A parent-fired cancel must stop a solve budgeted on a *child* token
    // (the portfolio topology: run token -> per-attack child).
    let parent = CancelToken::unlimited();
    let child = parent.child();
    parent.cancel();
    let mut s = hard_instance();
    s.set_budget(Budget::cancellable(&child));
    assert_eq!(s.solve(&[]), SolveResult::Unknown);
}
