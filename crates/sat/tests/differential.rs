//! Differential solver oracle.
//!
//! Property-fuzzes random CNFs (≤ 14 variables, clause widths 1–4 with
//! naturally occurring units, duplicate literals and tautologies) and
//! cross-checks the arena solver three ways:
//!
//! 1. its SAT/UNSAT verdict against exhaustive model enumeration;
//! 2. every SAT model replayed against every clause;
//! 3. its verdict against the frozen pre-arena [`rtlock_sat::baseline`]
//!    solver, plus blocking-clause enumeration counts against the
//!    brute-force model count;
//!
//! and re-solving the same instance must reproduce the verdict, the
//! [`rtlock_sat::Stats`] and the model bit-for-bit (the determinism
//! contract of DESIGN.md §14).
//!
//! Case count defaults to 48 per property; the `sat-differential` CI job
//! (and anyone hunting a discrepancy) can raise it with
//! `RTLOCK_SAT_DIFF_CASES=512`.

use proptest::prelude::*;
use rtlock_sat::{SatBackend, SolveResult, Solver, Var};

/// A raw random CNF: variable count plus clauses of (var-seed, sign)
/// pairs. Seeds are reduced mod the variable count so the same generator
/// covers every width/variable mix without a dependent strategy.
type RawCnf = (u32, Vec<Vec<(u32, bool)>>);

fn materialize(raw: &RawCnf) -> (u32, Vec<Vec<i32>>) {
    let nv = raw.0;
    let clauses = raw
        .1
        .iter()
        .map(|c| c.iter().map(|&(v, pos)| ((v % nv) as i32 + 1) * if pos { 1 } else { -1 }).collect())
        .collect();
    (nv, clauses)
}

/// Exhaustive model count over `nv` variables.
fn brute_force_models(nv: u32, clauses: &[Vec<i32>]) -> u64 {
    let mut count = 0;
    for bits in 0u64..(1u64 << nv) {
        let sat = clauses.iter().all(|c| {
            c.iter().any(|&l| {
                let val = bits >> (l.unsigned_abs() - 1) & 1 == 1;
                (l > 0) == val
            })
        });
        count += u64::from(sat);
    }
    count
}

fn solve_fresh<S: SatBackend>(nv: u32, clauses: &[Vec<i32>]) -> (SolveResult, S) {
    let mut s = S::new();
    s.reserve_vars(nv as usize);
    for c in clauses {
        s.add_dimacs_clause(c);
    }
    let r = s.solve(&[]);
    (r, s)
}

fn cases() -> u32 {
    std::env::var("RTLOCK_SAT_DIFF_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(48)
}

fn clause_strategy() -> impl Strategy<Value = Vec<(u32, bool)>> {
    collection::vec((0u32..14, any::<bool>()), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn verdict_matches_exhaustive_enumeration(
        nv in 1u32..=14,
        raw_clauses in collection::vec(clause_strategy(), 1..41),
    ) {
        let (nv, clauses) = materialize(&(nv, raw_clauses));
        let expected = brute_force_models(nv, &clauses);
        let (verdict, solver) = solve_fresh::<Solver>(nv, &clauses);
        if expected > 0 {
            prop_assert_eq!(verdict, SolveResult::Sat, "brute force found {} models", expected);
            // Replay the model against every clause.
            for c in &clauses {
                let sat = c.iter().any(|&l| {
                    solver.value(Var(l.unsigned_abs() - 1)).map(|v| (l > 0) == v).unwrap_or(false)
                });
                prop_assert!(sat, "model violates {:?}", c);
            }
        } else {
            prop_assert_eq!(verdict, SolveResult::Unsat, "brute force found no model");
        }
    }

    #[test]
    fn arena_and_baseline_agree_and_enumeration_counts_models(
        nv in 1u32..=8,
        raw_clauses in collection::vec(clause_strategy(), 1..30),
    ) {
        let (nv, clauses) = materialize(&(nv, raw_clauses));
        let expected = brute_force_models(nv, &clauses);
        let (new_verdict, _) = solve_fresh::<Solver>(nv, &clauses);
        let (old_verdict, _) = solve_fresh::<rtlock_sat::baseline::Solver>(nv, &clauses);
        prop_assert_eq!(new_verdict, old_verdict, "arena vs baseline verdict");

        // Blocking-clause enumeration over all nv variables must visit
        // exactly the brute-force model count (every variable is
        // allocated, so each SAT answer assigns all of them).
        let mut s = Solver::new();
        s.reserve_vars(nv as usize);
        for c in &clauses {
            s.add_dimacs_clause(c);
        }
        let mut enumerated = 0u64;
        while s.solve(&[]) == SolveResult::Sat {
            enumerated += 1;
            prop_assert!(enumerated <= expected, "enumerated more than the {} real models", expected);
            let blocking: Vec<i32> = (0..nv)
                .map(|v| {
                    let d = v as i32 + 1;
                    match s.value(Var(v)) {
                        Some(true) => -d,
                        _ => d,
                    }
                })
                .collect();
            s.add_dimacs_clause(&blocking);
        }
        prop_assert_eq!(enumerated, expected, "blocking enumeration vs brute force");
    }

    #[test]
    fn repeat_solves_are_bit_identical(
        nv in 1u32..=14,
        raw_clauses in collection::vec(clause_strategy(), 1..41),
    ) {
        let (nv, clauses) = materialize(&(nv, raw_clauses));
        let run = || {
            let (r, s) = solve_fresh::<Solver>(nv, &clauses);
            let model: Vec<Option<bool>> = (0..nv).map(|v| s.value(Var(v))).collect();
            (r, s.stats(), model)
        };
        prop_assert_eq!(run(), run(), "same input + budget must reproduce verdict, stats and model");
    }
}
