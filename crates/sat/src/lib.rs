//! A from-scratch CDCL SAT solver.
//!
//! This is the decision engine behind the oracle-guided SAT attack, the BMC
//! attack and the formal equivalence checks of the RTLock reproduction —
//! the role MiniSat plays inside the original attack tool of Subramanyan et
//! al. (\[4\], \[38\] in the paper).
//!
//! Features: a flat `u32` clause arena ([`clause_db`]) with tombstone
//! deletion and compacting GC, two-watched-literal propagation with
//! blocker literals, VSIDS branching with phase saving, first-UIP clause
//! learning with recursive minimization, LBD ("glue") tracking with
//! glucose-style learnt reduction and restart signalling alongside Luby
//! ([`reduce`]), inter-restart inprocessing ([`simplify`]), incremental
//! solving under assumptions, and conflict/propagation/wall-clock budgets
//! so attack experiments can enforce the paper's timeout regime. The
//! pre-arena solver is preserved in [`baseline`] as the differential
//! oracle, and [`SatBackend`] abstracts over both.
//!
//! # Examples
//!
//! ```
//! use rtlock_sat::{Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! // (x1 | x2) & (!x1 | x2) & (x1 | !x2)  =>  x1 = x2 = 1
//! s.add_dimacs_clause(&[1, 2]);
//! s.add_dimacs_clause(&[-1, 2]);
//! s.add_dimacs_clause(&[1, -2]);
//! assert_eq!(s.solve(&[]), SolveResult::Sat);
//! assert_eq!(s.value(rtlock_sat::Var(0)), Some(true));
//! assert_eq!(s.value(rtlock_sat::Var(1)), Some(true));
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod baseline;
mod clause_db;
mod reduce;
mod simplify;
pub mod solver;
pub mod types;

pub use backend::SatBackend;
pub use solver::{Budget, Diversification, Solver, Stats, INPROCESS_MIN_VARS};
pub use types::{Lit, SolveResult, Var};
