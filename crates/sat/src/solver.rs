//! The CDCL solver.
//!
//! The clause database is the flat arena of [`crate::clause_db`]; learnt
//! clauses carry their literal-block distance (LBD, "glue") and the learnt
//! set is periodically reduced by glue ([`crate::reduce`]); cheap
//! inprocessing runs between restarts ([`crate::simplify`]). The search
//! itself is classic CDCL: two-watched-literal propagation with blocker
//! literals, VSIDS decisions with phase saving, first-UIP learning with
//! recursive clause minimization, and Luby restarts tightened by a
//! glue-EMA signal.
//!
//! Determinism contract: a solve is a pure function of the clause/variable
//! insertion sequence and the budget — same input and budget produce the
//! same verdict, the same [`Stats`] and the same model, bit for bit. No
//! randomness, no hashing, and only integer arithmetic in the restart and
//! reduction policies. (Wall-clock deadlines and cancel tokens are the
//! deliberate exception: they exist to cut searches short.)

use crate::clause_db::{CRef, ClauseDB, CREF_NONE};
use crate::reduce::LbdQueue;
use crate::types::{Lit, SolveResult, Var};
use rtlock_governor::CancelToken;
use std::time::Instant;

/// Resource limits for a solve call. The solver checks the budget at every
/// restart boundary and returns [`SolveResult::Unknown`] when exceeded.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Maximum number of conflicts.
    pub max_conflicts: Option<u64>,
    /// Maximum number of unit propagations.
    pub max_propagations: Option<u64>,
    /// Wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation: a fired token stops the solve at the next
    /// restart boundary with [`SolveResult::Unknown`]. This is how a
    /// portfolio executor interrupts a losing solver mid-search — a
    /// deadline alone cannot be fired early from another thread.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// No limits.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Limit by conflict count only.
    pub fn conflicts(n: u64) -> Budget {
        Budget { max_conflicts: Some(n), ..Budget::default() }
    }

    /// Limit by a shared wall-clock [`Deadline`](rtlock_governor::Deadline)
    /// only (an unbounded deadline yields an unlimited budget).
    pub fn until(deadline: rtlock_governor::Deadline) -> Budget {
        Budget { deadline: deadline.as_instant(), ..Budget::default() }
    }

    /// Limit by a [`CancelToken`]: both its deadline and its (possibly
    /// cross-thread) cancel flag bound the solve.
    pub fn cancellable(token: &CancelToken) -> Budget {
        Budget {
            deadline: token.deadline().as_instant(),
            cancel: Some(token.clone()),
            ..Budget::default()
        }
    }

    /// Attaches a cancel token to an existing budget (builder-style).
    #[must_use]
    pub fn with_cancel(mut self, token: &CancelToken) -> Budget {
        self.cancel = Some(token.clone());
        self
    }

    pub(crate) fn exceeded(&self, stats: &Stats) -> bool {
        if let Some(mc) = self.max_conflicts {
            if stats.conflicts >= mc {
                return true;
            }
        }
        if let Some(mp) = self.max_propagations {
            if stats.propagations >= mp {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return true;
            }
        }
        false
    }
}

/// Search statistics, cumulative over the solver's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Branching decisions made.
    pub decisions: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnts: u64,
    /// Learnt-database reduction passes.
    pub reduces: u64,
    /// Learnt clauses dropped by reduction.
    pub removed_learnts: u64,
    /// Inter-restart simplification passes that did work.
    pub simplifies: u64,
    /// Arena garbage collections (compactions).
    pub gc_runs: u64,
    /// Literals removed by recursive conflict-clause minimization.
    pub minimized_lits: u64,
    /// Models checked against the full clause arena (debug builds run the
    /// check on every SAT answer; release builds only count explicit
    /// [`Solver::verify_model`] calls).
    pub verified_models: u64,
}

/// Decision diversification for portfolio/parallel DIP mining.
///
/// A diversified solver explores a different part of the search tree than
/// an undiversified one while remaining *fully deterministic*: the seed
/// fixes the initial phase polarity of every variable and drives a
/// splitmix/xorshift stream that redirects a fixed fraction of decisions
/// to a pseudo-random unassigned variable instead of the VSIDS top.
/// Identical seeds and inputs reproduce identical searches, so a fleet of
/// miners with distinct seeds is reproducible run-to-run.
///
/// The default (`seed == 0`, `random_decision_permille == 0`) is inert:
/// the solver behaves bit-identically to one that never heard of
/// diversification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Diversification {
    /// Seeds the initial phase polarity of every variable (0 = keep the
    /// solver's default all-false phases).
    pub seed: u64,
    /// Per-mille of decisions redirected to a seeded pseudo-random
    /// unassigned variable (0 = pure VSIDS).
    pub random_decision_permille: u16,
}

impl Diversification {
    /// `true` when any diversification knob is set.
    pub fn is_active(&self) -> bool {
        self.seed != 0 || self.random_decision_permille != 0
    }
}

/// SplitMix64 — the one-shot seeding hash behind [`Diversification`].
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One watch-list entry: the clause plus a cached "blocker" literal from
/// it. If the blocker is already true the clause is satisfied and the
/// arena is never touched — the hot-path win of the MiniSat watcher scheme.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Watcher {
    pub(crate) cref: CRef,
    pub(crate) blocker: Lit,
}

/// A CDCL SAT solver: two-watched-literal propagation over a flat clause
/// arena, VSIDS decisions with phase saving, first-UIP clause learning
/// with recursive minimization, LBD-driven learnt-clause reduction, Luby +
/// glue-EMA restarts, inter-restart simplification, and incremental
/// solving under assumptions.
///
/// # Examples
///
/// ```
/// use rtlock_sat::{Solver, SolveResult, Var};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.positive(), b.positive()]);
/// s.add_clause(&[a.negative()]);
/// assert_eq!(s.solve(&[]), SolveResult::Sat);
/// assert_eq!(s.value(b), Some(true));
/// // Incremental: now assume b is false.
/// assert_eq!(s.solve(&[b.negative()]), SolveResult::Unsat);
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    pub(crate) db: ClauseDB,
    pub(crate) watches: Vec<Vec<Watcher>>,
    pub(crate) assign: Vec<i8>,
    pub(crate) level: Vec<u32>,
    pub(crate) reason: Vec<CRef>,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    pub(crate) qhead: usize,
    pub(crate) activity: Vec<f64>,
    pub(crate) var_inc: f64,
    pub(crate) phase: Vec<bool>,
    pub(crate) heap: Vec<Var>,
    pub(crate) heap_pos: Vec<usize>,
    pub(crate) ok: bool,
    pub(crate) stats: Stats,
    pub(crate) budget: Budget,
    pub(crate) seen: Vec<u8>,
    pub(crate) model: Vec<i8>,
    /// Per-decision-level stamps for LBD computation.
    pub(crate) lbd_stamp: Vec<u64>,
    pub(crate) lbd_counter: u64,
    /// Recent-glue window driving the EMA restart signal.
    pub(crate) lbd_queue: LbdQueue,
    /// Lifetime sum of learnt-clause LBDs (the EMA baseline).
    pub(crate) lbd_sum: u64,
    /// Learnt-count threshold for the next reduction (grows geometrically).
    pub(crate) reduce_limit: u64,
    /// Trail length after the last simplification pass.
    pub(crate) simplified_at: usize,
    /// Scratch stack for recursive clause minimization.
    pub(crate) analyze_stack: Vec<Lit>,
    /// Decision diversification (inert by default).
    pub(crate) div: Diversification,
    /// Deterministic xorshift stream for the random-decision fraction.
    pub(crate) div_rng: u64,
    /// Instances with fewer variables than this skip the glue-EMA restart
    /// signal, learnt-database reduction and inter-restart inprocessing:
    /// on tiny formulas the bookkeeping costs more than the search it
    /// saves (the php4/php5 regression vs the pre-arena baseline).
    /// `0` disables the gate (always inprocess).
    pub(crate) inproc_min_vars: usize,
}

const HEAP_NONE: usize = usize::MAX;

/// Default variable-count floor for inprocessing (glue-EMA restarts,
/// learnt reduction, inter-restart simplification). Chosen from the
/// DIMACS bench corpus: php(4→3)/php(5→4) (12/20 vars) regressed vs the
/// pre-arena baseline purely on bookkeeping, while php(6→5) (30 vars) and
/// php(7→6) (42 vars) profit from the full machinery.
pub const INPROCESS_MIN_VARS: usize = 28;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            db: ClauseDB::default(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            phase: Vec::new(),
            heap: Vec::new(),
            heap_pos: Vec::new(),
            ok: true,
            stats: Stats::default(),
            budget: Budget::unlimited(),
            seen: Vec::new(),
            model: Vec::new(),
            lbd_stamp: vec![0],
            lbd_counter: 0,
            lbd_queue: LbdQueue::default(),
            lbd_sum: 0,
            reduce_limit: 2000,
            simplified_at: 0,
            analyze_stack: Vec::new(),
            div: Diversification::default(),
            div_rng: 0,
            inproc_min_vars: INPROCESS_MIN_VARS,
        }
    }

    /// Sets the resource budget for subsequent [`Solver::solve`] calls.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Applies decision diversification: reseeds the saved phase of every
    /// existing variable from `div.seed` (phases of variables allocated
    /// later are seeded on creation) and arms the random-decision
    /// fraction. Call once, right after loading the formula; an inert
    /// [`Diversification::default`] leaves the solver bit-identical to an
    /// undiversified one.
    pub fn set_diversification(&mut self, div: Diversification) {
        self.div = div;
        self.div_rng = splitmix64(div.seed) | 1;
        if div.seed != 0 {
            for v in 0..self.phase.len() {
                self.phase[v] = splitmix64(div.seed ^ (v as u64)) & 1 == 1;
            }
        }
    }

    /// Sets the variable-count threshold below which the solver skips
    /// glue-EMA restarts, learnt reduction and inter-restart
    /// simplification. `0` disables the gate; the default is
    /// [`INPROCESS_MIN_VARS`].
    pub fn set_inprocessing_threshold(&mut self, vars: usize) {
        self.inproc_min_vars = vars;
    }

    /// `true` when this instance is below the inprocessing threshold.
    #[inline]
    pub(crate) fn inprocessing_gated(&self) -> bool {
        self.num_vars() < self.inproc_min_vars
    }

    /// Cumulative search statistics.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(0);
        self.level.push(0);
        self.reason.push(CREF_NONE);
        self.activity.push(0.0);
        self.phase.push(if self.div.seed != 0 {
            splitmix64(self.div.seed ^ (v.0 as u64)) & 1 == 1
        } else {
            false
        });
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.seen.push(0);
        self.heap_pos.push(HEAP_NONE);
        self.lbd_stamp.push(0);
        self.heap_insert(v);
        v
    }

    /// Ensures at least `n` variables exist (for DIMACS-style loading).
    pub fn reserve_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Adds a clause given in DIMACS literals, allocating variables on
    /// demand. Returns `false` if the formula is now trivially UNSAT.
    pub fn add_dimacs_clause(&mut self, lits: &[i32]) -> bool {
        let max_var = lits.iter().map(|l| l.unsigned_abs() as usize).max().unwrap_or(0);
        self.reserve_vars(max_var);
        let converted: Vec<Lit> = lits.iter().map(|&l| Lit::from_dimacs(l)).collect();
        self.add_clause(&converted)
    }

    /// Adds a clause. Must be called at decision level 0 (i.e. between
    /// solve calls). Returns `false` if the formula is now trivially UNSAT.
    ///
    /// # Panics
    ///
    /// Panics if called mid-search or with unallocated variables.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(self.trail_lim.is_empty(), "add_clause must be called at level 0");
        if !self.ok {
            return false;
        }
        for l in lits {
            assert!(l.var().index() < self.num_vars(), "unallocated variable {}", l.var());
        }
        // Simplify: sort/dedup, drop false lits, detect tautology/satisfied.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort();
        ls.dedup();
        let mut out = Vec::with_capacity(ls.len());
        for &l in &ls {
            if ls.contains(&!l) {
                return true; // tautology
            }
            match self.lit_value(l) {
                Some(true) => return true, // already satisfied at level 0
                Some(false) => {}          // drop falsified literal
                None => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(out[0], CREF_NONE);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(&out, false);
                true
            }
        }
    }

    pub(crate) fn attach_clause(&mut self, lits: &[Lit], learnt: bool) -> CRef {
        let cref = self.db.alloc(lits, learnt);
        self.watches[lits[0].index()].push(Watcher { cref, blocker: lits[1] });
        self.watches[lits[1].index()].push(Watcher { cref, blocker: lits[0] });
        if learnt {
            self.stats.learnts += 1;
        }
        cref
    }

    /// The model value of a variable after a [`SolveResult::Sat`] answer;
    /// `None` if the variable did not occur in the search.
    pub fn value(&self, var: Var) -> Option<bool> {
        let v = self.model.get(var.index()).copied().unwrap_or(0);
        match v {
            1 => Some(true),
            -1 => Some(false),
            _ => None,
        }
    }

    fn assigned_value(&self, var: Var) -> Option<bool> {
        match self.assign[var.index()] {
            1 => Some(true),
            -1 => Some(false),
            _ => None,
        }
    }

    pub(crate) fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.assigned_value(lit.var()).map(|v| lit.apply(v))
    }

    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    pub(crate) fn enqueue(&mut self, lit: Lit, reason: CRef) {
        debug_assert_eq!(self.lit_value(lit), None);
        let v = lit.var();
        self.assign[v.index()] = if lit.is_positive() { 1 } else { -1 };
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.phase[v.index()] = lit.is_positive();
        self.trail.push(lit);
    }

    /// Propagates enqueued assignments; returns a conflicting clause.
    pub(crate) fn propagate(&mut self) -> Option<CRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            let mut j = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                // Blocker already true: clause satisfied, arena untouched.
                if self.lit_value(w.blocker) == Some(true) {
                    ws[j] = w;
                    j += 1;
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                // Normalize: the falsified watch sits at position 1.
                if self.db.lit(cref, 0) == false_lit {
                    self.db.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.db.lit(cref, 1), false_lit);
                let first = self.db.lit(cref, 0);
                let next_w = Watcher { cref, blocker: first };
                if first != w.blocker && self.lit_value(first) == Some(true) {
                    ws[j] = next_w;
                    j += 1;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let size = self.db.size(cref);
                for k in 2..size {
                    let l = self.db.lit(cref, k);
                    if self.lit_value(l) != Some(false) {
                        self.db.swap_lits(cref, 1, k);
                        self.watches[l.index()].push(next_w);
                        i += 1;
                        continue 'watchers;
                    }
                }
                // Unit or conflict.
                ws[j] = next_w;
                j += 1;
                i += 1;
                if self.lit_value(first) == Some(false) {
                    // Conflict: keep the rest of the list and stop.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(cref);
                } else {
                    self.enqueue(first, cref);
                }
            }
            ws.truncate(j);
            let existing = std::mem::take(&mut self.watches[false_lit.index()]);
            ws.extend(existing);
            self.watches[false_lit.index()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    pub(crate) fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    pub(crate) fn backtrack_to(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for i in (bound..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assign[v.index()] = 0;
            self.reason[v.index()] = CREF_NONE;
            if self.heap_pos[v.index()] == HEAP_NONE {
                self.heap_insert(v);
            }
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    // ---- VSIDS order heap --------------------------------------------

    /// Max-heap order with a total comparison (`total_cmp` is NaN-proof)
    /// and a variable-index tie-break so the branching order is fully
    /// deterministic even when activities collide (e.g. right after a
    /// rescale or on fresh variables).
    fn heap_less(&self, a: Var, b: Var) -> bool {
        match self.activity[a.index()].total_cmp(&self.activity[b.index()]) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => a.0 < b.0,
        }
    }

    fn heap_insert(&mut self, v: Var) {
        debug_assert_eq!(self.heap_pos[v.index()], HEAP_NONE);
        self.heap_pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_pos[self.heap[a].index()] = a;
        self.heap_pos[self.heap[b].index()] = b;
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_pos[top.index()] = HEAP_NONE;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last.index()] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    pub(crate) fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            self.rescale_activities();
        }
        let pos = self.heap_pos[v.index()];
        if pos != HEAP_NONE {
            self.heap_sift_up(pos);
        }
    }

    /// Rescales every activity and the increment by 1e-100, preserving
    /// relative order. Called from [`Solver::bump_var`] when an activity
    /// crosses 1e100 and from [`Solver::decay_activities`] when the
    /// increment itself threatens to overflow to `inf` (an `inf - inf` or
    /// `inf * 0` later would mint the NaNs that break heap comparators).
    fn rescale_activities(&mut self) {
        for a in &mut self.activity {
            *a *= 1e-100;
        }
        self.var_inc *= 1e-100;
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        if self.var_inc > 1e100 {
            self.rescale_activities();
        }
    }

    // ---- conflict analysis --------------------------------------------

    fn abstract_level(&self, v: Var) -> u32 {
        1 << (self.level[v.index()] & 31)
    }

    /// Distinct decision levels among `lits` (the literal-block distance),
    /// computed with per-level stamps in O(|lits|).
    pub(crate) fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_counter += 1;
        let stamp = self.lbd_counter;
        let mut lbd = 0;
        for &l in lits {
            let lv = self.level[l.var().index()] as usize;
            if lv > 0 && self.lbd_stamp[lv] != stamp {
                self.lbd_stamp[lv] = stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// First-UIP analysis with recursive minimization; returns the learnt
    /// clause (asserting literal first), the backjump level, and the LBD.
    fn analyze(&mut self, mut conflict: CRef) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = Vec::with_capacity(8);
        learnt.push(Lit::from_code(0)); // slot 0: the asserting literal
        let mut path = 0u32;
        let mut p: Option<Lit> = None;
        let mut trail_idx = self.trail.len();

        loop {
            debug_assert!(conflict != CREF_NONE, "non-decision must have a reason");
            let size = self.db.size(conflict);
            let start = usize::from(p.is_some());
            for i in start..size {
                let q = self.db.lit(conflict, i);
                let v = q.var();
                if self.seen[v.index()] == 0 && self.level[v.index()] > 0 {
                    self.seen[v.index()] = 1;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        path += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next marked literal on the trail at the current level.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var().index()] != 0 {
                    break;
                }
            }
            let pl = self.trail[trail_idx];
            p = Some(pl);
            self.seen[pl.var().index()] = 0;
            path -= 1;
            if path == 0 {
                break;
            }
            conflict = self.reason[pl.var().index()];
        }
        learnt[0] = !p.expect("first UIP");

        // Recursive minimization: drop literals implied by the rest.
        let mut to_clear: Vec<Var> = learnt[1..].iter().map(|l| l.var()).collect();
        let mut abstract_levels = 0u32;
        for &l in &learnt[1..] {
            abstract_levels |= self.abstract_level(l.var());
        }
        let mut kept = Vec::with_capacity(learnt.len());
        kept.push(learnt[0]);
        for &l in learnt.iter().skip(1) {
            if self.reason[l.var().index()] == CREF_NONE
                || !self.lit_redundant(l, abstract_levels, &mut to_clear)
            {
                kept.push(l);
            } else {
                self.stats.minimized_lits += 1;
            }
        }
        let mut learnt = kept;
        for v in to_clear {
            self.seen[v.index()] = 0;
        }

        let lbd = self.compute_lbd(&learnt);

        // Backjump level = second-highest level in the clause; its literal
        // moves to slot 1 so both watches are sound after the jump.
        let mut backjump = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            backjump = self.level[learnt[1].var().index()];
        }
        (learnt, backjump, lbd)
    }

    /// MiniSat's recursive redundancy check: `p` can be dropped from the
    /// learnt clause if every literal reachable through its reason chain is
    /// already in the clause (seen) or sits at level 0. `to_clear` collects
    /// the extra `seen` marks so the caller can wipe them.
    fn lit_redundant(&mut self, p: Lit, abstract_levels: u32, to_clear: &mut Vec<Var>) -> bool {
        let mut stack = std::mem::take(&mut self.analyze_stack);
        stack.clear();
        stack.push(p);
        let top = to_clear.len();
        let mut redundant = true;
        'walk: while let Some(q) = stack.pop() {
            let cref = self.reason[q.var().index()];
            debug_assert!(cref != CREF_NONE);
            let size = self.db.size(cref);
            for i in 1..size {
                let l = self.db.lit(cref, i);
                let v = l.var();
                if self.seen[v.index()] == 0 && self.level[v.index()] > 0 {
                    if self.reason[v.index()] != CREF_NONE
                        && (self.abstract_level(v) & abstract_levels) != 0
                    {
                        self.seen[v.index()] = 1;
                        stack.push(l);
                        to_clear.push(v);
                    } else {
                        // A decision (or a foreign level) blocks the chain:
                        // undo the marks made during this probe.
                        for &u in &to_clear[top..] {
                            self.seen[u.index()] = 0;
                        }
                        to_clear.truncate(top);
                        redundant = false;
                        break 'walk;
                    }
                }
            }
        }
        stack.clear();
        self.analyze_stack = stack;
        redundant
    }

    // ---- model self-check ------------------------------------------------

    /// Checks the most recent model against every live clause in the
    /// arena. Debug builds run this on every SAT answer (and panic on
    /// failure); harnesses may call it directly. Counted in
    /// [`Stats::verified_models`].
    pub fn verify_model(&mut self) -> bool {
        self.stats.verified_models += 1;
        let model = &self.model;
        let lit_true = |l: Lit| match model.get(l.var().index()).copied().unwrap_or(0) {
            1 => l.is_positive(),
            -1 => !l.is_positive(),
            _ => false,
        };
        // Level-0 facts must be reflected in the model, too.
        for &l in &self.trail {
            if self.level[l.var().index()] == 0 && !lit_true(l) {
                return false;
            }
        }
        for cref in self.db.refs() {
            let size = self.db.size(cref);
            if !(0..size).any(|i| lit_true(self.db.lit(cref, i))) {
                return false;
            }
        }
        true
    }

    // ---- main search -----------------------------------------------------

    /// Solves under the given assumptions.
    ///
    /// Returns [`SolveResult::Sat`] with the model readable via
    /// [`Solver::value`], [`SolveResult::Unsat`] if no assignment extends
    /// the assumptions, or [`SolveResult::Unknown`] when the budget runs
    /// out. The solver can be reused (and extended with clauses) after any
    /// result.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        // An already-exhausted budget (expired deadline, fired cancel
        // token) stops the solve before any search, so cancellation is
        // deterministic even on instances that would solve conflict-free.
        if self.budget.exceeded(&self.stats) {
            return SolveResult::Unknown;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        if !self.inprocessing_gated() {
            self.simplify_db();
            if !self.ok {
                return SolveResult::Unsat;
            }
        }

        let mut luby_index = 0u64;
        loop {
            let restart_budget = 100 * luby(luby_index);
            luby_index += 1;
            match self.search(restart_budget, assumptions) {
                Some(r) => {
                    if r == SolveResult::Sat {
                        self.model = self.assign.clone();
                        if cfg!(debug_assertions) {
                            assert!(
                                self.verify_model(),
                                "SAT model fails the clause-arena self-check"
                            );
                        }
                    }
                    self.backtrack_to(0);
                    return r;
                }
                None => {
                    self.stats.restarts += 1;
                    self.lbd_queue.clear();
                    self.backtrack_to(0);
                    if self.budget.exceeded(&self.stats) {
                        return SolveResult::Unknown;
                    }
                    // Inprocessing between restarts: fold the top-level
                    // facts learnt so far into the arena. Gated off on
                    // small instances, where the pass costs more than the
                    // propagation it saves.
                    if !self.inprocessing_gated() {
                        self.simplify_db();
                        if !self.ok {
                            return SolveResult::Unsat;
                        }
                    }
                }
            }
        }
    }

    /// Runs until `conflict_budget` conflicts (restart), a glue-EMA
    /// restart, a result, or a budget stop. `None` means "restart".
    fn search(&mut self, conflict_budget: u64, assumptions: &[Lit]) -> Option<SolveResult> {
        let mut conflicts_here = 0u64;
        let gated = self.inprocessing_gated();
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                // Never backjump into the assumption levels with a learnt
                // unit that contradicts them: analyze and jump; if the
                // asserting level is inside assumptions, re-deciding will
                // detect the contradiction below.
                let (learnt, backjump, lbd) = self.analyze(conflict);
                if !gated {
                    self.lbd_queue.push(lbd);
                    self.lbd_sum += u64::from(lbd);
                }
                self.backtrack_to(backjump);
                if learnt.len() == 1 {
                    if self.lit_value(learnt[0]) == Some(false) {
                        self.ok = self.decision_level() > 0;
                        return Some(SolveResult::Unsat);
                    }
                    if self.lit_value(learnt[0]).is_none() {
                        self.enqueue(learnt[0], CREF_NONE);
                    }
                } else {
                    let cref = self.attach_clause(&learnt, true);
                    self.db.set_lbd(cref, lbd);
                    self.enqueue(learnt[0], cref);
                }
                self.decay_activities();
                if conflicts_here >= conflict_budget
                    || (!gated && self.glue_restart_signal())
                    || self.budget.exceeded(&self.stats)
                {
                    return None; // restart / budget check
                }
                if !gated && self.stats.learnts >= self.reduce_limit {
                    self.reduce_db();
                }
            } else {
                // Assumptions first.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        Some(true) => {
                            self.new_decision_level();
                            continue;
                        }
                        Some(false) => return Some(SolveResult::Unsat),
                        None => {
                            self.new_decision_level();
                            self.enqueue(a, CREF_NONE);
                            continue;
                        }
                    }
                }
                // Pick a branching variable: a seeded pseudo-random probe
                // for the diversified fraction, the VSIDS top otherwise.
                // The probe leaves the heap untouched — the probed
                // variable is skipped by later pops once assigned.
                let mut next = None;
                if self.div.random_decision_permille > 0 && self.num_vars() > 0 {
                    self.div_rng ^= self.div_rng << 13;
                    self.div_rng ^= self.div_rng >> 7;
                    self.div_rng ^= self.div_rng << 17;
                    if self.div_rng % 1000 < u64::from(self.div.random_decision_permille) {
                        let probe = Var(((self.div_rng >> 16) % self.num_vars() as u64) as u32);
                        if self.assign[probe.index()] == 0 {
                            next = Some(probe);
                        }
                    }
                }
                if next.is_none() {
                    next = loop {
                        match self.heap_pop() {
                            Some(v) if self.assign[v.index()] == 0 => break Some(v),
                            Some(_) => continue,
                            None => break None,
                        }
                    };
                }
                match next {
                    None => return Some(SolveResult::Sat),
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.new_decision_level();
                        let lit = Lit::new(v, self.phase[v.index()]);
                        self.enqueue(lit, CREF_NONE);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,...), 0-indexed.
pub(crate) fn luby(i: u64) -> u64 {
    let mut x = i + 1;
    loop {
        let k = 64 - x.leading_zeros() as u64;
        if x == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        x -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(dimacs: &[i32]) -> Vec<Lit> {
        dimacs.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    #[test]
    fn trivially_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a.positive()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.positive()]));
        assert!(!s.add_clause(&[a.negative()]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn implication_chain() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..20).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(&[w[0].negative(), w[1].positive()]);
        }
        s.add_clause(&[vars[0].positive()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(vars[19]), Some(true));
    }

    #[test]
    fn xor_chain_unsat() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 1 is UNSAT (odd cycle).
        let mut s = Solver::new();
        s.reserve_vars(3);
        let xor1 = |s: &mut Solver, a: i32, b: i32| {
            s.add_dimacs_clause(&[a, b]);
            s.add_dimacs_clause(&[-a, -b]);
        };
        xor1(&mut s, 1, 2);
        xor1(&mut s, 2, 3);
        xor1(&mut s, 1, 3);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_4_into_3_unsat() {
        // Pigeon i in hole j: var p(i,j) = 3i + j + 1 (DIMACS).
        let mut s = Solver::new();
        let p = |i: i32, j: i32| 3 * i + j + 1;
        for i in 0..4 {
            s.add_dimacs_clause(&[p(i, 0), p(i, 1), p(i, 2)]);
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_dimacs_clause(&[-p(i1, j), -p(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn assumptions_are_incremental() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        assert_eq!(s.solve(&[a.negative()]), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
        assert_eq!(s.solve(&[a.negative(), b.negative()]), SolveResult::Unsat);
        // Solver still usable with other assumptions.
        assert_eq!(s.solve(&[b.negative()]), SolveResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn clauses_addable_between_solves() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause(&[a.negative()]);
        s.add_clause(&[b.negative()]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // Deterministic pseudo-random 3-SAT instances, checked against the
        // returned model.
        let mut seed = 0xDEADBEEFu64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _round in 0..30 {
            let nv = 12;
            let nc = 40;
            let mut s = Solver::new();
            s.reserve_vars(nv);
            let mut clauses = Vec::new();
            for _ in 0..nc {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (rnd() % nv as u64) as i32 + 1;
                    let sign = if rnd() % 2 == 0 { 1 } else { -1 };
                    c.push(v * sign);
                }
                clauses.push(c.clone());
                s.add_dimacs_clause(&c);
            }
            if s.solve(&[]) == SolveResult::Sat {
                for c in &clauses {
                    let ok = c.iter().any(|&l| {
                        let val = s.value(Var(l.unsigned_abs() - 1)).unwrap_or(false);
                        (l > 0) == val
                    });
                    assert!(ok, "model violates clause {c:?}");
                }
            }
        }
    }

    #[test]
    fn budget_returns_unknown() {
        // A hard instance (pigeonhole 8 into 7) with a tiny budget.
        let mut s = Solver::new();
        let holes = 7i32;
        let p = |i: i32, j: i32| holes * i + j + 1;
        for i in 0..8 {
            let clause: Vec<i32> = (0..holes).map(|j| p(i, j)).collect();
            s.add_dimacs_clause(&clause);
        }
        for j in 0..holes {
            for i1 in 0..8 {
                for i2 in (i1 + 1)..8 {
                    s.add_dimacs_clause(&[-p(i1, j), -p(i2, j)]);
                }
            }
        }
        s.set_budget(Budget::conflicts(10));
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        // Raising the budget finishes the proof.
        s.set_budget(Budget::unlimited());
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(&lits(&[1, 1, 2])));
        assert!(s.add_clause(&lits(&[1, -1])), "tautology accepted and ignored");
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let _ = (a, b);
    }

    #[test]
    fn at_most_one_constraints() {
        // Exactly-one over 5 vars has exactly 5 models; enumerate by
        // blocking clauses.
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..5).map(|_| s.new_var()).collect();
        let all: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        s.add_clause(&all);
        for i in 0..5 {
            for j in (i + 1)..5 {
                s.add_clause(&[vars[i].negative(), vars[j].negative()]);
            }
        }
        let mut models = 0;
        while s.solve(&[]) == SolveResult::Sat {
            models += 1;
            assert!(models <= 5, "too many models");
            let block: Vec<Lit> = vars
                .iter()
                .map(|&v| if s.value(v) == Some(true) { v.negative() } else { v.positive() })
                .collect();
            s.add_clause(&block);
        }
        assert_eq!(models, 5);
    }

    // ---- VSIDS hazard regressions (satellite: activity/heap audit) -----

    #[test]
    fn activity_rescale_at_1e100_keeps_everything_finite() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
        // Drive the increment and one activity to the rescale threshold.
        s.var_inc = 9e99;
        s.activity[vars[3].index()] = 9e99;
        s.bump_var(vars[3]); // crosses 1e100 -> rescale fires
        for (i, &a) in s.activity.iter().enumerate() {
            assert!(a.is_finite(), "activity[{i}] = {a} not finite");
            assert!(!a.is_nan());
        }
        assert!(s.var_inc.is_finite() && s.var_inc > 0.0);
        // The bumped variable still outranks the untouched ones.
        assert_eq!(s.heap[0], vars[3]);
    }

    #[test]
    fn decay_rescales_before_var_inc_overflows() {
        let mut s = Solver::new();
        let _ = s.new_var();
        s.var_inc = 1e100;
        for _ in 0..64 {
            s.decay_activities();
        }
        assert!(s.var_inc.is_finite(), "var_inc overflowed to {}", s.var_inc);
    }

    #[test]
    fn heap_comparator_is_a_total_order_with_index_tie_break() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        // Equal activities: lower index wins, deterministically.
        assert!(s.heap_less(a, b));
        assert!(!s.heap_less(b, a));
        assert!(s.heap_less(a, c) && s.heap_less(b, c));
        // A genuinely larger activity dominates regardless of index.
        s.activity[c.index()] = 1.0;
        assert!(s.heap_less(c, a));
    }

    #[test]
    fn conflict_involving_unit_reasons_analyzes_correctly() {
        // Level-0 facts (units) appear inside reason clauses during
        // analysis; their CREF_NONE reasons must never be dereferenced.
        let mut s = Solver::new();
        s.reserve_vars(5);
        s.add_dimacs_clause(&[1]); // unit fact u
        s.add_dimacs_clause(&[-1, -2, 3]); // with u: 2 -> 3
        s.add_dimacs_clause(&[-1, -3, 4]); // with u: 3 -> 4
        s.add_dimacs_clause(&[-1, -3, -4, 5]); // with u: 3,4 -> 5
        s.add_dimacs_clause(&[-4, -5]); // conflict once 4,5 hold
        // Under the assumption x2, propagation reaches the conflict whose
        // reason clauses all contain the level-0 literal -1.
        assert_eq!(s.solve(&[Lit::from_dimacs(2)]), SolveResult::Unsat);
        // Without the assumption the instance is satisfiable and the model
        // honors the unit.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(Var(0)), Some(true));
    }

    // ---- model self-check regressions ----------------------------------

    #[test]
    fn verified_models_counter_advances() {
        let mut s = Solver::new();
        s.add_dimacs_clause(&[1, 2]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let before = s.stats().verified_models;
        assert!(s.verify_model());
        assert_eq!(s.stats().verified_models, before + 1);
    }

    #[test]
    fn corrupted_arena_is_caught_by_the_self_check() {
        let mut s = Solver::new();
        s.reserve_vars(3);
        s.add_dimacs_clause(&[1, 2]);
        s.add_dimacs_clause(&[2, 3]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.verify_model(), "uncorrupted arena passes");
        // Corrupt the first live clause so the stored model falsifies it:
        // overwrite both literals with the negation of a model-true var.
        let cref = s.db.refs().next().expect("a live clause");
        let v = (0..3)
            .map(Var)
            .find(|&v| s.value(v).is_some())
            .expect("model assigns a variable");
        let falsified = Lit::new(v, !s.value(v).expect("assigned"));
        s.db.set_lit(cref, 0, falsified);
        s.db.set_lit(cref, 1, falsified);
        assert!(!s.verify_model(), "corrupted arena must be caught");
    }

    // ---- arena-management behaviour ------------------------------------

    #[test]
    fn reduction_fires_and_keeps_verdicts_on_a_hard_instance() {
        // php(7->6) generates far more than `reduce_limit` learnts when the
        // limit is tightened, forcing reduce + GC through their paces.
        let mut s = Solver::new();
        s.reduce_limit = 64;
        let holes = 6i32;
        let p = |i: i32, j: i32| holes * i + j + 1;
        for i in 0..=holes {
            let clause: Vec<i32> = (0..holes).map(|j| p(i, j)).collect();
            s.add_dimacs_clause(&clause);
        }
        for j in 0..holes {
            for i1 in 0..=holes {
                for i2 in (i1 + 1)..=holes {
                    s.add_dimacs_clause(&[-p(i1, j), -p(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.reduces > 0, "reduction never fired: {st:?}");
        assert!(st.removed_learnts > 0);
    }

    /// php(p → p-1) pigeonhole clauses, UNSAT for every p.
    fn php(s: &mut Solver, pigeons: i32) {
        let holes = pigeons - 1;
        let p = |i: i32, j: i32| holes * i + j + 1;
        for i in 0..=holes {
            let clause: Vec<i32> = (0..holes).map(|j| p(i, j)).collect();
            s.add_dimacs_clause(&clause);
        }
        for j in 0..holes {
            for i1 in 0..=holes {
                for i2 in (i1 + 1)..=holes {
                    s.add_dimacs_clause(&[-p(i1, j), -p(i2, j)]);
                }
            }
        }
    }

    #[test]
    fn inert_diversification_changes_nothing() {
        let run = |divert: bool| {
            let mut s = Solver::new();
            php(&mut s, 5);
            if divert {
                s.set_diversification(Diversification::default());
            }
            let r = s.solve(&[]);
            (r, s.stats())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn diversified_solvers_agree_on_verdicts_and_are_deterministic() {
        for seed in [1u64, 7, 0xDEAD] {
            let run = || {
                let mut s = Solver::new();
                php(&mut s, 6);
                s.set_diversification(Diversification {
                    seed,
                    random_decision_permille: 50,
                });
                let r = s.solve(&[]);
                (r, s.stats())
            };
            let (r1, st1) = run();
            let (r2, st2) = run();
            assert_eq!(r1, SolveResult::Unsat, "php is UNSAT under any seed");
            assert_eq!((r1, st1), (r2, st2), "seed {seed} must reproduce");
        }
    }

    #[test]
    fn diversified_sat_models_stay_valid() {
        let mut s = Solver::new();
        for c in [[1, 2, 3], [-1, -2, 3], [1, -3, 2], [-2, 3, 1]] {
            s.add_dimacs_clause(&c);
        }
        s.set_diversification(Diversification { seed: 99, random_decision_permille: 300 });
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.verify_model());
    }

    #[test]
    fn small_instance_gate_skips_inprocessing_without_changing_verdicts() {
        // php(5→4) is 20 vars — under the default gate.
        let gated = {
            let mut s = Solver::new();
            php(&mut s, 5);
            let r = s.solve(&[]);
            (r, s.stats())
        };
        let ungated = {
            let mut s = Solver::new();
            s.set_inprocessing_threshold(0);
            php(&mut s, 5);
            let r = s.solve(&[]);
            (r, s.stats())
        };
        assert_eq!(gated.0, SolveResult::Unsat);
        assert_eq!(ungated.0, SolveResult::Unsat);
        assert_eq!(gated.1.simplifies, 0, "gated run must not simplify");
        assert_eq!(gated.1.reduces, 0, "gated run must not reduce");
    }

    #[test]
    fn determinism_same_input_same_stats_and_model() {
        let build = || {
            let mut s = Solver::new();
            let mut seed = 0x5EEDu64;
            let mut rnd = move || {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed
            };
            s.reserve_vars(16);
            for _ in 0..70 {
                let c: Vec<i32> = (0..3)
                    .map(|_| {
                        let v = (rnd() % 16) as i32 + 1;
                        if rnd() % 2 == 0 {
                            v
                        } else {
                            -v
                        }
                    })
                    .collect();
                s.add_dimacs_clause(&c);
            }
            let r = s.solve(&[]);
            let model: Vec<Option<bool>> = (0..16).map(|v| s.value(Var(v))).collect();
            (r, s.stats(), model)
        };
        assert_eq!(build(), build());
    }
}
