//! Flat clause arena.
//!
//! Every clause lives inline in one `Vec<u32>`: two header words (size +
//! flags, LBD) followed by the literal codes. Clauses are addressed by
//! [`CRef`] — the word offset of the header — so the watch lists, reason
//! array and conflict analysis all operate on plain `u32` indices instead
//! of chasing per-clause heap allocations. Deletion is a tombstone flag;
//! [`ClauseDB::collect`] compacts the arena and hands back a forwarding
//! table (written into the dead arena, MiniSat-style) so the solver can
//! remap its reason references without auxiliary hash maps.

use crate::types::Lit;

/// Reference to a clause: the word offset of its header in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct CRef(pub(crate) u32);

/// Sentinel for "no clause" (decision / unit-fact reasons).
pub(crate) const CREF_NONE: CRef = CRef(u32::MAX);

const FLAG_LEARNT: u32 = 1;
const FLAG_DELETED: u32 = 2;
const FLAG_MARK: u32 = 4;
const SIZE_SHIFT: u32 = 3;
const HEADER_WORDS: usize = 2;

/// The arena. `wasted` tracks words held by tombstoned clauses so the
/// solver can trigger garbage collection at a fixed occupancy threshold.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClauseDB {
    arena: Vec<u32>,
    wasted: usize,
}

impl ClauseDB {
    /// Appends a clause and returns its reference. `lits` must hold at
    /// least two literals — units go straight to the trail, empties flip
    /// the solver's `ok` flag.
    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool) -> CRef {
        debug_assert!(lits.len() >= 2, "arena clauses have >= 2 literals");
        let cref = CRef(self.arena.len() as u32);
        let flags = if learnt { FLAG_LEARNT } else { 0 };
        self.arena.push((lits.len() as u32) << SIZE_SHIFT | flags);
        self.arena.push(lits.len() as u32); // LBD; callers refine for learnts
        self.arena.extend(lits.iter().map(|l| l.code()));
        cref
    }

    /// Number of literals in the clause.
    pub(crate) fn size(&self, c: CRef) -> usize {
        (self.arena[c.0 as usize] >> SIZE_SHIFT) as usize
    }

    /// The `i`-th literal.
    pub(crate) fn lit(&self, c: CRef, i: usize) -> Lit {
        debug_assert!(i < self.size(c));
        Lit::from_code(self.arena[c.0 as usize + HEADER_WORDS + i])
    }

    /// Swaps two literal positions (watch normalization).
    pub(crate) fn swap_lits(&mut self, c: CRef, a: usize, b: usize) {
        let base = c.0 as usize + HEADER_WORDS;
        self.arena.swap(base + a, base + b);
    }

    /// Overwrites the `i`-th literal (test-only arena corruption hook for
    /// the model self-check regression).
    #[cfg(test)]
    pub(crate) fn set_lit(&mut self, c: CRef, i: usize, l: Lit) {
        debug_assert!(i < self.size(c));
        self.arena[c.0 as usize + HEADER_WORDS + i] = l.code();
    }

    /// The clause's literals as a fresh vector.
    #[cfg(test)]
    pub(crate) fn lits(&self, c: CRef) -> Vec<Lit> {
        let base = c.0 as usize + HEADER_WORDS;
        self.arena[base..base + self.size(c)].iter().map(|&w| Lit::from_code(w)).collect()
    }

    /// Stored literal-block distance (glue). Original clauses carry their
    /// size here; only learnt clauses get a computed LBD.
    pub(crate) fn lbd(&self, c: CRef) -> u32 {
        self.arena[c.0 as usize + 1]
    }

    /// Updates the stored LBD.
    pub(crate) fn set_lbd(&mut self, c: CRef, lbd: u32) {
        self.arena[c.0 as usize + 1] = lbd;
    }

    /// Whether the clause was learnt (vs. an original problem clause).
    pub(crate) fn is_learnt(&self, c: CRef) -> bool {
        self.arena[c.0 as usize] & FLAG_LEARNT != 0
    }

    /// Whether the clause has been tombstoned.
    pub(crate) fn is_deleted(&self, c: CRef) -> bool {
        self.arena[c.0 as usize] & FLAG_DELETED != 0
    }

    /// Scratch mark used by the reduce pass to pin reason clauses.
    pub(crate) fn set_mark(&mut self, c: CRef, on: bool) {
        if on {
            self.arena[c.0 as usize] |= FLAG_MARK;
        } else {
            self.arena[c.0 as usize] &= !FLAG_MARK;
        }
    }

    /// Reads the scratch mark.
    pub(crate) fn is_marked(&self, c: CRef) -> bool {
        self.arena[c.0 as usize] & FLAG_MARK != 0
    }

    /// Tombstones the clause; its words are reclaimed at the next
    /// [`ClauseDB::collect`].
    pub(crate) fn free(&mut self, c: CRef) {
        debug_assert!(!self.is_deleted(c));
        self.wasted += HEADER_WORDS + self.size(c);
        self.arena[c.0 as usize] |= FLAG_DELETED;
    }

    /// Total arena words.
    pub(crate) fn len(&self) -> usize {
        self.arena.len()
    }

    /// Words held by tombstoned clauses.
    pub(crate) fn wasted(&self) -> usize {
        self.wasted
    }

    /// Live clause references, in arena (insertion) order — the iteration
    /// order every rebuild/reduce/simplify pass uses, which keeps the
    /// solver's behaviour a pure function of the input formula.
    pub(crate) fn refs(&self) -> Refs<'_> {
        Refs { db: self, at: 0 }
    }

    /// Compacts the arena: copies live clauses (preserving order and
    /// literal positions) and returns a forwarding table for remapping
    /// outstanding [`CRef`]s. Watch lists must be rebuilt afterwards.
    pub(crate) fn collect(&mut self) -> ClauseGc {
        let mut old = std::mem::take(&mut self.arena);
        let mut new_arena = Vec::with_capacity(old.len().saturating_sub(self.wasted));
        let mut at = 0usize;
        while at < old.len() {
            let header = old[at];
            let size = (header >> SIZE_SHIFT) as usize;
            let total = HEADER_WORDS + size;
            if header & FLAG_DELETED == 0 {
                let fwd = new_arena.len() as u32;
                new_arena.extend_from_slice(&old[at..at + total]);
                // Forwarding pointer in the dead header's LBD slot.
                old[at + 1] = fwd;
            } else {
                old[at + 1] = u32::MAX;
            }
            at += total;
        }
        self.arena = new_arena;
        self.wasted = 0;
        ClauseGc { old }
    }
}

/// Iterator over live clause references.
pub(crate) struct Refs<'a> {
    db: &'a ClauseDB,
    at: usize,
}

impl Iterator for Refs<'_> {
    type Item = CRef;

    fn next(&mut self) -> Option<CRef> {
        while self.at < self.db.arena.len() {
            let cref = CRef(self.at as u32);
            let header = self.db.arena[self.at];
            self.at += HEADER_WORDS + (header >> SIZE_SHIFT) as usize;
            if header & FLAG_DELETED == 0 {
                return Some(cref);
            }
        }
        None
    }
}

/// Forwarding table produced by [`ClauseDB::collect`].
pub(crate) struct ClauseGc {
    old: Vec<u32>,
}

impl ClauseGc {
    /// New location of a clause that was live at collection time.
    pub(crate) fn forward(&self, c: CRef) -> CRef {
        let fwd = self.old[c.0 as usize + 1];
        debug_assert!(fwd != u32::MAX, "forwarding a clause that was dead at GC");
        CRef(fwd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lits(ds: &[i32]) -> Vec<Lit> {
        ds.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut db = ClauseDB::default();
        let a = db.alloc(&lits(&[1, -2, 3]), false);
        let b = db.alloc(&lits(&[4, 5]), true);
        assert_eq!(db.size(a), 3);
        assert_eq!(db.lit(a, 1), Lit::from_dimacs(-2));
        assert!(!db.is_learnt(a));
        assert!(db.is_learnt(b));
        assert_eq!(db.lbd(b), 2);
        db.set_lbd(b, 1);
        assert_eq!(db.lbd(b), 1);
        assert_eq!(db.refs().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn free_skips_and_collect_compacts_with_forwarding() {
        let mut db = ClauseDB::default();
        let a = db.alloc(&lits(&[1, 2]), false);
        let b = db.alloc(&lits(&[3, 4, 5]), true);
        let c = db.alloc(&lits(&[6, 7]), false);
        db.free(b);
        assert_eq!(db.refs().collect::<Vec<_>>(), vec![a, c]);
        assert_eq!(db.wasted(), 5);
        let gc = db.collect();
        let (na, nc) = (gc.forward(a), gc.forward(c));
        assert_eq!(db.wasted(), 0);
        assert_eq!(db.refs().collect::<Vec<_>>(), vec![na, nc]);
        assert_eq!(db.lits(na), lits(&[1, 2]));
        assert_eq!(db.lits(nc), lits(&[6, 7]));
        assert_eq!(db.lit(nc, 0).var(), Var(5));
    }

    #[test]
    fn swap_preserves_contents() {
        let mut db = ClauseDB::default();
        let a = db.alloc(&lits(&[1, 2, 3]), false);
        db.swap_lits(a, 0, 2);
        assert_eq!(db.lits(a), lits(&[3, 2, 1]));
    }
}
