//! Learnt-clause management: the glue (LBD) restart window, periodic
//! reduction of the learnt set, and arena garbage collection.
//!
//! Policy (glucose-shaped, integer-only for determinism):
//! - every learnt clause records its LBD at learn time;
//! - a 50-conflict window of recent glues drives an EMA restart signal
//!   (restart early when recent glues run 25% worse than the lifetime
//!   average — the search has wandered into a bad part of the tree);
//! - when the live learnt count reaches `reduce_limit`, the worst half of
//!   the unprotected learnts (highest glue, then longest, then youngest)
//!   is tombstoned; glue ≤ 2, binary, and reason ("locked") clauses are
//!   protected; `reduce_limit` then grows geometrically (×1.5);
//! - when tombstones hold ≥ 25% of the arena, [`ClauseDB::collect`]
//!   compacts it and the reason array is remapped through the forwarding
//!   table. Watch lists are rebuilt from scratch after every pass — cheap,
//!   and it keeps positions 0/1 (the watched/implied literals) intact
//!   because the copying GC preserves literal order.

use crate::clause_db::{CRef, CREF_NONE};
use crate::solver::{Solver, Watcher};

/// Fixed-size ring of the most recent learnt-clause glues; the "fast"
/// half of the glucose restart EMA.
#[derive(Debug, Clone)]
pub(crate) struct LbdQueue {
    buf: [u32; LbdQueue::CAP],
    len: usize,
    pos: usize,
    sum: u64,
}

impl Default for LbdQueue {
    fn default() -> Self {
        LbdQueue { buf: [0; LbdQueue::CAP], len: 0, pos: 0, sum: 0 }
    }
}

impl LbdQueue {
    const CAP: usize = 50;

    pub(crate) fn push(&mut self, lbd: u32) {
        if self.len < LbdQueue::CAP {
            self.len += 1;
        } else {
            self.sum -= u64::from(self.buf[self.pos]);
        }
        self.buf[self.pos] = lbd;
        self.sum += u64::from(lbd);
        self.pos = (self.pos + 1) % LbdQueue::CAP;
    }

    pub(crate) fn full(&self) -> bool {
        self.len == LbdQueue::CAP
    }

    pub(crate) fn sum(&self) -> u64 {
        self.sum
    }

    pub(crate) fn clear(&mut self) {
        *self = LbdQueue::default();
    }
}

impl Solver {
    /// Glucose-style restart trigger: the recent-glue average exceeds the
    /// lifetime average by 25%. In integers:
    /// `(sum_recent / 50) * 0.8 > lbd_sum / conflicts`
    /// ⇔ `4 * sum_recent * conflicts > 250 * lbd_sum`.
    pub(crate) fn glue_restart_signal(&self) -> bool {
        self.lbd_queue.full()
            && self.stats.conflicts > 0
            && 4 * u128::from(self.lbd_queue.sum()) * u128::from(self.stats.conflicts)
                > 250 * u128::from(self.lbd_sum)
    }

    /// Drops the worst half of the unprotected learnt clauses, then grows
    /// the reduction threshold geometrically and compacts if warranted.
    pub(crate) fn reduce_db(&mut self) {
        self.stats.reduces += 1;
        // Pin reason clauses: deleting a clause some trail literal was
        // propagated by would orphan conflict analysis.
        for &r in &self.reason {
            if r != CREF_NONE {
                self.db.set_mark(r, true);
            }
        }
        let db = &self.db;
        let mut candidates: Vec<CRef> = db
            .refs()
            .filter(|&c| db.is_learnt(c) && db.lbd(c) > 2 && db.size(c) > 2 && !db.is_marked(c))
            .collect();
        // Worst first: highest glue, then longest, then youngest (higher
        // CRef) — a total, input-deterministic order.
        candidates.sort_by(|&a, &b| {
            db.lbd(b)
                .cmp(&db.lbd(a))
                .then(db.size(b).cmp(&db.size(a)))
                .then(b.cmp(&a))
        });
        let drop_n = candidates.len() / 2;
        for &c in &candidates[..drop_n] {
            self.db.free(c);
            self.stats.learnts -= 1;
            self.stats.removed_learnts += 1;
        }
        for &r in &self.reason {
            if r != CREF_NONE {
                self.db.set_mark(r, false);
            }
        }
        self.reduce_limit += self.reduce_limit / 2;
        self.maybe_gc();
    }

    /// Compacts the arena when tombstones hold a quarter of it (remapping
    /// reasons through the forwarding table), then rebuilds all watch
    /// lists from the arena. Callers must be at a point where watch lists
    /// are allowed to be reconstructed (after reduce/simplify).
    pub(crate) fn maybe_gc(&mut self) {
        if self.db.wasted() * 4 >= self.db.len().max(1) {
            let gc = self.db.collect();
            for r in &mut self.reason {
                if *r != CREF_NONE {
                    *r = gc.forward(*r);
                }
            }
            self.stats.gc_runs += 1;
        }
        self.rebuild_watches();
    }

    /// Rebuilds every watch list from the live arena. Positions 0/1 are
    /// the watched literals by invariant (propagation normalizes them, and
    /// both reduce and GC preserve literal order), so this cannot break
    /// the "implied literal at slot 0" contract reason clauses rely on.
    pub(crate) fn rebuild_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        let mut rewatch: Vec<(usize, Watcher)> = Vec::new();
        for cref in self.db.refs() {
            let l0 = self.db.lit(cref, 0);
            let l1 = self.db.lit(cref, 1);
            rewatch.push((l0.index(), Watcher { cref, blocker: l1 }));
            rewatch.push((l1.index(), Watcher { cref, blocker: l0 }));
        }
        for (idx, w) in rewatch {
            self.watches[idx].push(w);
        }
    }
}
