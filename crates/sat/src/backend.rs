//! Solver-backend abstraction.
//!
//! The attacks are written against this trait instead of a concrete
//! solver so the same attack loop can run on the modern arena core, the
//! frozen [`crate::baseline`] reference, or any future backend — which is
//! what lets the bench harness demand *identical recovered keys* from two
//! implementations, not just similar timings.

use crate::solver::{Budget, Diversification, Stats};
use crate::types::{Lit, SolveResult, Var};

/// The incremental CNF-solver interface the rest of the workspace
/// consumes: DIMACS-style clause loading, assumption-based solving under a
/// [`Budget`], and model readback.
pub trait SatBackend {
    /// Creates an empty solver.
    fn new() -> Self;
    /// Ensures at least `n` variables exist.
    fn reserve_vars(&mut self, n: usize);
    /// Number of variables.
    fn num_vars(&self) -> usize;
    /// Adds a clause in DIMACS literals, allocating variables on demand;
    /// `false` means the formula is now trivially UNSAT.
    fn add_dimacs_clause(&mut self, lits: &[i32]) -> bool;
    /// Adds a clause of [`Lit`]s; `false` means trivially UNSAT.
    fn add_clause(&mut self, lits: &[Lit]) -> bool;
    /// Sets the resource budget for subsequent solves.
    fn set_budget(&mut self, budget: Budget);
    /// Applies decision diversification (seeded phases + random decision
    /// fraction) for parallel DIP mining. Backends without the machinery
    /// may ignore it — every miner then searches identically, which is
    /// slower but still correct and deterministic.
    fn set_diversification(&mut self, _div: Diversification) {}
    /// Cumulative statistics.
    fn stats(&self) -> Stats;
    /// Solves under assumptions.
    fn solve(&mut self, assumptions: &[Lit]) -> SolveResult;
    /// Model value of `var` after a SAT answer.
    fn value(&self, var: Var) -> Option<bool>;
}

impl SatBackend for crate::Solver {
    fn new() -> Self {
        crate::Solver::new()
    }
    fn reserve_vars(&mut self, n: usize) {
        crate::Solver::reserve_vars(self, n);
    }
    fn num_vars(&self) -> usize {
        crate::Solver::num_vars(self)
    }
    fn add_dimacs_clause(&mut self, lits: &[i32]) -> bool {
        crate::Solver::add_dimacs_clause(self, lits)
    }
    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        crate::Solver::add_clause(self, lits)
    }
    fn set_budget(&mut self, budget: Budget) {
        crate::Solver::set_budget(self, budget);
    }
    fn set_diversification(&mut self, div: Diversification) {
        crate::Solver::set_diversification(self, div);
    }
    fn stats(&self) -> Stats {
        crate::Solver::stats(self)
    }
    fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        crate::Solver::solve(self, assumptions)
    }
    fn value(&self, var: Var) -> Option<bool> {
        crate::Solver::value(self, var)
    }
}

impl SatBackend for crate::baseline::Solver {
    fn new() -> Self {
        crate::baseline::Solver::new()
    }
    fn reserve_vars(&mut self, n: usize) {
        crate::baseline::Solver::reserve_vars(self, n);
    }
    fn num_vars(&self) -> usize {
        crate::baseline::Solver::num_vars(self)
    }
    fn add_dimacs_clause(&mut self, lits: &[i32]) -> bool {
        crate::baseline::Solver::add_dimacs_clause(self, lits)
    }
    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        crate::baseline::Solver::add_clause(self, lits)
    }
    fn set_budget(&mut self, budget: Budget) {
        crate::baseline::Solver::set_budget(self, budget);
    }
    fn stats(&self) -> Stats {
        crate::baseline::Solver::stats(self)
    }
    fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        crate::baseline::Solver::solve(self, assumptions)
    }
    fn value(&self, var: Var) -> Option<bool> {
        crate::baseline::Solver::value(self, var)
    }
}
