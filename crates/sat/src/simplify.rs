//! Inter-restart inprocessing.
//!
//! At every restart the solver is back at decision level 0 with (possibly)
//! new top-level facts on the trail. [`Solver::simplify_db`] folds those
//! facts into the arena: clauses satisfied at level 0 are tombstoned, and
//! false literals are stripped by reallocating the clause (never by
//! shrinking in place — the arena is walked by header-declared stride, so
//! an in-place shrink would leave orphan words that misparse as headers).
//! Stripping can produce fresh units; they are enqueued and propagated to
//! fixpoint, which may discover top-level unsatisfiability.

use crate::clause_db::{CRef, CREF_NONE};
use crate::solver::Solver;
use crate::types::Lit;

impl Solver {
    /// Level-0 simplification pass. No-op unless the top-level trail has
    /// grown since the last pass. Sets `ok = false` on a derived
    /// top-level conflict.
    pub(crate) fn simplify_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return;
        }
        // A restart can fire right after the asserting literal of a
        // level-0 backjump was enqueued but not yet propagated; reach the
        // fixpoint before reading clause values.
        if self.qhead < self.trail.len() && self.propagate().is_some() {
            self.ok = false;
            return;
        }
        if self.trail.len() == self.simplified_at {
            return;
        }
        self.stats.simplifies += 1;
        // Top-level facts no longer need reasons; clearing them first
        // means no reason can dangle when satisfied clauses are freed.
        for &l in &self.trail {
            self.reason[l.var().index()] = CREF_NONE;
        }
        let crefs: Vec<CRef> = self.db.refs().collect();
        let mut pending_units: Vec<Lit> = Vec::new();
        for cref in crefs {
            let size = self.db.size(cref);
            let mut kept: Vec<Lit> = Vec::with_capacity(size);
            let mut satisfied = false;
            for i in 0..size {
                let l = self.db.lit(cref, i);
                match self.lit_value(l) {
                    Some(true) => {
                        satisfied = true;
                        break;
                    }
                    Some(false) => {} // strip
                    None => kept.push(l),
                }
            }
            if satisfied {
                if self.db.is_learnt(cref) {
                    self.stats.learnts -= 1;
                }
                self.db.free(cref);
                continue;
            }
            if kept.len() == size {
                continue;
            }
            let learnt = self.db.is_learnt(cref);
            match kept.len() {
                // All literals false would have been a propagation
                // conflict before this pass; defensive only.
                0 => {
                    self.ok = false;
                    return;
                }
                1 => {
                    pending_units.push(kept[0]);
                    if learnt {
                        self.stats.learnts -= 1;
                    }
                    self.db.free(cref);
                }
                _ => {
                    let lbd = self.db.lbd(cref).min(kept.len() as u32);
                    let ncref = self.db.alloc(&kept, learnt);
                    self.db.set_lbd(ncref, lbd);
                    self.db.free(cref);
                }
            }
        }
        // Compact if warranted and rebuild the watch lists, then fold the
        // fresh units in and propagate to fixpoint.
        self.maybe_gc();
        for l in pending_units {
            match self.lit_value(l) {
                Some(true) => {}
                Some(false) => {
                    self.ok = false;
                    return;
                }
                None => self.enqueue(l, CREF_NONE),
            }
        }
        if self.propagate().is_some() {
            self.ok = false;
            return;
        }
        self.simplified_at = self.trail.len();
    }
}
