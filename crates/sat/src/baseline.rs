//! The pre-arena reference solver, frozen for differential testing.
//!
//! This is the solver as it stood before the flat-arena rewrite: clauses
//! as owned `Vec<Lit>`s, clause-activity-based reduction, plain Luby
//! restarts, no LBD tracking, no minimization, no inprocessing. It is
//! kept verbatim (modulo sharing [`Budget`]/[`Stats`]) as the oracle the
//! differential harness and the `bench sat` bin compare the modern core
//! against — same verdicts, same recovered keys, different wall clock.
//!
//! Do not "improve" this module; its value is that it does not change.

use crate::solver::{Budget, Stats};
use crate::types::{Lit, SolveResult, Var};

const UNDEF_CLAUSE: i32 = -1;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
}

/// The reference CDCL solver (pre-arena): two-watched-literal propagation,
/// VSIDS decisions with phase saving, first-UIP learning, Luby restarts,
/// activity-based learnt reduction, incremental solving under assumptions.
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<u32>>,
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<i32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    phase: Vec<bool>,
    heap: Vec<Var>,
    heap_pos: Vec<usize>,
    ok: bool,
    stats: Stats,
    budget: Budget,
    seen: Vec<bool>,
    model: Vec<i8>,
}

const HEAP_NONE: usize = usize::MAX;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            phase: Vec::new(),
            heap: Vec::new(),
            heap_pos: Vec::new(),
            ok: true,
            stats: Stats::default(),
            budget: Budget::unlimited(),
            seen: Vec::new(),
            model: Vec::new(),
        }
    }

    /// Sets the resource budget for subsequent [`Solver::solve`] calls.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Cumulative search statistics.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(0);
        self.level.push(0);
        self.reason.push(UNDEF_CLAUSE);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.seen.push(false);
        self.heap_pos.push(HEAP_NONE);
        self.heap_insert(v);
        v
    }

    /// Ensures at least `n` variables exist (for DIMACS-style loading).
    pub fn reserve_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Adds a clause given in DIMACS literals, allocating variables on
    /// demand. Returns `false` if the formula is now trivially UNSAT.
    pub fn add_dimacs_clause(&mut self, lits: &[i32]) -> bool {
        let max_var = lits.iter().map(|l| l.unsigned_abs() as usize).max().unwrap_or(0);
        self.reserve_vars(max_var);
        let converted: Vec<Lit> = lits.iter().map(|&l| Lit::from_dimacs(l)).collect();
        self.add_clause(&converted)
    }

    /// Adds a clause. Must be called at decision level 0. Returns `false`
    /// if the formula is now trivially UNSAT.
    ///
    /// # Panics
    ///
    /// Panics if called mid-search or with unallocated variables.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(self.trail_lim.is_empty(), "add_clause must be called at level 0");
        if !self.ok {
            return false;
        }
        for l in lits {
            assert!(l.var().index() < self.num_vars(), "unallocated variable {}", l.var());
        }
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort();
        ls.dedup();
        let mut out = Vec::with_capacity(ls.len());
        for &l in &ls {
            if ls.contains(&!l) {
                return true; // tautology
            }
            match self.lit_value(l) {
                Some(true) => return true, // already satisfied at level 0
                Some(false) => {}          // drop falsified literal
                None => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(out[0], UNDEF_CLAUSE);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(out, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[lits[0].index()].push(idx);
        self.watches[lits[1].index()].push(idx);
        self.clauses.push(Clause { lits, learnt, activity: 0.0 });
        if learnt {
            self.stats.learnts += 1;
        }
        idx
    }

    /// The model value of a variable after a [`SolveResult::Sat`] answer;
    /// `None` if the variable did not occur in the search.
    pub fn value(&self, var: Var) -> Option<bool> {
        let v = self.model.get(var.index()).copied().unwrap_or(0);
        match v {
            1 => Some(true),
            -1 => Some(false),
            _ => None,
        }
    }

    fn assigned_value(&self, var: Var) -> Option<bool> {
        match self.assign[var.index()] {
            1 => Some(true),
            -1 => Some(false),
            _ => None,
        }
    }

    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.assigned_value(lit.var()).map(|v| lit.apply(v))
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: i32) {
        debug_assert_eq!(self.lit_value(lit), None);
        let v = lit.var();
        self.assign[v.index()] = if lit.is_positive() { 1 } else { -1 };
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.phase[v.index()] = lit.is_positive();
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                let (keep, conflict) = self.visit_watch(ci, false_lit);
                if !keep {
                    watch_list.swap_remove(i);
                } else {
                    i += 1;
                }
                if conflict {
                    let existing = std::mem::take(&mut self.watches[false_lit.index()]);
                    watch_list.extend(existing);
                    self.watches[false_lit.index()] = watch_list;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
            }
            let existing = std::mem::take(&mut self.watches[false_lit.index()]);
            watch_list.extend(existing);
            self.watches[false_lit.index()] = watch_list;
        }
        None
    }

    fn visit_watch(&mut self, ci: u32, false_lit: Lit) -> (bool, bool) {
        let clause = &mut self.clauses[ci as usize];
        if clause.lits[0] == false_lit {
            clause.lits.swap(0, 1);
        }
        debug_assert_eq!(clause.lits[1], false_lit);
        let first = clause.lits[0];
        if self.assign[first.var().index()] != 0 && first.apply(self.assign[first.var().index()] == 1) {
            return (true, false); // satisfied by the other watch
        }
        for k in 2..clause.lits.len() {
            let l = clause.lits[k];
            let val = self.assign[l.var().index()];
            let is_false = val != 0 && !l.apply(val == 1);
            if !is_false {
                clause.lits.swap(1, k);
                let new_watch = clause.lits[1];
                self.watches[new_watch.index()].push(ci);
                return (false, false);
            }
        }
        let val = self.assign[first.var().index()];
        if val == 0 {
            self.enqueue(first, ci as i32);
            (true, false)
        } else {
            (true, true) // conflict (first is false too)
        }
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn backtrack_to(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for i in (bound..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assign[v.index()] = 0;
            self.reason[v.index()] = UNDEF_CLAUSE;
            if self.heap_pos[v.index()] == HEAP_NONE {
                self.heap_insert(v);
            }
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn heap_less(&self, a: Var, b: Var) -> bool {
        self.activity[a.index()] > self.activity[b.index()]
    }

    fn heap_insert(&mut self, v: Var) {
        debug_assert_eq!(self.heap_pos[v.index()], HEAP_NONE);
        self.heap_pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_pos[self.heap[a].index()] = a;
        self.heap_pos[self.heap[b].index()] = b;
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_pos[top.index()] = HEAP_NONE;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last.index()] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        let pos = self.heap_pos[v.index()];
        if pos != HEAP_NONE {
            self.heap_sift_up(pos);
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    fn bump_clause(&mut self, ci: u32) {
        let c = &mut self.clauses[ci as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            let inc = self.cla_inc;
            for c in &mut self.clauses {
                c.activity /= inc.max(1.0);
            }
            self.cla_inc = 1.0;
        }
    }

    fn analyze(&mut self, mut conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::new(Var(0), true)]; // placeholder for asserting lit
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut trail_idx = self.trail.len();

        loop {
            self.bump_clause(conflict);
            let clause = self.clauses[conflict as usize].lits.clone();
            let start = usize::from(p.is_some());
            for &q in &clause[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found literal").var();
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("UIP literal");
                break;
            }
            let r = self.reason[pv.index()];
            debug_assert!(r != UNDEF_CLAUSE, "non-decision must have a reason");
            conflict = r as u32;
        }

        let mut backjump = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            backjump = self.level[learnt[1].var().index()];
        }
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, backjump)
    }

    fn reduce_db(&mut self) {
        // Drop the least active half of learnt clauses that are not reasons.
        let mut learnt_idx: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| self.clauses[i as usize].learnt)
            .collect();
        if learnt_idx.len() < 100 {
            return;
        }
        let mut locked = vec![false; self.clauses.len()];
        for &r in &self.reason {
            if r != UNDEF_CLAUSE {
                locked[r as usize] = true;
            }
        }
        learnt_idx
            .sort_by(|&a, &b| self.clauses[a as usize].activity.total_cmp(&self.clauses[b as usize].activity));
        let drop_set: Vec<u32> = learnt_idx
            .iter()
            .copied()
            .take(learnt_idx.len() / 2)
            .filter(|&i| !locked[i as usize] && self.clauses[i as usize].lits.len() > 2)
            .collect();
        if drop_set.is_empty() {
            return;
        }
        let mut remap: Vec<i32> = vec![UNDEF_CLAUSE; self.clauses.len()];
        let mut new_clauses = Vec::with_capacity(self.clauses.len() - drop_set.len());
        for (i, c) in self.clauses.drain(..).enumerate() {
            if drop_set.contains(&(i as u32)) {
                continue;
            }
            remap[i] = new_clauses.len() as i32;
            new_clauses.push(c);
        }
        self.clauses = new_clauses;
        self.stats.learnts -= drop_set.len() as u64;
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            self.watches[c.lits[0].index()].push(i as u32);
            self.watches[c.lits[1].index()].push(i as u32);
        }
        for r in &mut self.reason {
            if *r != UNDEF_CLAUSE {
                *r = remap[*r as usize];
            }
        }
    }

    /// Solves under the given assumptions (see the modern solver's docs;
    /// identical contract, identical verdicts, slower search).
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.budget.exceeded(&self.stats) {
            return SolveResult::Unknown;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }

        let mut luby_index = 0u64;
        loop {
            let restart_budget = 100 * luby(luby_index);
            luby_index += 1;
            match self.search(restart_budget, assumptions) {
                Some(r) => {
                    if r == SolveResult::Sat {
                        self.model = self.assign.clone();
                    }
                    self.backtrack_to(0);
                    return r;
                }
                None => {
                    self.stats.restarts += 1;
                    if self.budget.exceeded(&self.stats) {
                        self.backtrack_to(0);
                        return SolveResult::Unknown;
                    }
                    self.backtrack_to(0);
                }
            }
        }
    }

    fn search(&mut self, conflict_budget: u64, assumptions: &[Lit]) -> Option<SolveResult> {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, backjump) = self.analyze(conflict);
                self.backtrack_to(backjump);
                if learnt.len() == 1 {
                    if self.lit_value(learnt[0]) == Some(false) {
                        self.ok = self.decision_level() > 0;
                        return Some(SolveResult::Unsat);
                    }
                    if self.lit_value(learnt[0]).is_none() {
                        self.enqueue(learnt[0], UNDEF_CLAUSE);
                    }
                } else {
                    let ci = self.attach_clause(learnt.clone(), true);
                    self.bump_clause(ci);
                    self.enqueue(learnt[0], ci as i32);
                }
                self.decay_activities();
                if conflicts_here >= conflict_budget || self.budget.exceeded(&self.stats) {
                    return None;
                }
                if self.stats.learnts > 2000 + (self.clauses.len() as u64 / 2) {
                    self.reduce_db();
                }
            } else {
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        Some(true) => {
                            self.new_decision_level();
                            continue;
                        }
                        Some(false) => return Some(SolveResult::Unsat),
                        None => {
                            self.new_decision_level();
                            self.enqueue(a, UNDEF_CLAUSE);
                            continue;
                        }
                    }
                }
                let next = loop {
                    match self.heap_pop() {
                        Some(v) if self.assign[v.index()] == 0 => break Some(v),
                        Some(_) => continue,
                        None => break None,
                    }
                };
                match next {
                    None => return Some(SolveResult::Sat),
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.new_decision_level();
                        let lit = Lit::new(v, self.phase[v.index()]);
                        self.enqueue(lit, UNDEF_CLAUSE);
                    }
                }
            }
        }
    }
}

fn luby(i: u64) -> u64 {
    let mut x = i + 1;
    loop {
        let k = 64 - x.leading_zeros() as u64;
        if x == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        x -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_still_solves() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        s.add_clause(&[a.negative()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
        assert_eq!(s.solve(&[b.negative()]), SolveResult::Unsat);
    }

    #[test]
    fn baseline_pigeonhole_unsat() {
        let mut s = Solver::new();
        let p = |i: i32, j: i32| 3 * i + j + 1;
        for i in 0..4 {
            s.add_dimacs_clause(&[p(i, 0), p(i, 1), p(i, 2)]);
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_dimacs_clause(&[-p(i1, j), -p(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }
}
