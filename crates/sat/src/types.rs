//! Variables, literals and clauses.

use std::fmt;

/// A boolean variable (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Index into per-variable arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, encoded as `2*var + sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Builds a literal. `positive == true` means the non-negated form.
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// Converts from the DIMACS convention (1-based, sign = polarity).
    ///
    /// # Panics
    ///
    /// Panics if `lit == 0`.
    pub fn from_dimacs(lit: i32) -> Lit {
        assert!(lit != 0, "DIMACS literal 0 is the clause terminator");
        Lit::new(Var(lit.unsigned_abs() - 1), lit > 0)
    }

    /// Converts to the DIMACS convention.
    pub fn to_dimacs(self) -> i32 {
        let v = (self.var().0 + 1) as i32;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for the non-negated literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Index into per-literal arrays (watch lists).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw arena code (`2*var + sign`); inverse of [`Lit::from_code`].
    pub(crate) fn code(self) -> u32 {
        self.0
    }

    /// Rebuilds a literal from its raw arena code.
    pub(crate) fn from_code(code: u32) -> Lit {
        Lit(code)
    }

    /// The literal's value under an assignment of its variable.
    pub fn apply(self, var_value: bool) -> bool {
        var_value == self.is_positive()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// Outcome of a solve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (read it via the model accessors).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict/propagation/time budget was exhausted first.
    Unknown,
}

impl SolveResult {
    /// `true` when the result is [`SolveResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == SolveResult::Sat
    }

    /// `true` when the result is [`SolveResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == SolveResult::Unsat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var(7);
        let p = v.positive();
        let n = v.negative();
        assert_eq!(p.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_ne!(p.index(), n.index());
    }

    #[test]
    fn dimacs_round_trip() {
        for d in [1, -1, 5, -42] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
        assert_eq!(Lit::from_dimacs(1), Var(0).positive());
        assert_eq!(Lit::from_dimacs(-3), Var(2).negative());
    }

    #[test]
    fn apply_polarity() {
        let v = Var(0);
        assert!(v.positive().apply(true));
        assert!(!v.positive().apply(false));
        assert!(v.negative().apply(false));
    }

    #[test]
    #[should_panic(expected = "terminator")]
    fn dimacs_zero_rejected() {
        Lit::from_dimacs(0);
    }
}
