//! Dense per-row bitsets for key-taint tracking.
//!
//! One row per net, one bit per key bit, packed into `u64` words. The
//! taint lattice is set union: rows only grow, so a worklist over it
//! terminates and its least fixed point is iteration-order independent.

/// A `rows × bits` boolean matrix packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintMatrix {
    rows: usize,
    bits: usize,
    words: usize,
    data: Vec<u64>,
}

impl TaintMatrix {
    /// An all-zero matrix with `rows` rows of `bits` bits each.
    pub fn new(rows: usize, bits: usize) -> TaintMatrix {
        let words = bits.div_ceil(64).max(1);
        TaintMatrix { rows, bits, words, data: vec![0; rows * words] }
    }

    /// Number of bits per row.
    pub fn width(&self) -> usize {
        self.bits
    }

    /// Sets bit `bit` in row `row`.
    pub fn set(&mut self, row: usize, bit: usize) {
        debug_assert!(row < self.rows && bit < self.bits);
        self.data[row * self.words + bit / 64] |= 1u64 << (bit % 64);
    }

    /// Tests bit `bit` in row `row`.
    pub fn contains(&self, row: usize, bit: usize) -> bool {
        self.data[row * self.words + bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// ORs row `src` into row `dst`, reporting whether `dst` changed.
    pub fn union_rows(&mut self, dst: usize, src: usize) -> bool {
        if dst == src {
            return false;
        }
        let mut changed = false;
        for w in 0..self.words {
            let s = self.data[src * self.words + w];
            let d = &mut self.data[dst * self.words + w];
            let next = *d | s;
            changed |= next != *d;
            *d = next;
        }
        changed
    }

    /// `true` when row `row` has no bits set.
    pub fn row_is_empty(&self, row: usize) -> bool {
        self.data[row * self.words..(row + 1) * self.words].iter().all(|&w| w == 0)
    }

    /// The set bits of row `row`, ascending.
    pub fn ones(&self, row: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for w in 0..self.words {
            let mut word = self.data[row * self.words + w];
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                out.push(w * 64 + b);
                word &= word - 1;
            }
        }
        out
    }

    /// Number of set bits in row `row`.
    pub fn count(&self, row: usize) -> usize {
        self.data[row * self.words..(row + 1) * self.words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// ORs row `row` into the external accumulator `acc`
    /// (`acc.len() == words per row`).
    pub fn accumulate(&self, row: usize, acc: &mut [u64]) {
        for (w, a) in acc.iter_mut().enumerate() {
            *a |= self.data[row * self.words + w];
        }
    }
}

/// Union-find over key-bit indices, used to group bits into
/// taint-disjoint partitions.
#[derive(Debug)]
pub(crate) struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n).collect() }
    }

    pub(crate) fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Root at the smaller index so grouping is deterministic.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_query_roundtrip() {
        let mut m = TaintMatrix::new(3, 130);
        m.set(0, 0);
        m.set(0, 129);
        m.set(1, 64);
        assert!(m.union_rows(2, 0));
        assert!(m.union_rows(2, 1));
        assert!(!m.union_rows(2, 0), "second union is a no-op");
        assert_eq!(m.ones(2), vec![0, 64, 129]);
        assert_eq!(m.count(2), 3);
        assert!(m.contains(2, 64) && !m.contains(2, 1));
        assert!(!m.row_is_empty(2));
        assert!(TaintMatrix::new(1, 4).row_is_empty(0));
    }

    #[test]
    fn union_find_groups_deterministically() {
        let mut uf = UnionFind::new(5);
        uf.union(3, 1);
        uf.union(4, 3);
        assert_eq!(uf.find(4), 1);
        assert_eq!(uf.find(0), 0);
        assert_eq!(uf.find(2), 2);
    }
}
