//! Whole-design static dataflow analyses for the RTLock flow.
//!
//! The crate provides a deterministic worklist fixed-point engine and three
//! lattice domains evaluated over gate netlists
//! ([`NetAnalysis`]) and RTL modules ([`RtlAnalysis`]):
//!
//! 1. **Key taint** — forward per-key-bit dependence sets: which nets *may*
//!    depend on which key bits (an over-approximation; its complement — a
//!    net reported untainted by bit `k` — is a proof of independence).
//! 2. **Ternary constant/X propagation** — abstract interpretation over
//!    `{0, 1, X}` proving nets constant under *all* key and input
//!    valuations, plus per-key-bit cofactor runs (bit pinned to 0 and to 1,
//!    everything else `X`) exposing gates that reduce to a bare key wire.
//! 3. **Scan reachability** — backward observability from primary outputs
//!    and scan-chain cells, and forward controllability from primary
//!    inputs and scan-chain cells.
//!
//! Every domain is a finite monotone lattice, so the worklist converges to
//! the unique least fixed point: results are independent of iteration
//! order, threads, and seeds (the determinism contract the K-series lint
//! rules and the fuzz harness rely on). Long runs are cooperatively
//! bounded: the `*_bounded` entry points poll a
//! [`CancelToken`](rtlock_governor::CancelToken) and return `None` when it
//! fires, never a partial result.

#![warn(missing_docs)]

pub mod netflow;
pub mod rtlflow;
pub mod taint;
pub mod ternary;

pub use netflow::{analyze_netlist, analyze_netlist_bounded, NetAnalysis};
pub use rtlflow::{analyze_module, RtlAnalysis};
pub use taint::TaintMatrix;
pub use ternary::Ternary;
