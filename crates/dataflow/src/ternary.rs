//! The three-valued `{0, 1, X}` abstract domain (Kleene logic) and gate
//! transfer functions.

use std::ops::Not;
use rtlock_netlist::{GateId, GateKind};

/// An abstract net value: a known constant, or `X` (both values possible).
///
/// Ordered as a lattice with `Zero`/`One` below `X`; [`Ternary::join`] is
/// the least upper bound. All gate transfer functions are monotone in this
/// order, which is what guarantees worklist convergence to a unique least
/// fixed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ternary {
    /// Provably 0 under every valuation considered.
    Zero,
    /// Provably 1 under every valuation considered.
    One,
    /// Unknown: both values are possible.
    X,
}

impl Ternary {
    /// Lifts a concrete bit.
    pub fn from_bool(b: bool) -> Ternary {
        if b {
            Ternary::One
        } else {
            Ternary::Zero
        }
    }

    /// The proven constant, if any.
    pub fn constant(self) -> Option<bool> {
        match self {
            Ternary::Zero => Some(false),
            Ternary::One => Some(true),
            Ternary::X => None,
        }
    }

    /// Least upper bound: equal values stay, disagreement widens to `X`.
    pub fn join(self, other: Ternary) -> Ternary {
        if self == other {
            self
        } else {
            Ternary::X
        }
    }

    /// Kleene conjunction (`0` dominates `X`).
    pub fn and(self, other: Ternary) -> Ternary {
        match (self, other) {
            (Ternary::Zero, _) | (_, Ternary::Zero) => Ternary::Zero,
            (Ternary::One, Ternary::One) => Ternary::One,
            _ => Ternary::X,
        }
    }

    /// Kleene disjunction (`1` dominates `X`).
    pub fn or(self, other: Ternary) -> Ternary {
        match (self, other) {
            (Ternary::One, _) | (_, Ternary::One) => Ternary::One,
            (Ternary::Zero, Ternary::Zero) => Ternary::Zero,
            _ => Ternary::X,
        }
    }

    /// Kleene exclusive-or (`X` absorbs everything).
    pub fn xor(self, other: Ternary) -> Ternary {
        match (self.constant(), other.constant()) {
            (Some(a), Some(b)) => Ternary::from_bool(a ^ b),
            _ => Ternary::X,
        }
    }
}

/// Evaluates one gate over the current abstract values.
///
/// Beyond plain Kleene evaluation this knows the same-operand identities
/// (`a ^ a = 0`, `a & a = a`, `mux(s, a, a) = a`, …): they are structural
/// facts, so using them keeps the analysis sound while letting it prove
/// constants that literal constant folding misses.
///
/// # Panics
///
/// Panics when called on `Input` or `Dff` gates — those are lattice
/// sources handled by the driving analysis, not transfer functions.
pub fn eval_gate(kind: GateKind, fanin: &[GateId], values: &[Ternary]) -> Ternary {
    let v = |i: usize| values[fanin[i].index()];
    let same2 = fanin.len() == 2 && fanin[0] == fanin[1];
    match kind {
        GateKind::Const0 => Ternary::Zero,
        GateKind::Const1 => Ternary::One,
        GateKind::Buf => v(0),
        GateKind::Not => v(0).not(),
        GateKind::And if same2 => v(0),
        GateKind::Or if same2 => v(0),
        GateKind::Nand if same2 => v(0).not(),
        GateKind::Nor if same2 => v(0).not(),
        GateKind::Xor if same2 => Ternary::Zero,
        GateKind::Xnor if same2 => Ternary::One,
        GateKind::And => v(0).and(v(1)),
        GateKind::Nand => v(0).and(v(1)).not(),
        GateKind::Or => v(0).or(v(1)),
        GateKind::Nor => v(0).or(v(1)).not(),
        GateKind::Xor => v(0).xor(v(1)),
        GateKind::Xnor => v(0).xor(v(1)).not(),
        GateKind::Mux if fanin[1] == fanin[2] => v(1),
        GateKind::Mux => match v(0) {
            Ternary::Zero => v(1),
            Ternary::One => v(2),
            Ternary::X => v(1).join(v(2)),
        },
        GateKind::Input | GateKind::Dff { .. } => {
            panic!("{kind:?} is a source, not a transfer function")
        }
    }
}

/// Kleene negation.
impl std::ops::Not for Ternary {
    type Output = Ternary;

    fn not(self) -> Ternary {
        match self {
            Ternary::Zero => Ternary::One,
            Ternary::One => Ternary::Zero,
            Ternary::X => Ternary::X,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kleene_tables_hold() {
        use Ternary::{One, X, Zero};
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(One.or(X), One);
        assert_eq!(One.and(X), X);
        assert_eq!(Zero.or(X), X);
        assert_eq!(X.xor(Zero), X);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(X.not(), X);
        assert_eq!(Zero.join(One), X);
        assert_eq!(One.join(One), One);
    }

    #[test]
    fn same_operand_identities_prove_constants() {
        let a = GateId(0);
        let values = vec![Ternary::X];
        assert_eq!(eval_gate(GateKind::Xor, &[a, a], &values), Ternary::Zero);
        assert_eq!(eval_gate(GateKind::Xnor, &[a, a], &values), Ternary::One);
        assert_eq!(eval_gate(GateKind::And, &[a, a], &values), Ternary::X);
    }
}
