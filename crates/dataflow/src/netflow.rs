//! Gate-netlist dataflow: key taint, ternary constant propagation with
//! per-key-bit cofactors, and scan-aware reachability, all driven by one
//! deterministic worklist engine.

use crate::taint::{TaintMatrix, UnionFind};
use crate::ternary::{eval_gate, Ternary};
use rtlock_governor::CancelToken;
use rtlock_netlist::{GateId, GateKind, Netlist};
use std::collections::VecDeque;

/// How many worklist pops between `CancelToken` polls.
const POLL_STRIDE: usize = 1024;

/// Combined whole-netlist analysis results.
///
/// All vectors are indexed by [`GateId::index`] (a gate's output net is
/// identified with the gate). Every field is the unique least fixed point
/// of a monotone transfer system, so two runs over the same netlist are
/// byte-identical regardless of thread or seed.
#[derive(Debug, Clone, PartialEq)]
pub struct NetAnalysis {
    /// The netlist's key inputs, in `Netlist::key_inputs` order; taint bit
    /// `i` refers to `keys[i]`.
    pub keys: Vec<GateId>,
    /// Per-net may-depend sets over key bits (forward taint, flip-flops
    /// included: sequential dependence counts).
    pub taint: TaintMatrix,
    /// Per-net ternary value with *every* input and key bit `X`: a
    /// `Zero`/`One` here is a proof of constancy under all valuations.
    pub value: Vec<Ternary>,
    /// Per key bit: ternary values with that bit pinned to 0 (everything
    /// else `X`).
    pub cofactor0: Vec<Vec<Ternary>>,
    /// Per key bit: ternary values with that bit pinned to 1.
    pub cofactor1: Vec<Vec<Ternary>>,
    /// Backward reachability to an observation point (primary output or
    /// scan-chain cell).
    pub observable: Vec<bool>,
    /// Forward reachability from a control point (primary input, key
    /// input, or scan-chain cell).
    pub controllable: Vec<bool>,
    /// Key-bit indices grouped into taint-disjoint partitions: two bits
    /// share a partition iff some observation point is tainted by both.
    /// Every key bit appears exactly once; partitions are sorted by their
    /// smallest member, members ascending.
    pub partitions: Vec<Vec<usize>>,
    /// Key-bit indices whose taint reaches no observation point: provably
    /// removal-prunable (deleting the cone and the bit preserves all
    /// observable behaviour).
    pub prunable_keys: Vec<usize>,
}

/// Runs the full analysis with no budget.
pub fn analyze_netlist(n: &Netlist) -> NetAnalysis {
    analyze_netlist_bounded(n, &CancelToken::unlimited()).expect("unlimited token cannot fire")
}

/// Runs the full analysis, polling `token`; returns `None` (never a
/// partial result) once the token fires.
pub fn analyze_netlist_bounded(n: &Netlist, token: &CancelToken) -> Option<NetAnalysis> {
    // A cyclic netlist only costs iteration order (speed), not soundness:
    // every domain is monotone and finite, so the worklist still converges.
    let order = n.topo_order().unwrap_or_else(|_| n.ids().collect());
    let fanouts = n.fanouts();
    let keys = n.key_inputs.clone();

    let taint = taint_fixpoint(n, &order, &fanouts, &keys, token)?;
    let value = ternary_fixpoint(n, &order, &fanouts, None, token)?;
    let mut cofactor0 = Vec::with_capacity(keys.len());
    let mut cofactor1 = Vec::with_capacity(keys.len());
    for &k in &keys {
        cofactor0.push(ternary_fixpoint(n, &order, &fanouts, Some((k, Ternary::Zero)), token)?);
        cofactor1.push(ternary_fixpoint(n, &order, &fanouts, Some((k, Ternary::One)), token)?);
    }
    let observable = observability_fixpoint(n, &order, &fanouts, token)?;
    let controllable = controllability_fixpoint(n, &order, &fanouts, token)?;

    let (partitions, prunable_keys) = key_partitions(n, &keys, &taint, &observable);
    Some(NetAnalysis {
        keys,
        taint,
        value,
        cofactor0,
        cofactor1,
        observable,
        controllable,
        partitions,
        prunable_keys,
    })
}

impl NetAnalysis {
    /// The key-bit index of gate `g`, when `g` is a key input.
    pub fn key_bit_of(&self, g: GateId) -> Option<usize> {
        self.keys.iter().position(|&k| k == g)
    }

    /// `true` when net `g` may depend on key bit `bit`.
    pub fn is_tainted_by(&self, g: GateId, bit: usize) -> bool {
        self.taint.contains(g.index(), bit)
    }

    /// `true` when net `g` is provably independent of every key bit.
    pub fn taint_is_empty(&self, g: GateId) -> bool {
        self.taint.row_is_empty(g.index())
    }

    /// The key bits net `g` may depend on, ascending.
    pub fn taint_bits(&self, g: GateId) -> Vec<usize> {
        self.taint.ones(g.index())
    }

    /// The all-`X` abstract value of net `g`.
    pub fn value_of(&self, g: GateId) -> Ternary {
        self.value[g.index()]
    }

    /// The abstract value of net `g` with key bit `bit` pinned to 0 / 1.
    pub fn cofactor_values(&self, bit: usize, g: GateId) -> (Ternary, Ternary) {
        (self.cofactor0[bit][g.index()], self.cofactor1[bit][g.index()])
    }

    /// `true` when key bit `bit` taints at least one observation point.
    pub fn key_observable(&self, bit: usize) -> bool {
        !self.prunable_keys.contains(&bit)
    }
}

/// Deterministic worklist driver.
///
/// Seeds the queue with `seed` (typically a topological order), then
/// repeatedly pops a node, applies `update`, and re-enqueues the node's
/// `succ` edges when the fact changed. Facts must be monotone over a
/// finite lattice. Returns `false` when `token` fires mid-run.
fn worklist<F>(seed: &[GateId], succ: &[Vec<GateId>], token: &CancelToken, mut update: F) -> bool
where
    F: FnMut(GateId) -> bool,
{
    if token.should_stop().is_some() {
        return false;
    }
    let n = succ.len();
    let mut queue: VecDeque<GateId> = seed.iter().copied().collect();
    let mut in_queue = vec![true; n];
    let mut pops = 0usize;
    while let Some(g) = queue.pop_front() {
        in_queue[g.index()] = false;
        pops += 1;
        if pops.is_multiple_of(POLL_STRIDE) && token.should_stop().is_some() {
            return false;
        }
        if update(g) {
            for &s in &succ[g.index()] {
                if !in_queue[s.index()] {
                    in_queue[s.index()] = true;
                    queue.push_back(s);
                }
            }
        }
    }
    true
}

fn taint_fixpoint(
    n: &Netlist,
    order: &[GateId],
    fanouts: &[Vec<GateId>],
    keys: &[GateId],
    token: &CancelToken,
) -> Option<TaintMatrix> {
    let mut taint = TaintMatrix::new(n.len(), keys.len());
    for (bit, &k) in keys.iter().enumerate() {
        taint.set(k.index(), bit);
    }
    let done = worklist(order, fanouts, token, |g| {
        let gate = n.gate(g);
        if gate.fanin.is_empty() {
            return false; // inputs and constants are fixed sources
        }
        let mut changed = false;
        for &f in &gate.fanin {
            changed |= taint.union_rows(g.index(), f.index());
        }
        changed
    });
    done.then_some(taint)
}

fn ternary_fixpoint(
    n: &Netlist,
    order: &[GateId],
    fanouts: &[Vec<GateId>],
    pin: Option<(GateId, Ternary)>,
    token: &CancelToken,
) -> Option<Vec<Ternary>> {
    let mut values = vec![Ternary::X; n.len()];
    for g in n.ids() {
        values[g.index()] = match n.gate(g).kind {
            GateKind::Const0 => Ternary::Zero,
            GateKind::Const1 => Ternary::One,
            GateKind::Dff { init } => Ternary::from_bool(init),
            _ => Ternary::X, // inputs stay X; logic is overwritten below
        };
    }
    if let Some((g, v)) = pin {
        values[g.index()] = v;
    }
    // Logic gates start at X but are *recomputed* (not joined) from their
    // fanin on every visit, and the seed visits every gate once in topo
    // order; only flip-flops join (init ⊔ D), which is where monotonicity
    // is needed for the feedback edges.
    let done = worklist(order, fanouts, token, |g| {
        let gate = n.gate(g);
        let new = match gate.kind {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => return false,
            GateKind::Dff { init } => {
                values[g.index()].join(Ternary::from_bool(init)).join(values[gate.fanin[0].index()])
            }
            kind => eval_gate(kind, &gate.fanin, &values),
        };
        if new != values[g.index()] {
            values[g.index()] = new;
            true
        } else {
            false
        }
    });
    done.then_some(values)
}

fn observability_fixpoint(
    n: &Netlist,
    order: &[GateId],
    fanouts: &[Vec<GateId>],
    token: &CancelToken,
) -> Option<Vec<bool>> {
    let mut obs = vec![false; n.len()];
    for (_, drv) in n.outputs() {
        obs[drv.index()] = true;
    }
    for &cell in &n.scan_chain {
        obs[cell.index()] = true;
    }
    // Backward: a net is observable when any reader is. Successor edges
    // for requeueing are therefore the *fanin* of a changed gate.
    let fanins: Vec<Vec<GateId>> = n.ids().map(|g| n.gate(g).fanin.clone()).collect();
    let seed: Vec<GateId> = order.iter().rev().copied().collect();
    let done = worklist(&seed, &fanins, token, |g| {
        if obs[g.index()] {
            return false;
        }
        if fanouts[g.index()].iter().any(|s| obs[s.index()]) {
            obs[g.index()] = true;
            true
        } else {
            false
        }
    });
    done.then_some(obs)
}

fn controllability_fixpoint(
    n: &Netlist,
    order: &[GateId],
    fanouts: &[Vec<GateId>],
    token: &CancelToken,
) -> Option<Vec<bool>> {
    let mut ctl = vec![false; n.len()];
    for &i in n.inputs() {
        ctl[i.index()] = true;
    }
    for &cell in &n.scan_chain {
        ctl[cell.index()] = true; // scan shift-in sets the cell state
    }
    let done = worklist(order, fanouts, token, |g| {
        if ctl[g.index()] {
            return false;
        }
        let gate = n.gate(g);
        if !gate.fanin.is_empty() && gate.fanin.iter().any(|f| ctl[f.index()]) {
            ctl[g.index()] = true;
            true
        } else {
            false
        }
    });
    done.then_some(ctl)
}

/// Groups key bits by shared observation points and lists the bits no
/// observation point depends on.
fn key_partitions(
    n: &Netlist,
    keys: &[GateId],
    taint: &TaintMatrix,
    observable: &[bool],
) -> (Vec<Vec<usize>>, Vec<usize>) {
    let mut uf = UnionFind::new(keys.len());
    let mut points: Vec<GateId> = n.outputs().iter().map(|&(_, d)| d).collect();
    points.extend(n.scan_chain.iter().copied());
    for p in points {
        let bits = taint.ones(p.index());
        for pair in bits.windows(2) {
            uf.union(pair[0], pair[1]);
        }
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); keys.len()];
    for bit in 0..keys.len() {
        let root = uf.find(bit);
        groups[root].push(bit);
    }
    let partitions: Vec<Vec<usize>> = groups.into_iter().filter(|g| !g.is_empty()).collect();

    let words = keys.len().div_ceil(64).max(1);
    let mut seen = vec![0u64; words];
    for g in n.ids() {
        if observable[g.index()] {
            taint.accumulate(g.index(), &mut seen);
        }
    }
    let prunable: Vec<usize> =
        (0..keys.len()).filter(|&b| seen[b / 64] & (1u64 << (b % 64)) == 0).collect();
    (partitions, prunable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_governor::Deadline;
    use std::time::Duration;

    /// `y = (a ^ k0) | b`, plus a dead cone `d = a & k1` feeding a
    /// non-scan flop that drives nothing.
    fn keyed_netlist() -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let k0 = n.add_input("keyinput0");
        let k1 = n.add_input("keyinput1");
        n.mark_key_input(k0);
        n.mark_key_input(k1);
        let x = n.add_gate(GateKind::Xor, vec![a, k0]);
        let y = n.add_gate(GateKind::Or, vec![x, b]);
        n.add_output("y", y);
        let d = n.add_gate(GateKind::And, vec![a, k1]);
        n.add_gate(GateKind::Dff { init: false }, vec![d]);
        n
    }

    #[test]
    fn taint_tracks_key_cones_and_nothing_else() {
        let n = keyed_netlist();
        let a = analyze_netlist(&n);
        let (_, y) = n.outputs()[0];
        assert!(a.is_tainted_by(y, 0), "output depends on k0");
        assert!(!a.is_tainted_by(y, 1), "k1's cone is dead");
        let b = n.find_input("b").unwrap();
        assert!(a.taint_is_empty(b));
        assert_eq!(a.taint_bits(y), vec![0]);
    }

    #[test]
    fn dead_key_bit_is_prunable_and_partitioned_alone() {
        let n = keyed_netlist();
        let a = analyze_netlist(&n);
        assert_eq!(a.prunable_keys, vec![1]);
        assert!(a.key_observable(0) && !a.key_observable(1));
        assert_eq!(a.partitions, vec![vec![0], vec![1]]);
    }

    #[test]
    fn scan_chain_makes_the_dead_cone_observable() {
        let mut n = keyed_netlist();
        n.scan_chain = n.dffs();
        let a = analyze_netlist(&n);
        assert!(a.prunable_keys.is_empty(), "scan capture observes k1's cone");
    }

    #[test]
    fn ternary_proves_identity_constants_under_all_valuations() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let k = n.add_input("keyinput0");
        n.mark_key_input(k);
        let z = n.add_gate(GateKind::Xor, vec![a, a]); // ≡ 0
        let t = n.add_gate(GateKind::And, vec![k, z]); // ≡ 0, key-fed
        let y = n.add_gate(GateKind::Or, vec![b, t]);
        n.add_output("y", y);
        let an = analyze_netlist(&n);
        assert_eq!(an.value_of(z), Ternary::Zero);
        assert_eq!(an.value_of(t), Ternary::Zero);
        assert_eq!(an.value_of(y), Ternary::X);
        // Cofactors agree: t is 0 with k pinned either way.
        assert_eq!(an.cofactor_values(0, t), (Ternary::Zero, Ternary::Zero));
    }

    #[test]
    fn cofactors_expose_a_bare_key_wire() {
        let mut n = Netlist::new("t");
        let k = n.add_input("keyinput0");
        n.mark_key_input(k);
        let c = n.add_gate(GateKind::Const0, vec![]);
        let w = n.add_gate(GateKind::Xor, vec![c, k]); // ≡ k
        n.add_output("y", w);
        let a = analyze_netlist(&n);
        assert_eq!(a.value_of(w), Ternary::X);
        assert_eq!(a.cofactor_values(0, w), (Ternary::Zero, Ternary::One));
    }

    #[test]
    fn sequential_feedback_reaches_a_fixpoint() {
        // A DFF looping through an inverter visits both values: X.
        let mut n = Netlist::new("t");
        let seed = n.add_input("unused");
        let d = n.add_gate(GateKind::Dff { init: false }, vec![seed]);
        let inv = n.add_gate(GateKind::Not, vec![d]);
        n.gate_mut(d).fanin[0] = inv;
        n.add_output("q", d);
        let a = analyze_netlist(&n);
        assert_eq!(a.value_of(d), Ternary::X);
        // A DFF holding its reset value forever stays constant.
        let mut m = Netlist::new("t");
        let seed2 = m.add_input("unused");
        let d2 = m.add_gate(GateKind::Dff { init: true }, vec![seed2]);
        m.gate_mut(d2).fanin[0] = d2;
        m.add_output("q", d2);
        let am = analyze_netlist(&m);
        assert_eq!(am.value_of(d2), Ternary::One);
    }

    #[test]
    fn analysis_is_deterministic() {
        let n = keyed_netlist();
        assert_eq!(analyze_netlist(&n), analyze_netlist(&n));
    }

    #[test]
    fn expired_token_returns_none_not_a_partial_result() {
        let n = keyed_netlist();
        let token = CancelToken::with_deadline(Deadline::after(Duration::ZERO));
        assert!(analyze_netlist_bounded(&n, &token).is_none());
    }
}
