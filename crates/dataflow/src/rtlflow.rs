//! RTL-module dataflow over the CDFG: semantic constant-net detection and
//! per-key-bit taint.
//!
//! The module view complements [`crate::netflow`]: it sees the design
//! *before* elaboration folds structure away, so rules can point at source
//! nets, and it catches degenerate lock points (key gates on nets the
//! design drives to a constant) that disappear in the optimized netlist.

use crate::taint::TaintMatrix;
use rtlock_rtl::cdfg::Cdfg;
use rtlock_rtl::{Expr, Module, NetId, Stmt};
use std::collections::{HashMap, HashSet};

/// Whole-module analysis results; vectors are indexed by `NetId`.
#[derive(Debug, Clone)]
pub struct RtlAnalysis {
    /// The key nets the taint bits refer to, in argument order.
    pub keys: Vec<NetId>,
    /// Per-net flag: the net is driven to a compile-time constant on every
    /// path (continuous assigns only, fixpoint over net-to-net chains, and
    /// never written by a process).
    pub const_nets: Vec<bool>,
    /// Per-net may-depend sets over key bits, propagated forward along
    /// CDFG data and control edges (control dependence taints too).
    pub key_taint: TaintMatrix,
}

impl RtlAnalysis {
    /// `true` when `net` is provably constant.
    pub fn is_const(&self, net: NetId) -> bool {
        self.const_nets[net.0 as usize]
    }

    /// `true` when `net` may depend on key bit `bit`.
    pub fn is_tainted_by(&self, net: NetId, bit: usize) -> bool {
        self.key_taint.contains(net.0 as usize, bit)
    }

    /// The key bits `net` may depend on, ascending.
    pub fn taint_bits(&self, net: NetId) -> Vec<usize> {
        self.key_taint.ones(net.0 as usize)
    }
}

/// Analyzes `module`, treating `keys` as the taint sources.
pub fn analyze_module(module: &Module, keys: &[NetId]) -> RtlAnalysis {
    RtlAnalysis {
        keys: keys.to_vec(),
        const_nets: const_nets(module),
        key_taint: key_taint(module, keys),
    }
}

/// Fixpoint constant-net detection: a net counts as constant when every
/// continuous assign driving it references only constants and constant
/// nets, and no process writes it.
fn const_nets(m: &Module) -> Vec<bool> {
    let mut proc_written: HashSet<NetId> = HashSet::new();
    for p in &m.procs {
        collect_stmt_lvalues(&p.body, &mut proc_written);
        collect_stmt_lvalues(&p.reset_body, &mut proc_written);
    }
    let mut drivers: HashMap<NetId, Vec<&Expr>> = HashMap::new();
    for a in &m.assigns {
        drivers.entry(a.lhs.net).or_default().push(&a.rhs);
    }
    let mut consts = vec![false; m.nets.len()];
    loop {
        let mut changed = false;
        for (&net, rhss) in &drivers {
            let idx = net.0 as usize;
            if consts[idx] || proc_written.contains(&net) {
                continue;
            }
            let all_const = rhss.iter().all(|rhs| {
                let mut refs = Vec::new();
                rhs.collect_refs(&mut refs);
                refs.iter().all(|r| consts[r.0 as usize])
            });
            if all_const {
                consts[idx] = true;
                changed = true;
            }
        }
        if !changed {
            return consts;
        }
    }
}

/// Forward key taint over the CDFG fanout relation (data and control
/// edges), flip-flops included.
fn key_taint(m: &Module, keys: &[NetId]) -> TaintMatrix {
    let cdfg = Cdfg::build(m);
    let nets = m.nets.len();
    let mut taint = TaintMatrix::new(nets, keys.len());
    for (bit, &k) in keys.iter().enumerate() {
        taint.set(k.0 as usize, bit);
    }
    // Simple round-robin fixpoint: rows only grow, the lattice is finite.
    loop {
        let mut changed = false;
        for net in 0..nets {
            for src in &cdfg.fanin[net] {
                changed |= taint.union_rows(net, src.0 as usize);
            }
        }
        if !changed {
            return taint;
        }
    }
}

fn collect_stmt_lvalues(stmts: &[Stmt], out: &mut HashSet<NetId>) {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, .. } => {
                out.insert(lhs.net);
            }
            Stmt::If { then_, else_, .. } => {
                collect_stmt_lvalues(then_, out);
                collect_stmt_lvalues(else_, out);
            }
            Stmt::Case { arms, default, .. } => {
                for arm in arms {
                    collect_stmt_lvalues(&arm.body, out);
                }
                collect_stmt_lvalues(default, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_rtl::parse;

    fn key_nets(m: &Module) -> Vec<NetId> {
        m.ports
            .iter()
            .copied()
            .filter(|&p| m.net(p).name.starts_with("lock_key_"))
            .collect()
    }

    #[test]
    fn const_chains_resolve_through_wires() {
        let m = parse(
            "module t(input a, output y);\n wire c;\n wire d;\n assign c = 1'b0;\n \
             assign d = c;\n assign y = a ^ d;\nendmodule",
        )
        .unwrap();
        let an = analyze_module(&m, &[]);
        let net = |name: &str| {
            NetId(m.nets.iter().position(|n| n.name == name).unwrap() as u32)
        };
        assert!(an.is_const(net("c")));
        assert!(an.is_const(net("d")), "constness chains through wires");
        assert!(!an.is_const(net("y")));
        assert!(!an.is_const(net("a")));
    }

    #[test]
    fn key_taint_follows_data_and_control_edges() {
        let m = parse(
            "module t(input a, input lock_key_0, output y, output z);\n \
             wire t0;\n assign t0 = a ^ lock_key_0;\n assign y = t0;\n \
             assign z = a;\nendmodule",
        )
        .unwrap();
        let keys = key_nets(&m);
        assert_eq!(keys.len(), 1);
        let an = analyze_module(&m, &keys);
        let net = |name: &str| {
            NetId(m.nets.iter().position(|n| n.name == name).unwrap() as u32)
        };
        assert!(an.is_tainted_by(net("y"), 0));
        assert_eq!(an.taint_bits(net("z")), Vec::<usize>::new());
    }
}
