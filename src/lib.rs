//! Meta-crate re-exporting every crate of the RTLock reproduction workspace.
//!
//! Downstream code (integration tests, the table/figure binaries, external
//! experiments) depends on this one crate and reaches each subsystem
//! through a stable module path:
//!
//! ```
//! let m = rtlock_repro::rtl::parse("module t(input a, output y); assign y = ~a; endmodule")
//!     .expect("parse");
//! assert_eq!(m.name, "t");
//! ```
pub use rtlock;
pub use rtlock_artifacts as artifacts;
pub use rtlock_atpg as atpg;
pub use rtlock_attacks as attacks;
pub use rtlock_dataflow as dataflow;
pub use rtlock_designs as designs;
pub use rtlock_fuzz as fuzz;
pub use rtlock_ilp as ilp;
pub use rtlock_lint as lint;
pub use rtlock_netlist as netlist;
pub use rtlock_p1735 as p1735;
pub use rtlock_rtl as rtl;
pub use rtlock_sat as sat;
pub use rtlock_synth as synth;

#[cfg(test)]
mod tests {
    /// The re-exports must stay wired to the real crates: push one tiny
    /// design end-to-end through parse -> elaborate -> simulate via the
    /// meta-crate paths only.
    #[test]
    fn reexports_reach_a_working_flow() {
        let src = "module t(input [1:0] a, input [1:0] b, output [1:0] y);\n\
                   assign y = a ^ b;\nendmodule";
        let module = crate::rtl::parse(src).expect("parse");
        let netlist = crate::synth::elaborate(&module).expect("elaborate");
        let mut sim = crate::netlist::NetSim::new(&netlist).expect("acyclic");
        for &g in netlist.inputs() {
            let on = matches!(netlist.gate_name(g), Some("a[0]") | Some("b[1]"));
            sim.set_input(g, if on { u64::MAX } else { 0 });
        }
        sim.eval_comb();
        let vals = sim.outputs();
        let outs = netlist.outputs();
        assert_eq!(outs.len(), 2, "y must elaborate to two output bits");
        for (i, (name, _)) in outs.iter().enumerate() {
            assert_eq!(vals[i] & 1, 1, "2'b10 ^ 2'b01 must set {name}");
        }
    }
}
