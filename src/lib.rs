//! Meta-crate re-exporting every crate of the RTLock reproduction workspace.
pub use rtlock;
pub use rtlock_atpg as atpg;
pub use rtlock_attacks as attacks;
pub use rtlock_designs as designs;
pub use rtlock_ilp as ilp;
pub use rtlock_lint as lint;
pub use rtlock_netlist as netlist;
pub use rtlock_p1735 as p1735;
pub use rtlock_rtl as rtl;
pub use rtlock_sat as sat;
pub use rtlock_synth as synth;
