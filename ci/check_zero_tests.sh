#!/usr/bin/env bash
# Fails when any test suite binary in the workspace reports "running 0
# tests". A zero-test suite is indistinguishable from a green one in CI
# summaries, so an accidentally-emptied suite (feature gate, cfg typo,
# deleted module) would pass silently forever. This guard makes emptiness
# loud.
#
# Usage:
#   ci/check_zero_tests.sh [cargo-test-log]
#
# With no argument the script runs `cargo test --workspace` itself and
# checks the live output. With an argument it parses a previously captured
# log instead, so CI can reuse the output of the main test step without
# paying for a second full run.
#
# Allowlist: unit-test sections of `src/bin/` targets. CLI binaries are
# exercised end-to-end (smoke jobs, integration tests); cargo still emits
# an empty "running 0 tests" unittest section for each of them, which is
# expected and not a regression.
set -u -o pipefail

log=""
cleanup() { [ -n "$log" ] && rm -f "$log"; }
trap cleanup EXIT

if [ $# -ge 1 ]; then
  input=$1
  [ -r "$input" ] || { echo "check_zero_tests: cannot read log '$input'" >&2; exit 2; }
else
  log=$(mktemp)
  input=$log
  # --no-fail-fast so the inventory is complete even when a suite fails;
  # test failures themselves are the main test step's job to report.
  cargo test --workspace --no-fail-fast >"$log" 2>&1 || true
fi

awk '
  /^[[:space:]]*Running unittests src\/bin\// { suite = "BIN:" $3; next }
  /^[[:space:]]*Running unittests /           { suite = "unittests " $3 " " $4; next }
  /^[[:space:]]*Running tests\//              { suite = $2 " " $3; next }
  /^[[:space:]]*Running benches\//            { suite = $2 " " $3; next }
  /^[[:space:]]*Doc-tests /                   { suite = "doc-tests " $2; next }
  /^running 0 tests$/ {
    if (suite == "")            { next }          # not inside a known suite
    if (suite ~ /^BIN:/)        { suite = ""; next } # allowlisted bin stub
    print suite
    suite = ""
    next
  }
  /^running [0-9]+ tests?$/ { suite = "" }
' "$input" | sort -u | {
  zero=$(cat)
  if [ -n "$zero" ]; then
    echo "check_zero_tests: FAIL — these suites ran zero tests:" >&2
    printf '%s\n' "$zero" | sed 's/^/  - /' >&2
    exit 1
  fi
  echo "check_zero_tests: OK — every non-allowlisted suite runs at least one test"
}
